"""Unit tests for the display pipeline: VSync, buffering, rendering, FPS."""

import pytest

from repro.graphics.display import Display, FpsCounter
from repro.graphics.pipeline import FramePipeline, FrameSpec, PipelineConfig
from repro.graphics.vsync import BufferQueue, VsyncClock
from repro.soc.platform import exynos9810


# ---------------------------------------------------------------------------
# VSync clock
# ---------------------------------------------------------------------------

class TestVsyncClock:
    def test_period_at_60hz(self):
        clock = VsyncClock(refresh_hz=60.0)
        assert clock.period_s == pytest.approx(1.0 / 60.0)

    def test_edges_are_consumed_once(self):
        clock = VsyncClock(refresh_hz=60.0)
        first = clock.edges_until(0.1)
        second = clock.edges_until(0.1)
        assert len(first) == 6
        assert second == []

    def test_edges_spacing(self):
        clock = VsyncClock(refresh_hz=60.0)
        edges = clock.edges_until(0.05)
        assert edges[0] == pytest.approx(1.0 / 60.0)
        for a, b in zip(edges, edges[1:]):
            assert b - a == pytest.approx(1.0 / 60.0)

    def test_reset(self):
        clock = VsyncClock(refresh_hz=60.0)
        clock.edges_until(1.0)
        clock.reset()
        assert clock.next_edge_s == pytest.approx(1.0 / 60.0)

    def test_rejects_bad_refresh(self):
        with pytest.raises(ValueError):
            VsyncClock(refresh_hz=0.0)


# ---------------------------------------------------------------------------
# Buffer queue
# ---------------------------------------------------------------------------

class TestBufferQueue:
    def test_triple_buffering_default(self):
        buffers = BufferQueue()
        assert buffers.back_buffer_count == 2

    def test_queue_and_latch(self):
        buffers = BufferQueue(back_buffer_count=2)
        assert buffers.queue_frame()
        assert buffers.queue_frame()
        assert not buffers.queue_frame()  # full
        assert buffers.latch()
        assert buffers.queue_frame()  # space freed
        assert buffers.latch()
        assert buffers.latch()
        assert not buffers.latch()  # nothing left -> repeated frame

    def test_front_valid_after_first_latch(self):
        buffers = BufferQueue()
        assert not buffers.front_valid
        buffers.queue_frame()
        buffers.latch()
        assert buffers.front_valid

    def test_reset(self):
        buffers = BufferQueue()
        buffers.queue_frame()
        buffers.reset()
        assert buffers.ready_frames == 0
        assert not buffers.front_valid

    def test_rejects_zero_back_buffers(self):
        with pytest.raises(ValueError):
            BufferQueue(back_buffer_count=0)


# ---------------------------------------------------------------------------
# FPS counter / display
# ---------------------------------------------------------------------------

class TestFpsCounter:
    def test_counts_over_window(self):
        counter = FpsCounter(window_s=1.0)
        for i in range(60):
            counter.record(i / 60.0, 1)
        assert counter.fps(1.0) == pytest.approx(60.0, abs=2.0)

    def test_old_events_expire(self):
        counter = FpsCounter(window_s=1.0)
        counter.record(0.0, 30)
        assert counter.fps(0.5) == 30.0
        assert counter.fps(2.0) == 0.0

    def test_reset(self):
        counter = FpsCounter()
        counter.record(0.0, 10)
        counter.reset()
        assert counter.fps(0.1) == 0.0

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            FpsCounter(window_s=0.0)
        counter = FpsCounter()
        with pytest.raises(ValueError):
            counter.record(0.0, -1)


class TestDisplay:
    def test_fps_capped_at_refresh(self):
        display = Display(refresh_hz=60.0)
        for i in range(120):
            display.record_tick(i / 60.0, 2)  # absurd 120 fps input
        assert display.current_fps(2.0) == 60.0

    def test_totals(self):
        display = Display()
        display.record_tick(0.0, 1, 0)
        display.record_tick(0.1, 0, 2)
        assert display.total_frames == 1
        assert display.total_drops == 2
        display.reset()
        assert display.total_frames == 0


# ---------------------------------------------------------------------------
# Frame pipeline
# ---------------------------------------------------------------------------

@pytest.fixture
def clusters():
    return exynos9810().build_clusters()


VSYNC = 1.0 / 60.0


def run_pipeline(pipeline, clusters, frame, ticks, per_tick_demand=1):
    """Drive the pipeline for a number of ticks with a constant demand."""
    displayed = 0
    dropped = 0
    for _ in range(ticks):
        result = pipeline.tick(VSYNC, clusters, [frame] * per_tick_demand)
        displayed += result.frames_displayed
        dropped += result.frames_dropped
    return displayed, dropped


class TestFramePipeline:
    def test_light_frames_hit_60fps_at_max_frequency(self, clusters):
        pipeline = FramePipeline()
        frame = FrameSpec(cpu_work_mwu=10.0, gpu_work_mwu=20.0)
        displayed, dropped = run_pipeline(pipeline, clusters, frame, ticks=120)
        assert displayed >= 110  # ~60 fps over 2 seconds (minus pipeline fill)
        assert dropped == 0

    def test_low_frequency_cannot_sustain_heavy_frames(self, clusters):
        for cluster in clusters.values():
            cluster.set_frequency_index(0)
        pipeline = FramePipeline()
        frame = FrameSpec(cpu_work_mwu=55.0, gpu_work_mwu=120.0)
        displayed, dropped = run_pipeline(pipeline, clusters, frame, ticks=120)
        assert displayed < 80
        assert dropped > 0

    def test_throughput_scales_with_gpu_frequency(self, clusters):
        heavy_gpu = FrameSpec(cpu_work_mwu=10.0, gpu_work_mwu=140.0)
        clusters["gpu"].set_frequency_index(0)
        slow, _ = run_pipeline(FramePipeline(), clusters, heavy_gpu, ticks=120)
        clusters["gpu"].set_frequency_index(5)
        fast, _ = run_pipeline(FramePipeline(), clusters, heavy_gpu, ticks=120)
        assert fast > slow

    def test_no_demand_produces_no_frames(self, clusters):
        pipeline = FramePipeline()
        result = pipeline.tick(VSYNC, clusters, [])
        assert result.frames_displayed == 0
        assert result.frames_dropped == 0
        assert all(u == pytest.approx(0.0) for u in result.utilisations.values())

    def test_background_work_raises_utilisation(self, clusters):
        pipeline = FramePipeline()
        idle = pipeline.tick(VSYNC, clusters, [], background_work_mwu={})
        busy = pipeline.tick(VSYNC, clusters, [], background_work_mwu={"big": 100.0})
        assert busy.utilisations["big"] > idle.utilisations["big"]

    def test_utilisation_bounded(self, clusters):
        pipeline = FramePipeline()
        result = pipeline.tick(
            VSYNC,
            clusters,
            [FrameSpec(500.0, 500.0)],
            background_work_mwu={"big": 1e9, "little": 1e9, "gpu": 1e9},
        )
        for value in result.utilisations.values():
            assert 0.0 <= value <= 1.0

    def test_saturation_rejects_excess_demand(self, clusters):
        for cluster in clusters.values():
            cluster.set_frequency_index(0)
        pipeline = FramePipeline()
        frame = FrameSpec(cpu_work_mwu=80.0, gpu_work_mwu=200.0)
        total_rejected = 0
        for _ in range(60):
            result = pipeline.tick(VSYNC, clusters, [frame, frame])
            total_rejected += result.frames_dropped
        assert total_rejected > 0

    def test_frames_in_flight_and_reset(self, clusters):
        pipeline = FramePipeline()
        pipeline.tick(VSYNC, clusters, [FrameSpec(500.0, 500.0)])
        assert pipeline.frames_in_flight > 0
        pipeline.reset()
        assert pipeline.frames_in_flight == 0
        assert pipeline.time_s == 0.0

    def test_work_attribution_sums_to_frame_work(self, clusters):
        pipeline = FramePipeline()
        frame = FrameSpec(cpu_work_mwu=30.0, gpu_work_mwu=40.0)
        result = pipeline.tick(VSYNC, clusters, [frame])
        cpu_done = result.work_done_mwu["big"] + result.work_done_mwu["little"]
        assert cpu_done <= 30.0 + 1e-6
        assert result.work_done_mwu["gpu"] <= 40.0 + 1e-6

    def test_invalid_dt(self, clusters):
        with pytest.raises(ValueError):
            FramePipeline().tick(0.0, clusters, [])

    def test_frame_spec_validation(self):
        with pytest.raises(ValueError):
            FrameSpec(cpu_work_mwu=-1.0, gpu_work_mwu=0.0)

    def test_pipeline_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(ui_big_cores=0.0, ui_little_cores=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(gpu_core_fraction=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(max_pending_frames=0)

    def test_vsync_misses_reported_separately(self, clusters):
        pipeline = FramePipeline()
        # Demand only 1 frame; later vsync edges with nothing new are misses,
        # not drops.
        results = [pipeline.tick(VSYNC, clusters, [FrameSpec(5.0, 5.0)])]
        for _ in range(3):
            results.append(pipeline.tick(VSYNC, clusters, []))
        assert sum(r.frames_dropped for r in results) == 0
