"""Tests for the experiment runners and the analysis helpers."""

import pytest

from repro.analysis.compare import (
    percentage_reduction,
    percentage_saving,
    power_saving_pct,
    temperature_reduction_pct,
)
from repro.analysis.metrics import (
    fps_statistics,
    peak_temperature_rise_c,
    ppdw_series,
    series_statistics,
)
from repro.analysis.tables import format_comparison_table, format_series_table
from repro.core.governor import NextGovernor
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    GOVERNOR_FACTORIES,
    compare_governors_on_trace,
    make_governor,
    record_session_trace,
    run_app_session,
    run_trace,
    train_next_governor,
)
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.session import SessionSegment
from repro.workloads.trace import TraceRecorder


@pytest.fixture(scope="module")
def platform():
    return exynos9810()


@pytest.fixture(scope="module")
def short_trace(platform):
    return TraceRecorder.record_app(make_app("facebook", seed=5), 12.0, 1.0 / 60.0)


# ---------------------------------------------------------------------------
# Experiment runners
# ---------------------------------------------------------------------------

class TestGovernorFactory:
    def test_all_registry_names_instantiate(self):
        for name in GOVERNOR_FACTORIES:
            governor = make_governor(name)
            assert governor.invocation_period_s > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_governor("not_a_governor")


class TestRunners:
    def test_run_trace_produces_summary(self, platform, short_trace):
        result = run_trace(short_trace, make_governor("schedutil"), platform=platform)
        assert result.governor_name == "schedutil"
        assert result.app_names == ["facebook"]
        assert result.summary.average_power_w > 0.0

    def test_run_app_session(self, platform):
        result = run_app_session(
            "home", make_governor("powersave"), duration_s=8.0, platform=platform, seed=2
        )
        assert result.summary.duration_s > 6.0

    def test_record_session_trace(self, platform):
        trace = record_session_trace(
            [SessionSegment("home", 3.0), SessionSegment("spotify", 3.0)],
            platform=platform,
            seed=4,
        )
        assert trace.app_names() == ["home", "spotify"]

    def test_compare_governors_on_same_trace(self, platform, short_trace):
        comparison = compare_governors_on_trace(
            short_trace,
            {
                "schedutil": make_governor("schedutil"),
                "powersave": make_governor("powersave"),
            },
            baseline="schedutil",
            platform=platform,
        )
        saving = comparison.power_saving_pct("powersave")
        assert saving > 0.0
        assert comparison.power_saving_pct("schedutil") == pytest.approx(0.0)
        reduction = comparison.peak_temperature_reduction_pct("powersave", "big")
        assert reduction > 0.0

    def test_compare_requires_baseline_present(self, platform, short_trace):
        with pytest.raises(ValueError):
            compare_governors_on_trace(
                short_trace, {"powersave": make_governor("powersave")}, baseline="schedutil"
            )

    def test_peak_temperature_fallback_uses_each_runs_own_ambient(self):
        # Regression: the fallback for a node missing from the *other*
        # governor's summary used the baseline recorder's ambient.  When the
        # two runs were recorded at different ambients (e.g. traces captured
        # in different conditions), that misattributes the other run's rise.
        from types import SimpleNamespace

        from repro.sim.experiment import GovernorComparison

        def fake_result(ambient_c, peaks):
            return SimpleNamespace(
                recorder=SimpleNamespace(ambient_c=ambient_c),
                summary=SimpleNamespace(peak_temperature_c=peaks),
            )

        comparison = GovernorComparison(
            baseline_name="schedutil",
            results={
                "schedutil": fake_result(21.0, {"big": 41.0}),
                # 'big' missing from the candidate summary: it must fall back
                # to the candidate's own 26 C ambient, not the baseline's 21.
                "candidate": fake_result(26.0, {}),
            },
        )
        reduction = comparison.peak_temperature_reduction_pct("candidate", "big")
        # rise reduction = (41 - 26) / (41 - 21) = 75%
        assert reduction == pytest.approx(75.0)

    def test_train_next_governor_learns_states(self, platform):
        governor = NextGovernor(seed=3)
        result = train_next_governor(
            governor,
            "home",
            platform=platform,
            episodes=2,
            episode_duration_s=10.0,
            seed=3,
            td_error_threshold=0.0,
        )
        assert result.app_name == "home"
        assert result.episodes == 2
        assert result.agent_steps > 100
        assert result.qtable_states > 0
        assert result.training_time_s == pytest.approx(result.agent_steps * 0.1, rel=0.05)


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_series_statistics(self):
        stats = series_statistics([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.count == 4
        assert stats.std > 0.0
        with pytest.raises(ValueError):
            series_statistics([])

    def test_recorder_derived_metrics(self, platform, short_trace):
        result = run_trace(short_trace, make_governor("schedutil"), platform=platform)
        stats = fps_statistics(result.recorder)
        assert 0.0 <= stats["frame_delivery_ratio"] <= 1.0
        assert stats["fps_max"] <= 60.0
        series = ppdw_series(result.recorder)
        assert len(series) == len(result.recorder)
        assert all(value >= 0.0 for value in series)
        assert peak_temperature_rise_c(result.recorder, "big") > 0.0


class TestCompareHelpers:
    def test_percentage_saving(self):
        assert percentage_saving(4.0, 3.0) == pytest.approx(25.0)
        assert percentage_saving(0.0, 3.0) == 0.0
        assert percentage_saving(4.0, 5.0) < 0.0

    def test_percentage_reduction_above_floor(self):
        assert percentage_reduction(61.0, 41.0, floor=21.0) == pytest.approx(50.0)
        assert percentage_reduction(21.0, 25.0, floor=21.0) == 0.0

    def test_summary_based_helpers(self, platform, short_trace):
        baseline = run_trace(short_trace, make_governor("schedutil"), platform=platform).summary
        candidate = run_trace(short_trace, make_governor("powersave"), platform=platform).summary
        assert power_saving_pct(baseline, candidate) > 0.0
        assert temperature_reduction_pct(baseline, candidate, "big", ambient_c=21.0) > 0.0
        absolute = temperature_reduction_pct(
            baseline, candidate, "big", ambient_c=21.0, absolute=True
        )
        assert 0.0 < absolute < 100.0
        assert temperature_reduction_pct(baseline, candidate, "missing_node") == 0.0


class TestTables:
    def test_format_series_table(self):
        text = format_series_table(
            ["fps", "power_w"], [[60, 3.5], [30, 2.0]], title="Example"
        )
        assert "Example" in text
        assert "fps" in text and "power_w" in text
        assert "3.500" in text

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_series_table(["a", "b"], [[1]])
        with pytest.raises(ValueError):
            format_series_table([], [])

    def test_format_comparison_table_handles_missing_cells(self):
        table = format_comparison_table(
            {"facebook": {"schedutil": 2.9, "next": 2.1}, "lineage": {"schedutil": 7.4}},
            governor_order=["schedutil", "next"],
            value_label="average power (W)",
            title="Fig. 7",
        )
        assert "Fig. 7" in table
        assert "-" in table  # missing lineage/next cell
        assert "2.900" in table
