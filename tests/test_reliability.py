"""Unit contract of :mod:`repro.reliability`: faults, retry, watchdog, clock.

The subsystem's promises are all determinism promises: a seeded
:class:`FaultPlan` fires the same faults on every run and machine; retry
backoff is a pure function of ``(seed, key, attempt)``; the watchdog's
budgets are pure functions of the cost model; and the instrumented
``atomic_write_json`` seams leave exactly the debris a real crash would.
The end-to-end recovery behaviour (pool rebuilds, parity under chaos)
lives in ``test_chaos_parity.py``; this module pins the primitives.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.artifact import TrainingSpec
from repro.core.federated import FleetSpec
from repro.core.persistence import atomic_write_json, quarantine_entry
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.federated import FleetStore
from repro.reliability.faults import (
    CRASH_EXIT_CODE,
    FAULT_PLAN_ENV,
    KIND_CRASH,
    KIND_HANG,
    KIND_TORN_WRITE,
    KIND_TRANSIENT,
    SITE_ATOMIC_WRITE,
    SITE_ATOMIC_WRITE_STAGED,
    SITE_EXECUTE_CELL,
    FaultPlan,
    FaultRule,
    InjectedCrashError,
    InjectedTransientError,
    fault_point,
    fire_counts,
    injected_faults,
)
from repro.reliability.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    RetryState,
    classify_exception,
)
from repro.reliability.watchdog import WatchdogPolicy


# ---------------------------------------------------------------------------
# FaultPlan: scheduling, determinism, serialisation
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_no_active_plan_is_a_noop(self):
        assert fault_point(SITE_EXECUTE_CELL, "any-key") is None

    def test_transient_rule_raises_on_first_attempt_only(self):
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_TRANSIENT),)
        )
        with injected_faults(plan):
            with pytest.raises(InjectedTransientError):
                fault_point(SITE_EXECUTE_CELL, "cell-a", attempt=0)
            # max_attempt=1 (default): the retried attempt escapes.
            assert fault_point(SITE_EXECUTE_CELL, "cell-a", attempt=1) is None

    def test_crash_raises_in_unmarked_process(self):
        # This test process never called mark_worker_process(), so a crash
        # rule must raise instead of killing the test runner.
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_CRASH),)
        )
        with injected_faults(plan):
            with pytest.raises(InjectedCrashError):
                fault_point(SITE_EXECUTE_CELL, "cell-a")

    def test_crash_hard_exits_a_marked_worker_process(self):
        # The structural distinction the pool initializer installs: in a
        # marked process the same rule is a real death, observable only
        # from outside -- exactly how a pool parent sees it.
        plan = FaultPlan(
            rules=(FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_CRASH),)
        )
        code = (
            "from repro.reliability.faults import ("
            "SITE_EXECUTE_CELL, fault_point, mark_worker_process)\n"
            "mark_worker_process()\n"
            "fault_point(SITE_EXECUTE_CELL, 'cell-a')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, FAULT_PLAN_ENV: plan.to_json()},
        )
        assert proc.returncode == CRASH_EXIT_CODE

    def test_match_pattern_selects_keys(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ATOMIC_WRITE,
                    kind=KIND_TORN_WRITE,
                    match="shard-status.json",
                ),
            )
        )
        with injected_faults(plan):
            rule = fault_point(SITE_ATOMIC_WRITE, "shard-status.json")
            assert rule is not None and rule.kind == KIND_TORN_WRITE
            assert fault_point(SITE_ATOMIC_WRITE, "other.json") is None

    def test_max_fires_budget_is_per_process_and_counted(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ATOMIC_WRITE, kind=KIND_TORN_WRITE, max_fires=1
                ),
            )
        )
        with injected_faults(plan):
            assert fault_point(SITE_ATOMIC_WRITE, "f.json") is not None
            assert fault_point(SITE_ATOMIC_WRITE, "f.json") is None
            assert fire_counts() == {(SITE_ATOMIC_WRITE, "f.json"): 1}

    def test_rate_thinning_is_deterministic(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    site=SITE_EXECUTE_CELL, kind=KIND_HANG, rate=0.5, hang_s=0.0
                ),
            ),
        )
        keys = [f"cell-{i}" for i in range(32)]

        def fired():
            with injected_faults(plan):
                return [
                    fault_point(SITE_EXECUTE_CELL, key) is not None
                    for key in keys
                ]

        first = fired()
        assert first == fired()  # same plan, same faults -- always
        assert any(first) and not all(first)  # the rate actually thins

    def test_different_seeds_fire_on_different_cells(self):
        def pattern(seed):
            plan = FaultPlan(
                seed=seed,
                rules=(
                    FaultRule(
                        site=SITE_EXECUTE_CELL,
                        kind=KIND_HANG,
                        rate=0.5,
                        hang_s=0.0,
                    ),
                ),
            )
            with injected_faults(plan):
                return [
                    fault_point(SITE_EXECUTE_CELL, f"cell-{i}") is not None
                    for i in range(32)
                ]

        assert pattern(0) != pattern(1)

    def test_json_and_env_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(
                    site=SITE_EXECUTE_CELL,
                    kind=KIND_TRANSIENT,
                    match="cell-*",
                    rate=0.25,
                    max_attempt=3,
                    max_fires=2,
                    hang_s=0.5,
                ),
            ),
        )
        assert FaultPlan.parse(plan.to_json()) == plan
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        assert FaultPlan.parse(str(plan_file)) == plan

    def test_unknown_site_and_kind_are_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="nope.site", kind=KIND_CRASH)
        with pytest.raises(ValueError):
            FaultRule(site=SITE_EXECUTE_CELL, kind="meteor")


# ---------------------------------------------------------------------------
# Retry: classification, backoff, deterministic-failure detection
# ---------------------------------------------------------------------------

class TestRetry:
    def test_classification(self):
        assert classify_exception(InjectedTransientError("x")) == TRANSIENT
        assert classify_exception(InjectedCrashError("x")) == TRANSIENT
        assert classify_exception(OSError("disk")) == TRANSIENT
        assert classify_exception(TimeoutError()) == TRANSIENT
        assert classify_exception(ValueError("bug")) == PERMANENT
        assert classify_exception(KeyError("bug")) == PERMANENT

    def test_backoff_is_deterministic_capped_and_grows(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=1.0, seed=4)
        first = [policy.backoff_s("cell-a", n) for n in range(1, 8)]
        again = [policy.backoff_s("cell-a", n) for n in range(1, 8)]
        assert first == again
        assert policy.backoff_s("cell-a", 0) == 0.0
        assert all(delay <= 1.0 for delay in first)
        assert first[-1] == 1.0  # exponential growth reaches the cap
        # Jitter separates keys so co-located runners do not retry in step.
        assert policy.backoff_s("cell-a", 1) != policy.backoff_s("cell-b", 1)

    def test_should_retry_budget_and_kind(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(TRANSIENT, 0)
        assert policy.should_retry(TRANSIENT, 1)
        assert not policy.should_retry(TRANSIENT, 2)
        assert not policy.should_retry(PERMANENT, 0)
        assert not policy.should_retry(None, 0)

    def test_repeated_traceback_marks_deterministic(self):
        state = RetryState()
        assert not state.record_failure(TRANSIENT, "OSError", "trace-A")
        assert not state.record_failure(TRANSIENT, "OSError", "trace-B")
        assert state.record_failure(TRANSIENT, "OSError", "trace-B")
        assert state.attempt == 3
        lineage = state.lineage_dicts()
        assert [record["attempt"] for record in lineage] == [0, 1, 2]
        assert all(record["error_kind"] == TRANSIENT for record in lineage)

    def test_unknown_error_text_never_repeats(self):
        # A pool-restart bump has no traceback; it must not trip the
        # deterministic-failure detector.
        state = RetryState()
        assert not state.record_failure(TRANSIENT, "restart", None)
        assert not state.record_failure(TRANSIENT, "restart", None)


# ---------------------------------------------------------------------------
# Watchdog budgets
# ---------------------------------------------------------------------------

class _FlatCostModel:
    def cell_cost_s(self, cell):
        return 10.0

    def training_cost_s(self, cell):
        return 100.0


class TestWatchdogPolicy:
    def test_no_cost_model_means_no_limit(self):
        policy = WatchdogPolicy()
        assert policy.cell_budget_s("cell") is None
        assert policy.batch_budget_s(["a", "b"]) is None
        assert policy.training_budget_s("cell") is None

    def test_budgets_scale_the_cost_model_with_a_floor(self):
        policy = WatchdogPolicy(
            cost_model=_FlatCostModel(), multiplier=20.0, floor_s=60.0
        )
        assert policy.cell_budget_s("cell") == 200.0
        assert policy.training_budget_s("cell") == 2000.0
        assert policy.batch_budget_s(["a", "b", "c"]) == 600.0
        tight = WatchdogPolicy(
            cost_model=_FlatCostModel(), multiplier=1.0, floor_s=60.0
        )
        assert tight.cell_budget_s("cell") == 60.0  # the floor wins

    def test_flat_override_replaces_every_budget(self):
        policy = WatchdogPolicy(
            cost_model=_FlatCostModel(), cell_timeout_s=5.0
        )
        assert policy.cell_budget_s("cell") == 5.0
        assert policy.training_budget_s("cell") == 5.0
        assert policy.batch_budget_s(["a", "b"]) == 10.0

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            WatchdogPolicy(multiplier=0.0)
        with pytest.raises(ValueError):
            WatchdogPolicy(cell_timeout_s=0.0)


# ---------------------------------------------------------------------------
# atomic_write_json fault seams + quarantine
# ---------------------------------------------------------------------------

class TestWriteSeams:
    def test_fault_free_write_is_atomic_and_clean(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"k": 1})
        assert json.load(open(path)) == {"k": 1}
        assert sorted(os.listdir(tmp_path)) == ["doc.json"]  # no staging debris

    def test_torn_write_publishes_truncated_document(self, tmp_path):
        path = str(tmp_path / "doc.json")
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ATOMIC_WRITE,
                    kind=KIND_TORN_WRITE,
                    match="doc.json",
                    max_fires=1,
                ),
            )
        )
        with injected_faults(plan):
            atomic_write_json(path, {"key": "value", "n": 12345})
            with pytest.raises(ValueError):
                json.load(open(path))
            # The budget is spent: the rewrite repairs the document.
            atomic_write_json(path, {"key": "value", "n": 12345})
        assert json.load(open(path)) == {"key": "value", "n": 12345}

    def test_staged_crash_leaves_debris_and_previous_document(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"version": 1})
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site=SITE_ATOMIC_WRITE_STAGED,
                    kind=KIND_CRASH,
                    match="doc.json",
                    max_fires=1,
                ),
            )
        )
        with injected_faults(plan):
            with pytest.raises(InjectedCrashError):
                atomic_write_json(path, {"version": 2})
            # Previous document intact, staging debris left behind.
            assert json.load(open(path)) == {"version": 1}
            debris = sorted(n for n in os.listdir(tmp_path) if ".tmp." in n)
            assert len(debris) == 1
            # The recovery write (same process, budget spent) publishes.
            atomic_write_json(path, {"version": 2})
        assert json.load(open(path)) == {"version": 2}

    def test_quarantine_entry_moves_aside(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text("{torn")
        assert quarantine_entry(str(path)) == str(path) + ".bad"
        assert not path.exists()
        assert (tmp_path / "entry.json.bad").read_text() == "{torn"
        assert quarantine_entry(str(path)) is None  # already gone


# ---------------------------------------------------------------------------
# Store-load quarantine: ArtifactStore and FleetStore
# ---------------------------------------------------------------------------

class TestStoreQuarantine:
    def test_artifact_store_quarantines_corrupt_entry(self, tmp_path):
        spec = TrainingSpec(
            apps=("home",),
            platform="generic-two-cluster",
            episodes=1,
            episode_duration_s=4.0,
            seed=5,
        )
        store = ArtifactStore(str(tmp_path))
        path = tmp_path / f"{spec.fingerprint()}.agent.json"
        path.write_text('{"torn": ')
        assert store.load(spec) is None  # miss, not a raise
        assert not path.exists()
        assert path.with_suffix(".json.bad").exists()
        assert store.entry_paths() == []  # .bad is filtered out

    def test_fleet_store_quarantines_corrupt_entry(self, tmp_path):
        spec = FleetSpec(apps=("home",), devices=2, rounds=1, episodes=1)
        store = FleetStore(str(tmp_path))
        path = tmp_path / f"{spec.fingerprint()}.fleet.json"
        path.write_text('{"torn": ')
        assert store.load(spec) is None
        assert not path.exists()
        assert path.with_suffix(".json.bad").exists()
        assert store.entry_paths() == []
