"""Observability layer: tracing, metrics, progress, profiling, report, export.

The load-bearing contract is the one the chaos and golden suites also
pin: **observability never perturbs results**.  Every simulation-touching
test here compares ``sample_stream_hash`` between an instrumented run and
a bare one.  On top of that the suite pins the trace file format (schema
versioning, torn-tail tolerance, the ``.bad`` quarantine idiom on merge),
cross-process span stitching (pool workers parent their spans to the
orchestrator's sweep span through ``REPRO_TRACE``), the progress
tracker's first-delivery accounting, and the report / Chrome-export
surfaces that ``repro-sweep report`` exposes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.distributed import (
    RemainingCost,
    merge_shards,
    plan_shards,
    run_shard,
    shard_directory,
    shard_status,
)
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import CellResult, SweepRunner
from repro.obs.export import chrome_trace_events, export_chrome_trace, first_span_named
from repro.obs.metrics import MetricsRegistry, merge_snapshots, metrics, reset_metrics
from repro.obs.profile import (
    HotLoopProfiler,
    active_profiler,
    deactivate_profiling,
    profiled,
)
from repro.obs.progress import ProgressTracker
from repro.obs.report import build_span_tree, render_text, report_payload
from repro.obs.trace import (
    TRACE_BASENAME,
    TRACE_ENV,
    TRACE_SCHEMA_VERSION,
    Tracer,
    TraceSink,
    activate_tracing,
    deactivate_tracing,
    maybe_span,
    merge_traces,
    read_trace,
    traced,
    tracing_active,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Tracing/metrics/profiling are process-global; isolate every test."""
    deactivate_tracing()
    deactivate_profiling()
    reset_metrics()
    yield
    deactivate_tracing()
    deactivate_profiling()
    reset_metrics()


def small_matrix() -> ScenarioMatrix:
    """2 governors x 2 workloads x 1 seed, ~3 s cells: fast and untrained."""
    return ScenarioMatrix.build(
        name="obs-small",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0,),
        duration_s=3.0,
    )


def cell_hashes(sweep) -> dict:
    assert not sweep.failures, sweep.failures and sweep.failures[0].error
    return {
        result.cell.fingerprint(): result.summary["sample_stream_hash"]
        for result in sweep.results
    }


def span_events(events, name=None):
    found = [event for event in events if event.get("kind") == "span"]
    if name is not None:
        found = [event for event in found if event.get("name") == name]
    return found


# ---------------------------------------------------------------------------
# Trace file format: round trip, schema versioning, torn tails
# ---------------------------------------------------------------------------

class TestTraceFormat:
    def test_span_event_metrics_round_trip(self, tmp_path):
        path = str(tmp_path / TRACE_BASENAME)
        tracer = Tracer(TraceSink(path))
        with tracer.span("sweep", matrix="demo") as outer:
            with tracer.span("cell", fingerprint="abc") as inner:
                tracer.event("retry", classification="transient")
            outer.note("done", 1)
        tracer.flush_metrics({"counters": {"cache.hits": 2.0}})

        events, torn = read_trace(path)
        assert torn == 0
        header = events[0]
        assert header["kind"] == "header"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["pid"] == os.getpid()

        # Spans append on *close*, so the inner cell span lands first.
        cell = span_events(events, "cell")[0]
        sweep = span_events(events, "sweep")[0]
        assert cell["parent"] == sweep["span"]
        assert sweep["parent"] is None
        assert sweep["attrs"] == {"matrix": "demo", "done": 1}
        assert sweep["end_s"] >= sweep["start_s"]

        retry = [e for e in events if e.get("kind") == "event"][0]
        assert retry["name"] == "retry"
        assert retry["parent"] == cell["span"]  # fired while the cell was open

        footer = [e for e in events if e.get("kind") == "metrics"][0]
        assert footer["metrics"]["counters"]["cache.hits"] == 2.0

    def test_newer_schema_header_raises(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "header", "schema": TRACE_SCHEMA_VERSION + 1})
                + "\n"
            )
        with pytest.raises(ValueError, match="newer than supported"):
            read_trace(path)

    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / TRACE_BASENAME)
        tracer = Tracer(TraceSink(path))
        with tracer.span("sweep"):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "trunc')  # killed mid-append

        events, torn = read_trace(path)
        assert torn == 1
        assert span_events(events, "sweep")  # intact prefix still parses

    def test_worker_inherits_sink_and_root_from_env(self, tmp_path, monkeypatch):
        """maybe_span resolves the env like a pool worker would."""
        path = str(tmp_path / TRACE_BASENAME)
        monkeypatch.setenv(
            TRACE_ENV, TraceSink(path, root="feed-da-5:1").to_json()
        )
        assert tracing_active()
        with maybe_span("cell", fingerprint="abc") as span:
            assert span is not None
        events, _ = read_trace(path)
        assert span_events(events, "cell")[0]["parent"] == "feed-da-5:1"

    def test_maybe_span_is_noop_without_env(self, tmp_path):
        assert not tracing_active()
        with maybe_span("cell") as span:
            assert span is None
        assert not os.path.exists(str(tmp_path / TRACE_BASENAME))

    def test_activate_exports_and_deactivate_clears_env(self, tmp_path):
        path = str(tmp_path / TRACE_BASENAME)
        activate_tracing(path)
        assert json.loads(os.environ[TRACE_ENV])["path"] == path
        deactivate_tracing()
        assert TRACE_ENV not in os.environ
        assert not tracing_active()


class TestMergeTraces:
    def test_merges_shard_traces_into_one_file(self, tmp_path):
        sources = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.jsonl")
            tracer = Tracer(TraceSink(path))
            with tracer.span("shard_run", shard=index):
                pass
            sources.append(path)
        destination = str(tmp_path / "merged.jsonl")

        counters = merge_traces(sources, destination)
        assert counters == {
            "sources": 2,
            "events": 4,  # header + shard_run span per source
            "torn_lines": 0,
            "quarantined": 0,
        }
        events, torn = read_trace(destination)
        assert torn == 0
        assert len(span_events(events, "shard_run")) == 2

    def test_wholly_torn_source_is_quarantined_as_bad(self, tmp_path):
        good = str(tmp_path / "good.jsonl")
        tracer = Tracer(TraceSink(good))
        with tracer.span("shard_run"):
            pass
        dead = str(tmp_path / "dead.jsonl")
        with open(dead, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")

        counters = merge_traces(
            [good, dead, str(tmp_path / "missing.jsonl")],
            str(tmp_path / "merged.jsonl"),
        )
        assert counters["sources"] == 1
        assert counters["quarantined"] == 1
        assert not os.path.exists(dead)
        assert os.path.exists(dead + ".bad")  # evidence kept for post-mortems


# ---------------------------------------------------------------------------
# Instrumented sweeps: span stitching + the never-perturb invariant
# ---------------------------------------------------------------------------

class TestTracedSweeps:
    def test_pooled_sweep_builds_one_tree_across_processes(self, tmp_path):
        matrix = small_matrix()
        path = str(tmp_path / TRACE_BASENAME)
        with traced(path):
            sweep = SweepRunner(max_workers=2).run(matrix)
        assert not sweep.failures

        events, torn = read_trace(path)
        assert torn == 0

        # fork()ed pool workers must NOT write through the orchestrator's
        # inherited tracer: every process gets its own id prefix (no span-id
        # collisions) and stamps its own pid.
        spans = span_events(events)
        span_ids = [span["span"] for span in spans]
        assert len(span_ids) == len(set(span_ids))
        assert len({event["pid"] for event in events}) >= 2

        roots = build_span_tree(events)
        assert [root["name"] for root in roots] == ["sweep"]
        (root,) = roots

        # Every cell span is stitched under the orchestrator's sweep span,
        # whether it ran scalar in a worker or as a batch-kernel lane.
        def collect(node, name):
            found = [node] if node["name"] == name else []
            for child in node["children"]:
                found.extend(collect(child, name))
            return found

        cells = collect(root, "cell")
        assert len(cells) == len(matrix.cells())
        assert {cell["attrs"]["fingerprint"] for cell in cells} == {
            cell.fingerprint() for cell in matrix.cells()
        }
        assert all(cell["attrs"]["status"] == "ok" for cell in cells)

        # The orchestrator flushed one cumulative metrics footer.
        footers = [e for e in events if e.get("kind") == "metrics"]
        assert any(e["pid"] == os.getpid() for e in footers)

        # Deactivation restored the environment for the next run.
        assert not tracing_active()

    def test_tracing_does_not_perturb_results(self, tmp_path):
        matrix = small_matrix()
        bare = cell_hashes(SweepRunner(max_workers=1).run(matrix))
        with traced(str(tmp_path / TRACE_BASENAME)):
            traced_pool = cell_hashes(SweepRunner(max_workers=2).run(matrix))
        with traced(str(tmp_path / "scalar" / TRACE_BASENAME)):
            traced_scalar = cell_hashes(SweepRunner(max_workers=1).run(matrix))
        assert traced_pool == bare
        assert traced_scalar == bare

    def test_sharded_traces_merge_with_bit_identity(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)
        for index in range(manifest.shard_count):
            shard_dir = shard_directory(base, index)
            with traced(os.path.join(shard_dir, TRACE_BASENAME)):
                sweep = run_shard(manifest, index, shard_dir)
            assert not sweep.failures
            status = shard_status(manifest, index, shard_dir)
            assert status.state == "complete"
            assert status.quarantined == 0

        dest = os.path.join(base, "merged")
        merged, counters = merge_shards(
            manifest,
            [shard_directory(base, i) for i in range(manifest.shard_count)],
            dest,
        )
        assert cell_hashes(merged) == cell_hashes(SweepRunner(max_workers=1).run(matrix))

        # The merge folded both shard traces next to the merged cache.
        assert counters["trace_events"] > 0
        assert counters["trace_quarantined"] == 0
        merged_trace = os.path.join(dest, TRACE_BASENAME)
        events, _ = read_trace(merged_trace)
        shard_spans = span_events(events, "shard_run")
        assert {span["attrs"]["shard"] for span in shard_spans} == {0, 1}
        assert len(span_events(events, "cell")) == len(matrix.cells())
        # run_shard's tracker appended per-delivery progress events.
        assert [e for e in events if e.get("kind") == "event" and e["name"] == "progress"]

    def test_shard_status_carries_metrics_snapshot(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        shard_dir = shard_directory(str(tmp_path), 0)
        metrics().inc("cache.misses", 3.0)
        run_shard(manifest, 0, shard_dir)
        with open(os.path.join(shard_dir, "shard-status.json")) as handle:
            payload = json.load(handle)
        assert payload["quarantined"] == 0
        assert payload["metrics"]["counters"]["cache.misses"] >= 3.0


# ---------------------------------------------------------------------------
# Hot-loop profiler
# ---------------------------------------------------------------------------

class TestProfiler:
    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            HotLoopProfiler(stride=0)

    def test_wrap_times_every_strideth_call(self):
        profiler = HotLoopProfiler(stride=3)
        wrapped = profiler.wrap("scaler", lambda x: x * 2)
        assert [wrapped(i) for i in range(6)] == [0, 2, 4, 6, 8, 10]
        snapshot = profiler.snapshot()
        assert snapshot["stride"] == 3
        assert snapshot["stages"]["scaler"]["calls"] == 6
        assert snapshot["stages"]["scaler"]["sampled"] == 2
        assert snapshot["stages"]["scaler"]["wall_s"] >= 0.0

    def test_profiled_run_is_bit_identical_and_buckets_stages(self):
        matrix = small_matrix()
        bare = cell_hashes(SweepRunner(max_workers=1).run(matrix))
        with profiled(stride=4) as profiler:
            hot = cell_hashes(SweepRunner(max_workers=1).run(matrix))
        assert hot == bare

        snapshot = profiler.snapshot()
        sampled_stages = {
            stage
            for stage, stats in snapshot["stages"].items()
            if stats["sampled"] > 0
        }
        # The hot loop drove real work through the profiled stage seams.
        assert {"power_thermal", "scaler", "recorder"} <= sampled_stages
        assert active_profiler() is None  # the context manager deactivated

    def test_profile_lands_in_trace_footer(self, tmp_path):
        path = str(tmp_path / TRACE_BASENAME)
        with traced(path):
            with profiled(stride=2):
                SweepRunner(max_workers=1).run(small_matrix())
        events, _ = read_trace(path)
        payload = report_payload(events)
        assert payload["profile"] is not None
        assert payload["profile"]["stride"] == 2
        assert payload["profile"]["stages"]["power_thermal"]["sampled"] > 0


# ---------------------------------------------------------------------------
# Progress accounting
# ---------------------------------------------------------------------------

class TestProgressTracker:
    def make(self, workers=1, emit=False):
        cells = small_matrix().cells()
        costs = RemainingCost({cell.fingerprint(): 10.0 for cell in cells})
        return cells, ProgressTracker(costs, workers=workers, emit=emit)

    def test_counters_bump_only_on_first_delivery(self):
        cells, tracker = self.make()
        tracker.note(1, 4, CellResult(cell=cells[0], status="ok", summary={}))
        tracker.note(
            2, 4, CellResult(cell=cells[1], status="ok", summary={}, from_cache=True)
        )
        # Duplicate-fingerprint expansions deliver the same cell twice.
        tracker.note(3, 4, CellResult(cell=cells[0], status="ok", summary={}))
        assert tracker.completed_total == 2
        assert tracker.cached_total == 1
        assert tracker.failed_total == 0

    def test_retries_accumulate_and_permanent_failures_quarantine(self):
        cells, tracker = self.make()
        lineage = [{"classification": "transient"}, {"classification": "transient"}]
        event = tracker.note(
            1,
            4,
            CellResult(cell=cells[0], status="ok", summary={}, attempts=lineage),
        )
        assert event.attempts == 2
        assert ", 2 retries" in event.format_line()
        tracker.note(
            2,
            4,
            CellResult(
                cell=cells[1],
                status="error",
                error="boom",
                error_kind="permanent",
                attempts=[{"classification": "permanent"}],
            ),
        )
        assert tracker.retries_total == 3
        assert tracker.quarantined_total == 1
        assert tracker.failed_total == 1

    def test_eta_divides_by_effective_parallelism(self):
        cells, tracker = self.make(workers=8)
        event = tracker.note(
            1, 4, CellResult(cell=cells[0], status="ok", summary={})
        )
        # 30 s outstanding over 3 cells: 8 workers clamp to 3.
        assert event.eta_s == pytest.approx(10.0)
        assert "~10.0s left" in event.format_line()
        assert "retries" not in event.format_line()

    def test_emits_progress_events_into_active_trace(self, tmp_path):
        path = str(tmp_path / TRACE_BASENAME)
        cells = small_matrix().cells()
        costs = RemainingCost({cell.fingerprint(): 10.0 for cell in cells})
        with traced(path):
            tracker = ProgressTracker(costs, workers=1, emit=True)
            tracker.note(1, 4, CellResult(cell=cells[0], status="ok", summary={}))
        events, _ = read_trace(path)
        (progress,) = [e for e in events if e.get("kind") == "event"]
        assert progress["name"] == "progress"
        assert progress["attrs"]["done"] == 1
        assert progress["attrs"]["total"] == 4


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_registry_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("retry.transient")
        registry.inc("retry.transient", 2.0)
        registry.set_gauge("batch.device_ticks_per_s", 100.0)
        registry.set_gauge("batch.device_ticks_per_s", 250.0)
        for value in (4.0, 1.0, 7.0):
            registry.observe("batch.lane_occupancy", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"retry.transient": 3.0}
        assert snapshot["gauges"] == {"batch.device_ticks_per_s": 250.0}
        assert snapshot["histograms"]["batch.lane_occupancy"] == {
            "count": 3,
            "sum": 12.0,
            "min": 1.0,
            "max": 7.0,
        }
        registry.reset()
        assert registry.empty()

    def test_merge_snapshots_sums_counters_keeps_last_gauge(self):
        first = {
            "counters": {"cache.hits": 2.0},
            "gauges": {"ticks_per_s": 10.0},
            "histograms": {"occ": {"count": 1, "sum": 3.0, "min": 3.0, "max": 3.0}},
        }
        second = {
            "counters": {"cache.hits": 1.0, "retry.transient": 4.0},
            "gauges": {"ticks_per_s": 20.0},
            "histograms": {"occ": {"count": 2, "sum": 9.0, "min": 1.0, "max": 8.0}},
        }
        merged = merge_snapshots([first, None, second])
        assert merged["counters"] == {"cache.hits": 3.0, "retry.transient": 4.0}
        assert merged["gauges"] == {"ticks_per_s": 20.0}
        assert merged["histograms"]["occ"] == {
            "count": 3,
            "sum": 12.0,
            "min": 1.0,
            "max": 8.0,
        }


# ---------------------------------------------------------------------------
# Report and Chrome export
# ---------------------------------------------------------------------------

def synthetic_events():
    """A two-process trace: orchestrator sweep + one worker cell, a retry,
    an orphaned span and two metrics footers."""
    return [
        {"kind": "header", "schema": 1, "pid": 10},
        {
            "kind": "span",
            "name": "cell",
            "span": "b:1",
            "parent": "a:1",
            "start_s": 1.0,
            "end_s": 2.5,
            "pid": 11,
            "attrs": {"label": "facebook/schedutil", "status": "ok"},
        },
        {
            "kind": "event",
            "name": "retry",
            "parent": "b:1",
            "wall_s": 1.5,
            "pid": 11,
            "attrs": {"classification": "transient"},
        },
        {
            "kind": "span",
            "name": "sweep",
            "span": "a:1",
            "parent": None,
            "start_s": 0.5,
            "end_s": 3.0,
            "pid": 10,
            "attrs": {"matrix": "demo"},
        },
        {
            "kind": "span",
            "name": "orphan",
            "span": "c:1",
            "parent": "gone:9",
            "start_s": 2.0,
            "end_s": 2.1,
            "pid": 12,
            "attrs": {},
        },
        {"kind": "metrics", "pid": 11, "metrics": {"counters": {"cache.hits": 1.0}}},
        {"kind": "metrics", "pid": 10, "metrics": {"counters": {"cache.hits": 2.0}}},
    ]


class TestReport:
    def test_span_tree_stitches_and_keeps_orphans_as_roots(self):
        roots = build_span_tree(synthetic_events())
        assert [root["name"] for root in roots] == ["sweep", "orphan"]
        sweep = roots[0]
        assert [child["name"] for child in sweep["children"]] == ["cell"]

    def test_report_payload_aggregates_across_processes(self):
        payload = report_payload(synthetic_events(), torn_lines=1)
        assert payload["events"] == 7
        assert payload["torn_lines"] == 1
        assert payload["processes"] == [10, 11, 12]
        assert len(payload["retries"]) == 1
        # Worker + orchestrator footers sum.
        assert payload["metrics"]["counters"]["cache.hits"] == 3.0
        assert payload["profile"] is None

    def test_render_text_shows_tree_retries_and_metrics(self):
        text = render_text(synthetic_events(), torn_lines=1)
        assert "7 events from 3 process(es), 1 torn line(s) skipped" in text
        assert "facebook/schedutil" in text
        assert "[1 retries]" in text
        assert "status=ok" in text
        assert "cache.hits = 3" in text
        # The cell renders indented one level under the sweep.
        lines = text.splitlines()
        sweep_line = next(line for line in lines if "sweep" in line)
        cell_line = next(line for line in lines if "cell" in line)
        assert len(cell_line) - len(cell_line.lstrip()) > len(sweep_line) - len(
            sweep_line.lstrip()
        )

    def test_first_span_named(self):
        events = synthetic_events()
        assert first_span_named(events, "sweep")["span"] == "a:1"
        assert first_span_named(events, "missing") is None


class TestChromeExport:
    def test_spans_become_complete_events_rebased_to_zero(self):
        document = chrome_trace_events(synthetic_events())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 3
        assert len(instants) == 1
        sweep = next(e for e in complete if e["name"] == "sweep")
        assert sweep["ts"] == 0.0  # earliest event rebases the timeline
        assert sweep["dur"] == pytest.approx(2.5e6)
        cell = next(e for e in complete if e["name"] == "cell")
        assert cell["ts"] == pytest.approx(0.5e6)
        assert cell["pid"] == 11
        assert cell["args"]["span"] == "b:1"
        assert instants[0]["ts"] == pytest.approx(1.0e6)

    def test_export_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.chrome.json")
        export_chrome_trace(synthetic_events(), path)
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]
        assert all("ph" in event for event in document["traceEvents"])
