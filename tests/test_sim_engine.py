"""Unit tests for the simulation clock, config, recorder and engine."""

import pytest

from repro.governors.schedutil import SchedutilGovernor
from repro.governors.simple import PerformanceGovernor, PowersaveGovernor
from repro.sim.clock import SimulationClock
from repro.sim.config import SimulationConfig
from repro.sim.engine import SessionWorkload, Simulation
from repro.sim.recorder import Recorder, SimulationSample
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.session import SessionSegment
from repro.workloads.trace import TracePlayer, TraceRecorder


# ---------------------------------------------------------------------------
# Clock / config
# ---------------------------------------------------------------------------

class TestSimulationClock:
    def test_advance_and_time(self):
        clock = SimulationClock(dt_s=0.5)
        assert clock.now_s == 0.0
        clock.advance()
        clock.advance()
        assert clock.now_s == pytest.approx(1.0)
        assert clock.ticks == 2

    def test_no_floating_point_drift(self):
        clock = SimulationClock(dt_s=1.0 / 60.0)
        for _ in range(60 * 60):
            clock.advance()
        assert clock.now_s == pytest.approx(60.0, abs=1e-9)

    def test_ticks_for(self):
        clock = SimulationClock(dt_s=1.0 / 60.0)
        assert clock.ticks_for(1.0) == 60
        with pytest.raises(ValueError):
            clock.ticks_for(-1.0)

    def test_reset(self):
        clock = SimulationClock(dt_s=0.1)
        clock.advance()
        clock.reset()
        assert clock.ticks == 0

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            SimulationClock(dt_s=0.0)


class TestSimulationConfig:
    def test_dt_is_vsync_period(self):
        config = SimulationConfig(refresh_hz=60.0)
        assert config.dt_s == pytest.approx(1.0 / 60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(refresh_hz=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(record_every_n_ticks=0)


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------

def make_sample(time_s, power=2.0, fps=30.0, big=45.0, device=30.0, displayed=1,
                demanded=1, dropped=0):
    return SimulationSample(
        time_s=time_s,
        app_name="app",
        phase_name="phase",
        fps=fps,
        target_fps=fps,
        frames_demanded=demanded,
        frames_displayed=displayed,
        frames_dropped=dropped,
        power_total_w=power,
        power_per_cluster_w={"big": power * 0.6},
        temperatures_c={"big": big, "device": device},
        frequencies_mhz={"big": 1690.0},
        max_limits_mhz={"big": 2704.0},
        utilisations={"big": 0.4},
        interaction_activity=0.5,
    )


class TestRecorder:
    def test_summary_basics(self):
        recorder = Recorder(ambient_c=21.0)
        for i in range(10):
            recorder.record(make_sample(i * 1.0, power=2.0 + i * 0.1, fps=30.0))
        summary = recorder.summary()
        assert summary.average_power_w == pytest.approx(2.45, abs=0.01)
        assert summary.peak_power_w == pytest.approx(2.9)
        assert summary.average_fps == pytest.approx(30.0)
        assert summary.peak_temperature_c["big"] == pytest.approx(45.0)
        assert summary.total_frames_displayed == 10
        assert summary.duration_s == pytest.approx(9.0)
        assert summary.energy_j > 0.0

    def test_frame_delivery_ratio(self):
        recorder = Recorder()
        recorder.record(make_sample(0.0, displayed=1, demanded=2, dropped=1))
        recorder.record(make_sample(1.0, displayed=1, demanded=2, dropped=1))
        assert recorder.summary().frame_delivery_ratio == pytest.approx(0.5)

    def test_empty_delivery_ratio_is_one(self):
        recorder = Recorder()
        recorder.record(make_sample(0.0, displayed=0, demanded=0))
        assert recorder.summary().frame_delivery_ratio == 1.0

    def test_summary_of_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            Recorder().summary()

    def test_series_access(self):
        recorder = Recorder()
        for i in range(5):
            recorder.record(make_sample(float(i)))
        assert len(recorder.column("fps")) == 5
        assert len(recorder.temperature_series("big")) == 5
        assert len(recorder.frequency_series("big")) == 5
        assert len(recorder) == 5

    def test_resample(self):
        recorder = Recorder()
        for i in range(100):
            recorder.record(make_sample(i * 0.1))
        resampled = recorder.resample(1.0)
        assert 9 <= len(resampled) <= 11
        with pytest.raises(ValueError):
            recorder.resample(0.0)


# ---------------------------------------------------------------------------
# SessionWorkload
# ---------------------------------------------------------------------------

class TestSessionWorkload:
    def test_switches_apps_at_segment_boundaries(self):
        workload = SessionWorkload(
            [SessionSegment("home", 2.0), SessionSegment("spotify", 2.0)], seed=1
        )
        dt = 1.0 / 60.0
        names = []
        for _ in range(int(4.0 / dt)):
            names.append(workload.tick(dt).app_name)
        assert "home" in names and "spotify" in names
        assert names.index("spotify") > 0
        assert workload.exhausted

    def test_exhausted_session_emits_idle(self):
        workload = SessionWorkload([SessionSegment("home", 0.5)], seed=1)
        dt = 1.0 / 60.0
        for _ in range(int(0.5 / dt) + 5):
            tick = workload.tick(dt)
        assert tick.app_name == "idle"
        assert tick.frame_count == 0

    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            SessionWorkload([])


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def platform():
    return exynos9810()


class TestSimulation:
    def test_runs_and_records(self, platform):
        config = SimulationConfig(duration_s=10.0, seed=1)
        simulation = Simulation(platform, SchedutilGovernor(), config=config)
        recorder = simulation.run(make_app("facebook", seed=1), duration_s=10.0)
        assert len(recorder) == pytest.approx(600, abs=2)
        summary = recorder.summary()
        assert summary.average_power_w > 0.5
        assert summary.peak_temperature_c["big"] > platform.ambient_c

    def test_performance_governor_uses_more_power_than_powersave(self, platform):
        trace = TraceRecorder.record_app(make_app("facebook", seed=2), 15.0, 1.0 / 60.0)
        high = Simulation(platform, PerformanceGovernor(), config=SimulationConfig(seed=2))
        low = Simulation(platform, PowersaveGovernor(), config=SimulationConfig(seed=2))
        summary_high = high.run(TracePlayer(trace), 15.0).summary()
        summary_low = low.run(TracePlayer(trace), 15.0).summary()
        assert summary_high.average_power_w > summary_low.average_power_w
        assert (
            summary_high.peak_temperature_c["big"] >= summary_low.peak_temperature_c["big"]
        )

    def test_powersave_hurts_game_fps(self, platform):
        trace = TraceRecorder.record_app(make_app("lineage", seed=3), 20.0, 1.0 / 60.0)
        fast = Simulation(platform, PerformanceGovernor(), config=SimulationConfig(seed=3))
        slow = Simulation(platform, PowersaveGovernor(), config=SimulationConfig(seed=3))
        fps_fast = fast.run(TracePlayer(trace), 20.0).summary().average_fps
        fps_slow = slow.run(TracePlayer(trace), 20.0).summary().average_fps
        assert fps_fast > fps_slow

    def test_warm_start_temperature(self, platform):
        config = SimulationConfig(duration_s=2.0, warm_start_temperature_c=35.0, seed=1)
        simulation = Simulation(platform, SchedutilGovernor(), config=config)
        recorder = simulation.run(make_app("home", seed=1), duration_s=2.0)
        assert recorder.samples[0].temperatures_c["big"] >= 30.0

    def test_governor_invocation_period_respected(self, platform):
        class CountingGovernor(SchedutilGovernor):
            def __init__(self):
                super().__init__()
                self.calls = 0
                self.invocation_period_s = 0.5

            def update(self, observation, clusters):
                self.calls += 1
                super().update(observation, clusters)

        governor = CountingGovernor()
        simulation = Simulation(platform, governor, config=SimulationConfig(seed=1))
        simulation.run(make_app("home", seed=1), duration_s=5.0)
        assert 9 <= governor.calls <= 12

    def test_session_hooks_fire_on_app_switch(self, platform):
        class HookRecorder(SchedutilGovernor):
            def __init__(self):
                super().__init__()
                self.started = []

            def on_session_start(self, app_name):
                self.started.append(app_name)

        governor = HookRecorder()
        workload = SessionWorkload(
            [SessionSegment("home", 2.0), SessionSegment("facebook", 2.0)], seed=1
        )
        Simulation(platform, governor, config=SimulationConfig(seed=1)).run(workload, 4.0)
        assert governor.started == ["home", "facebook"]

    def test_record_downsampling(self, platform):
        config = SimulationConfig(duration_s=5.0, record_every_n_ticks=10, seed=1)
        simulation = Simulation(platform, SchedutilGovernor(), config=config)
        recorder = simulation.run(make_app("home", seed=1), duration_s=5.0)
        assert len(recorder) == pytest.approx(30, abs=2)


class TestLazyTelemetryAndObservations:
    """Pins the hot loop's laziness: snapshots only where they are needed.

    The compiled kernel promises that full ``SocTelemetry`` snapshots and
    ``GovernorObservation`` dict sets are materialised only at recorder ticks
    and governor-invocation boundaries -- never per tick.  These tests count
    the allocations so a future refactor cannot quietly hoist them back into
    the 60 Hz path.
    """

    def test_observation_built_only_at_invocation_boundaries(self, platform, monkeypatch):
        import repro.sim.engine as engine_module
        from repro.governors.base import GovernorObservation as RealObservation

        built = []

        class CountingObservation(RealObservation):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(engine_module, "GovernorObservation", CountingObservation)

        class CountingGovernor(SchedutilGovernor):
            def __init__(self):
                super().__init__()
                self.invocation_period_s = 0.5
                self.calls = 0

            def update(self, observation, clusters):
                self.calls += 1
                super().update(observation, clusters)

        governor = CountingGovernor()
        simulation = Simulation(platform, governor, config=SimulationConfig(seed=1))
        simulation.run(make_app("home", seed=1), duration_s=5.0)
        ticks = simulation.clock.ticks
        # One observation (with its frequency/limit/utilisation dict copies)
        # per invocation -- an order of magnitude fewer than ticks.
        assert len(built) == governor.calls
        assert governor.calls <= 12 < ticks

    def test_no_full_telemetry_snapshot_during_run(self, platform, monkeypatch):
        from repro.soc.soc import SocSimulator

        calls = []
        original = SocSimulator.telemetry

        def counting_telemetry(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(SocSimulator, "telemetry", counting_telemetry)
        simulation = Simulation(platform, SchedutilGovernor(), config=SimulationConfig(seed=1))
        simulation.run(make_app("home", seed=1), duration_s=5.0)
        # The recorder fast path and sensor sampling read the flat kernel
        # buffers directly; no per-tick SocTelemetry is ever materialised.
        assert calls == []

    def test_sensor_sampling_only_on_due_ticks(self, platform, monkeypatch):
        from repro.soc.soc import SocSimulator

        calls = []
        original = SocSimulator.sample_sensors

        def counting_sample(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(SocSimulator, "sample_sensors", counting_sample)

        governor = SchedutilGovernor()
        governor.invocation_period_s = 0.5
        simulation = Simulation(platform, governor, config=SimulationConfig(seed=1))
        simulation.run(make_app("home", seed=1), duration_s=5.0)
        assert 9 <= len(calls) <= 12  # once per invocation, not per tick
