"""Acceptance: sweeps under injected faults stay bit-identical and isolated.

The fault-tolerance tentpole's contract, pinned end to end:

* transient faults, injected crashes and torn writes are retried/recovered
  and the delivered sweep is bit-identical (per-cell
  ``sample_stream_hash``) to a fault-free run,
* a worker crash under a process pool breaks the pool, the runner rebuilds
  it and reschedules only unfinished cells,
* a hung job trips the cost-model watchdog, the pool is abandoned and the
  cell rescheduled with a bumped attempt counter,
* a deterministically failing cell is quarantined as permanent after its
  bounded retries -- with its attempt lineage attached -- without aborting
  any other cell.

Faults are scheduled by seeded :class:`FaultPlan` rules, so every run of
this suite replays the identical failure sequence.
"""

from __future__ import annotations

import pytest

from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import SweepRunner
from repro.reliability.chaos import cell_hashes, chaos_matrix, sweep_fault_plan
from repro.reliability.faults import (
    KIND_CRASH,
    KIND_HANG,
    KIND_TRANSIENT,
    SITE_EXECUTE_BATCH,
    SITE_EXECUTE_CELL,
    FaultPlan,
    FaultRule,
    injected_faults,
)
from repro.reliability.retry import PERMANENT, RetryPolicy
from repro.reliability.watchdog import WatchdogPolicy


@pytest.fixture(scope="module")
def matrix():
    return chaos_matrix()


@pytest.fixture(scope="module")
def baseline(matrix):
    """Fault-free sequential hashes: the parity target for every test."""
    return cell_hashes(SweepRunner(max_workers=1).run(matrix))


class TestChaosParity:
    def test_sequential_sweep_is_bit_identical_under_fault_mix(
        self, matrix, baseline
    ):
        with injected_faults(sweep_fault_plan()):
            sweep = SweepRunner(
                max_workers=1, retry_policy=RetryPolicy(max_retries=3)
            ).run(matrix)
        assert cell_hashes(sweep) == baseline
        # Recovery is visible in the lineage, not the results: at least one
        # cell needed a retry under this plan's mix.
        assert any(result.attempts for result in sweep.results)

    def test_pooled_sweep_survives_worker_crashes(self, matrix, baseline):
        # Crash every cell's first attempt: workers die for real
        # (os._exit), the pool breaks, the runner rebuilds and reschedules
        # only unfinished cells with bumped attempt counters.
        plan = FaultPlan(
            seed=1,
            rules=(
                FaultRule(site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT),
                FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_CRASH),
            ),
        )
        with injected_faults(plan):
            sweep = SweepRunner(
                max_workers=2, retry_policy=RetryPolicy(max_retries=3)
            ).run(matrix)
        assert cell_hashes(sweep) == baseline

    def test_watchdog_reschedules_hung_job(self, matrix, baseline):
        # The hang vastly outlives the flat per-cell budget; completion at
        # all proves the watchdog abandoned the hung pool and rescheduled
        # (waiting out the hang would take minutes, not the budget).
        plan = FaultPlan(
            seed=2,
            rules=(
                FaultRule(
                    site=SITE_EXECUTE_BATCH, kind=KIND_HANG, hang_s=120.0
                ),
                FaultRule(
                    site=SITE_EXECUTE_CELL, kind=KIND_HANG, hang_s=120.0
                ),
            ),
        )
        watchdog = WatchdogPolicy(cell_timeout_s=1.5)
        with injected_faults(plan):
            sweep = SweepRunner(
                max_workers=2,
                retry_policy=RetryPolicy(max_retries=3),
                watchdog=watchdog,
            ).run(matrix)
        assert cell_hashes(sweep) == baseline


class TestPermanentQuarantine:
    def test_deterministic_failure_is_permanent_and_isolated(self, matrix):
        # One cell fails on every attempt; the rest of the sweep must
        # deliver normally and the victim must surface as a permanent
        # failure carrying its full attempt lineage.
        victim = matrix.cells()[0].fingerprint()
        plan = FaultPlan(
            seed=3,
            rules=(
                # Push every batch group down to the scalar path so the
                # per-cell rule can target the victim alone.
                FaultRule(
                    site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT, max_attempt=99
                ),
                FaultRule(
                    site=SITE_EXECUTE_CELL,
                    kind=KIND_TRANSIENT,
                    match=victim,
                    max_attempt=99,
                ),
            ),
        )
        with injected_faults(plan):
            sweep = SweepRunner(
                max_workers=1, retry_policy=RetryPolicy(max_retries=1)
            ).run(matrix)
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.cell.fingerprint() == victim
        assert failure.error_kind == PERMANENT
        assert failure.error is not None
        # max_retries=1: the first failure plus one retry, then quarantine.
        assert [a["attempt"] for a in failure.attempts] == [0, 1]
        ok = {r.cell.fingerprint() for r in sweep.results if r.ok}
        assert ok == {c.fingerprint() for c in matrix.cells()} - {victim}

    def test_error_results_are_never_cached(self, matrix, tmp_path, baseline):
        # A quarantined-permanent cell stays outstanding: a re-run without
        # the fault plan computes it and restores full parity.
        victim = matrix.cells()[0].fingerprint()
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(
                    site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT, max_attempt=99
                ),
                FaultRule(
                    site=SITE_EXECUTE_CELL,
                    kind=KIND_TRANSIENT,
                    match=victim,
                    max_attempt=99,
                ),
            ),
        )
        cache_dir = str(tmp_path / "cache")
        with injected_faults(plan):
            first = SweepRunner(
                max_workers=1,
                cache_dir=cache_dir,
                retry_policy=RetryPolicy(max_retries=0),
            ).run(matrix)
        assert len(first.failures) == 1
        rerun = SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)
        assert cell_hashes(rerun) == baseline
        recomputed = [r for r in rerun.results if not r.from_cache]
        assert [r.cell.fingerprint() for r in recomputed] == [victim]
