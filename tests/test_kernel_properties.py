"""Hypothesis property tests: compiled kernels == naive dict-based reference.

The compiled hot-loop kernels (index-based thermal stepping, flat power
evaluation, the fused ``SocSimulator.step_tick``) promise *exact* float
equality with the straightforward dict-of-str-keyed implementations they
replaced.  These properties generate random networks, coefficients and
operating points and require bit-identical results -- not approximate
equality -- because the golden-trace guarantee (cached sweeps stay valid
across the refactor) rests on it.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cluster import Cluster, ClusterKind, ClusterSpec
from repro.soc.frequency import OppTable
from repro.soc.power import LEAKAGE_REFERENCE_TEMPERATURE_C, SocPowerModel
from repro.soc.thermal import ThermalNetwork, ThermalNodeSpec

# ---------------------------------------------------------------------------
# Naive reference implementations (verbatim pre-refactor algorithms)
# ---------------------------------------------------------------------------


class NaiveThermalReference:
    """The original dict-based forward-Euler stepper, kept as the oracle."""

    MAX_SUBSTEP_S = ThermalNetwork.MAX_SUBSTEP_S

    def __init__(self, nodes, couplings, ambient_c, initial_temperature_c=None):
        self.nodes = dict(nodes)
        self.ambient_c = float(ambient_c)
        start = self.ambient_c if initial_temperature_c is None else float(initial_temperature_c)
        self.temps = {name: start for name in self.nodes}
        merged = {}
        for (a, b), g in couplings.items():
            key = (a, b) if a < b else (b, a)
            merged[key] = merged.get(key, 0.0) + g
        self.neighbours = {n: [] for n in self.nodes}
        for (a, b), g in merged.items():
            self.neighbours[a].append((b, g))
            self.neighbours[b].append((a, g))

    def step(self, power_in_w, dt_s):
        remaining = dt_s
        while remaining > 1e-12:
            sub = min(self.MAX_SUBSTEP_S, remaining)
            self._euler_substep(power_in_w, sub)
            remaining -= sub

    def _euler_substep(self, power_in_w, dt_s):
        temps = self.temps
        derivatives = {}
        for name, spec in self.nodes.items():
            t = temps[name]
            heat_w = float(power_in_w.get(name, 0.0))
            heat_w -= spec.conductance_to_ambient_w_per_k * (t - self.ambient_c)
            for other, g in self.neighbours[name]:
                heat_w -= g * (t - temps[other])
            derivatives[name] = heat_w / spec.capacitance_j_per_k
        for name, dtemp in derivatives.items():
            temps[name] += dtemp * dt_s
            if temps[name] < self.ambient_c:
                temps[name] = self.ambient_c


def naive_cluster_power(spec, frequency_mhz, voltage_v, utilisation, temperature_c):
    """Verbatim ClusterPowerModel math (dynamic, leakage)."""
    utilisation = min(1.0, max(0.0, utilisation))
    per_core_full = spec.capacitance_nf * frequency_mhz * voltage_v ** 2 * 1e-3
    dynamic = per_core_full * spec.core_count * utilisation
    delta_t = temperature_c - LEAKAGE_REFERENCE_TEMPERATURE_C
    scale = math.exp(spec.leakage_temp_coeff * delta_t)
    leakage = spec.leakage_w_per_v * voltage_v * spec.core_count * scale
    return dynamic, leakage


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite_power = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def thermal_cases(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    names = [f"n{i}" for i in range(n)]
    nodes = {}
    for name in names:
        cap = draw(st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
        g_amb = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        nodes[name] = ThermalNodeSpec(name, cap, g_amb)
    couplings = {}
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                g = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
                couplings[(names[i], names[j])] = g
    ambient = draw(st.floats(min_value=-10.0, max_value=40.0, allow_nan=False))
    steps = draw(
        st.lists(
            st.tuples(
                st.dictionaries(st.sampled_from(names), finite_power, max_size=n),
                st.floats(min_value=1e-6, max_value=0.3, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return nodes, couplings, ambient, steps


@st.composite
def power_cases(draw):
    n_opps = draw(st.integers(min_value=1, max_value=6))
    base = draw(st.floats(min_value=100.0, max_value=1000.0, allow_nan=False))
    freqs = tuple(base + 137.0 * i for i in range(n_opps))
    table = OppTable.from_frequencies(freqs, v_min=0.6, v_max=1.2, curvature=1.3)
    spec = ClusterSpec(
        name="c",
        kind=draw(st.sampled_from(list(ClusterKind))),
        opp_table=table,
        core_count=draw(st.integers(min_value=1, max_value=16)),
        capacitance_nf=draw(st.floats(min_value=0.01, max_value=2.0, allow_nan=False)),
        leakage_w_per_v=draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
        leakage_temp_coeff=draw(st.floats(min_value=0.0, max_value=0.05, allow_nan=False)),
        perf_per_mhz=draw(st.floats(min_value=0.1, max_value=2.0, allow_nan=False)),
    )
    index = draw(st.integers(min_value=0, max_value=n_opps - 1))
    utilisation = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    temperature = draw(st.floats(min_value=-20.0, max_value=110.0, allow_nan=False))
    return spec, index, utilisation, temperature


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(case=thermal_cases())
def test_compiled_thermal_kernel_matches_naive_reference_exactly(case):
    nodes, couplings, ambient, steps = case
    compiled = ThermalNetwork(nodes, couplings, ambient_c=ambient)
    naive = NaiveThermalReference(nodes, couplings, ambient_c=ambient)
    for power_in, dt in steps:
        compiled.step(power_in, dt)
        naive.step(power_in, dt)
        got = compiled.temperatures_c()
        assert set(got) == set(naive.temps)
        for name in naive.temps:
            # Exact equality: same float operation sequence, bit for bit.
            assert got[name] == naive.temps[name]


@settings(max_examples=60, deadline=None)
@given(case=thermal_cases())
def test_step_flat_matches_mapping_step_exactly(case):
    nodes, couplings, ambient, steps = case
    via_mapping = ThermalNetwork(nodes, couplings, ambient_c=ambient)
    via_flat = ThermalNetwork(nodes, couplings, ambient_c=ambient)
    order = via_flat.node_names
    buffer = [0.0] * len(order)
    for power_in, dt in steps:
        via_mapping.step(power_in, dt)
        for i, name in enumerate(order):
            buffer[i] = float(power_in.get(name, 0.0))
        via_flat.step_flat(buffer, dt)
        assert via_flat.temperatures_c() == via_mapping.temperatures_c()


@settings(max_examples=80, deadline=None)
@given(case=power_cases())
def test_evaluate_flat_matches_naive_power_math_exactly(case):
    spec, index, utilisation, temperature = case
    model = SocPowerModel({"c": spec}, rest_of_platform_power_w=0.25)
    cluster = Cluster(spec, initial_index=index)
    cluster.utilisation = utilisation
    dynamic_out = [0.0]
    leakage_out = [0.0]
    model.evaluate_flat(
        [cluster], model.compile_coefficients(["c"]), [temperature], dynamic_out, leakage_out
    )
    expected_dynamic, expected_leakage = naive_cluster_power(
        spec,
        cluster.current_frequency_mhz,
        cluster.current_voltage_v,
        utilisation,
        temperature,
    )
    assert dynamic_out[0] == expected_dynamic
    assert leakage_out[0] == expected_leakage
    # ...and the mapping-based evaluate agrees too (three implementations, one
    # float sequence).
    breakdown = model.evaluate({"c": cluster}, {"c": temperature})
    assert breakdown.dynamic_w["c"] == expected_dynamic
    assert breakdown.leakage_w["c"] == expected_leakage


@settings(max_examples=40, deadline=None)
@given(
    case=power_cases(),
    dt=st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
)
def test_soc_step_tick_power_buffers_match_evaluate(case, dt):
    """The fused step_tick loop computes the same power evaluate() would."""
    from repro.soc.platform import PlatformSpec

    spec, index, utilisation, temperature = case
    platform = PlatformSpec(
        name="prop",
        cluster_specs={"c": spec},
        thermal_nodes={
            "c": ThermalNodeSpec("c", 3.0, 0.01),
            "device": ThermalNodeSpec("device", 40.0, 0.2),
        },
        thermal_couplings={("c", "device"): 0.05},
        ambient_c=21.0,
    )
    from repro.soc.soc import SocSimulator

    soc = SocSimulator(platform)
    soc.thermal.set_temperature("c", temperature)
    soc.cluster("c").set_frequency_index(index)
    soc.cluster("c").utilisation = utilisation
    # What evaluate() would say for the pre-step temperatures:
    expected = soc.power_model.evaluate(
        soc.clusters, {"c": soc.thermal.temperature_c("c")}
    )
    soc.step_tick(dt)
    telemetry = soc.telemetry()
    assert telemetry.power.dynamic_w == dict(expected.dynamic_w)
    assert telemetry.power.leakage_w == dict(expected.leakage_w)
    assert telemetry.total_power_w == expected.total_w
