"""Golden-trace bit-identity regression tests for the compiled hot loop.

The compiled simulation kernel (PR 4) must not change a single recorded bit:
every float operation of the thermal/power/engine hot path runs in the same
sequence as the original dict-based implementation.  These tests pin the
recorder sample stream of the Fig. 1 session and of one sweep cell per
governor against SHA-256 hashes captured from the pre-refactor seed
implementation (``tests/data/golden_hashes.json``).  If any of these hashes
moves, cached sweep results, artifact fingerprints and the PR-1/2/3
determinism suites are no longer comparable across versions -- that is a
breaking change and must be called out, not silently re-pinned.
"""

import json
import os

import pytest

from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import run_cell_session
from repro.sim.experiment import make_governor, record_session_trace, run_trace
from repro.sim.recorder import sample_stream_hash
from repro.soc.platform import exynos9810
from repro.workloads.session import FIGURE1_SESSION

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hashes.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestFig1GoldenTrace:
    def test_fig1_schedutil_stream_is_bit_identical_to_seed(self, golden):
        expected = golden["fig1_schedutil"]
        platform = exynos9810()
        trace = record_session_trace(
            FIGURE1_SESSION.segments, platform=platform, seed=expected["seed"]
        )
        result = run_trace(trace, make_governor("schedutil"), platform=platform)
        assert len(result.recorder) == expected["samples"]
        assert sample_stream_hash(result.recorder.samples) == expected["hash"]

    def test_recorder_content_hash_matches_helper(self, golden):
        # content_hash() is the public spelling of the pinned stream hash.
        platform = exynos9810()
        trace = record_session_trace(
            FIGURE1_SESSION.segments, platform=platform, seed=golden["fig1_schedutil"]["seed"]
        )
        recorder = run_trace(trace, make_governor("schedutil"), platform=platform).recorder
        assert recorder.content_hash() == golden["fig1_schedutil"]["hash"]


class TestSweepCellGoldenTraces:
    """One cell per governor: the hot loop is identical under every policy."""

    @pytest.fixture(scope="class")
    def matrix(self, golden):
        return ScenarioMatrix.build(
            name="golden",
            governors=tuple(golden["sweep_cells"]),
            apps=("facebook",),
            seeds=(0,),
            duration_s=4.0,
        )

    def test_cell_fingerprints_unchanged(self, golden, matrix):
        for cell in matrix.cells():
            assert (
                cell.fingerprint()
                == golden["sweep_cells"][cell.governor]["fingerprint"]
            ), f"fingerprint moved for governor {cell.governor}"

    def test_cell_sample_streams_bit_identical_to_seed(self, golden, matrix):
        for cell in matrix.cells():
            expected = golden["sweep_cells"][cell.governor]
            session = run_cell_session(cell)
            assert len(session.recorder) == expected["samples"]
            assert (
                sample_stream_hash(session.recorder.samples) == expected["hash"]
            ), f"recorded stream moved for governor {cell.governor}"
