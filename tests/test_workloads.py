"""Unit tests for phases, interaction, application models and sessions."""

import random

import pytest

from repro.workloads.app import AppModel, TickWorkload
from repro.workloads.apps import APP_LIBRARY, GAME_APPS, make_app
from repro.workloads.interaction import (
    CONTINUOUS_PROFILE,
    DEFAULT_PROFILE,
    PASSIVE_PROFILE,
    InteractionGenerator,
    InteractionProfile,
)
from repro.workloads.phases import Phase, PhaseTransition, validate_phase_graph
from repro.workloads.session import (
    FIGURE1_SESSION,
    Session,
    SessionGenerator,
    SessionSegment,
    UsageStatistics,
)

VSYNC = 1.0 / 60.0


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------

class TestPhaseTransition:
    def test_normalisation(self):
        transition = PhaseTransition({"a": 2.0, "b": 2.0})
        probs = transition.normalised()
        assert probs["a"] == pytest.approx(0.5)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_sampling_respects_support(self):
        transition = PhaseTransition({"a": 1.0, "b": 3.0})
        rng = random.Random(0)
        samples = {transition.sample(rng) for _ in range(200)}
        assert samples == {"a", "b"}

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseTransition({})
        with pytest.raises(ValueError):
            PhaseTransition({"a": -1.0})
        with pytest.raises(ValueError):
            PhaseTransition({"a": 0.0})


class TestPhase:
    def test_dwell_sampling_is_clamped(self):
        phase = Phase(
            name="p",
            frame_rate_hz=30.0,
            cpu_work_per_frame_mwu=1.0,
            gpu_work_per_frame_mwu=1.0,
            dwell_mean_s=5.0,
            dwell_min_s=2.0,
            dwell_max_s=8.0,
        )
        rng = random.Random(1)
        for _ in range(100):
            dwell = phase.sample_dwell_s(rng)
            assert 2.0 <= dwell <= 8.0

    def test_absorbing_phase(self):
        phase = Phase(
            name="p", frame_rate_hz=1.0, cpu_work_per_frame_mwu=1.0, gpu_work_per_frame_mwu=1.0
        )
        assert phase.sample_next_phase(random.Random(0)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(name="p", frame_rate_hz=-1.0, cpu_work_per_frame_mwu=1.0, gpu_work_per_frame_mwu=1.0)
        with pytest.raises(ValueError):
            Phase(
                name="p",
                frame_rate_hz=1.0,
                cpu_work_per_frame_mwu=1.0,
                gpu_work_per_frame_mwu=1.0,
                dwell_min_s=10.0,
                dwell_max_s=5.0,
            )
        with pytest.raises(ValueError):
            Phase(
                name="p",
                frame_rate_hz=1.0,
                cpu_work_per_frame_mwu=1.0,
                gpu_work_per_frame_mwu=1.0,
                background_burstiness=1.5,
            )

    def test_phase_graph_validation(self):
        good = {
            "a": Phase(
                name="a",
                frame_rate_hz=1.0,
                cpu_work_per_frame_mwu=1.0,
                gpu_work_per_frame_mwu=1.0,
                transition=PhaseTransition({"b": 1.0}),
            ),
            "b": Phase(
                name="b", frame_rate_hz=1.0, cpu_work_per_frame_mwu=1.0, gpu_work_per_frame_mwu=1.0
            ),
        }
        validate_phase_graph(good)
        bad = dict(good)
        bad["a"] = Phase(
            name="a",
            frame_rate_hz=1.0,
            cpu_work_per_frame_mwu=1.0,
            gpu_work_per_frame_mwu=1.0,
            transition=PhaseTransition({"missing": 1.0}),
        )
        with pytest.raises(ValueError):
            validate_phase_graph(bad)


# ---------------------------------------------------------------------------
# Interaction
# ---------------------------------------------------------------------------

class TestInteractionGenerator:
    def test_activity_stays_in_unit_interval(self):
        generator = InteractionGenerator(DEFAULT_PROFILE, rng=random.Random(0))
        for _ in range(2000):
            activity = generator.step(VSYNC)
            assert 0.0 <= activity <= 1.0

    def test_continuous_profile_keeps_activity_high(self):
        generator = InteractionGenerator(CONTINUOUS_PROFILE, rng=random.Random(0))
        values = [generator.step(VSYNC) for _ in range(3000)]
        assert sum(values) / len(values) > 0.6

    def test_passive_profile_keeps_activity_low(self):
        generator = InteractionGenerator(PASSIVE_PROFILE, rng=random.Random(0))
        values = [generator.step(VSYNC) for _ in range(3000)]
        assert sum(values) / len(values) < 0.4

    def test_reset(self):
        generator = InteractionGenerator(DEFAULT_PROFILE, rng=random.Random(0))
        generator.step(10.0)
        generator.reset()
        assert generator.activity == DEFAULT_PROFILE.paused_level

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            InteractionGenerator().step(-1.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            InteractionProfile(engaged_level=1.5)
        with pytest.raises(ValueError):
            InteractionProfile(engaged_level=0.2, paused_level=0.5)
        with pytest.raises(ValueError):
            InteractionProfile(burst_mean_s=0.0)


# ---------------------------------------------------------------------------
# App models
# ---------------------------------------------------------------------------

class TestAppLibrary:
    def test_contains_all_paper_apps(self):
        expected = {"home", "facebook", "spotify", "web_browser", "lineage", "pubg", "youtube"}
        assert expected == set(APP_LIBRARY)
        assert set(GAME_APPS) <= set(APP_LIBRARY)

    def test_make_app_unknown_name(self):
        with pytest.raises(ValueError):
            make_app("tiktok")

    @pytest.mark.parametrize("app_name", sorted(APP_LIBRARY))
    def test_every_app_produces_demand(self, app_name):
        app = make_app(app_name, seed=5)
        total_frames = 0
        for _ in range(int(30.0 / VSYNC)):
            tick = app.tick(VSYNC)
            assert isinstance(tick, TickWorkload)
            assert tick.app_name == app.name
            total_frames += tick.frame_count
            for value in tick.background_work_mwu.values():
                assert value >= 0.0
        assert total_frames > 0

    def test_game_is_gpu_heavier_than_social(self):
        def average_gpu_work(app_name):
            app = make_app(app_name, seed=2)
            total, count = 0.0, 0
            for _ in range(int(60.0 / VSYNC)):
                for frame in app.tick(VSYNC).frames:
                    total += frame.gpu_work_mwu
                    count += 1
            return total / max(1, count)

        assert average_gpu_work("lineage") > 1.5 * average_gpu_work("facebook")

    def test_spotify_mostly_low_frame_demand(self):
        app = make_app("spotify", seed=3)
        ticks = [app.tick(VSYNC) for _ in range(int(120.0 / VSYNC))]
        playback = [t for t in ticks if t.phase_name == "playback"]
        assert playback, "spotify should reach its playback phase within 2 minutes"
        demand_rate = sum(t.frame_count for t in playback) / (len(playback) * VSYNC)
        assert demand_rate < 6.0

    def test_reproducible_with_same_seed(self):
        a = make_app("facebook", seed=11)
        b = make_app("facebook", seed=11)
        for _ in range(500):
            ta, tb = a.tick(VSYNC), b.tick(VSYNC)
            assert ta.frame_count == tb.frame_count
            assert ta.phase_name == tb.phase_name

    def test_reset_restarts_from_initial_phase(self):
        app = make_app("lineage", seed=1)
        for _ in range(int(40.0 / VSYNC)):
            app.tick(VSYNC)
        app.reset(seed=1)
        assert app.current_phase.name == "loading"
        assert app.time_s == 0.0

    def test_invalid_initial_phase(self):
        phase = Phase(
            name="only", frame_rate_hz=1.0, cpu_work_per_frame_mwu=1.0, gpu_work_per_frame_mwu=1.0
        )
        with pytest.raises(ValueError):
            AppModel(name="x", phases={"only": phase}, initial_phase="missing")

    def test_invalid_tick(self):
        with pytest.raises(ValueError):
            make_app("home").tick(0.0)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------

class TestUsageStatistics:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UsageStatistics(short_fraction=0.5, medium_fraction=0.5, long_fraction=0.5)

    def test_sampled_durations_match_classes(self):
        stats = UsageStatistics()
        rng = random.Random(0)
        durations = [stats.sample_session_duration_s(rng) for _ in range(500)]
        short = sum(1 for d in durations if d < 120.0)
        # Roughly 70 % of sessions should be under two minutes.
        assert 0.55 < short / len(durations) < 0.85


class TestSessionGeneration:
    def test_figure1_session_structure(self):
        assert FIGURE1_SESSION.app_names == ["home", "facebook", "spotify"]
        assert FIGURE1_SESSION.total_duration_s == pytest.approx(210.0)

    def test_single_app_session_durations(self):
        generator = SessionGenerator(seed=0)
        game = generator.single_app_session("lineage")
        other = generator.single_app_session("facebook")
        assert game.total_duration_s == pytest.approx(300.0)
        assert 90.0 <= other.total_duration_s <= 180.0

    def test_mixed_session(self):
        generator = SessionGenerator(seed=1)
        session = generator.mixed_session(["home", "facebook"], total_duration_s=100.0)
        assert session.app_names == ["home", "facebook"]
        assert session.total_duration_s == pytest.approx(100.0, abs=25.0)

    def test_day_of_sessions_default_pickups(self):
        generator = SessionGenerator(seed=2)
        day = generator.day_of_sessions()
        assert len(day) == UsageStatistics().pickups_per_day

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            SessionSegment("unknown_app", 10.0)
        with pytest.raises(ValueError):
            SessionSegment("facebook", 0.0)
        with pytest.raises(ValueError):
            Session(segments=tuple())
