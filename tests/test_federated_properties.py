"""Property-based tests (hypothesis) for federated Q-table aggregation.

:class:`~repro.core.federated.FederatedAggregator` implements the fleet's
server-side merge -- a visit-weighted mean over per-device tables.  These
properties pin the algebra that makes the merge trustworthy at any fleet
size:

* aggregating a single table (or identical copies) is the identity on
  values,
* the merge is permutation-invariant (device order is an artefact of the
  transport, not of the experiment), and
* the merged table carries the *pooled* visit mass, so a second round of
  visit-weighted aggregation weights fleet experience correctly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.federated import FederatedAggregator
from repro.core.qtable import QTable

ACTION_COUNT = 3

#: Close-enough for float accumulations in a different order.
REL_TOL = 1e-9
ABS_TOL = 1e-12


q_values = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
state_keys = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=4)
)


@st.composite
def qtables(draw):
    """A small random Q-table: unique states, per-state values and visits."""
    table = QTable(action_count=ACTION_COUNT, initial_q=draw(q_values))
    states = draw(st.lists(state_keys, unique=True, min_size=1, max_size=6))
    for state in states:
        values = draw(
            st.lists(q_values, min_size=ACTION_COUNT, max_size=ACTION_COUNT)
        )
        visits = draw(st.integers(min_value=0, max_value=50))
        table.set_row(state, values, visits)
    return table


def assert_tables_close(left: QTable, right: QTable) -> None:
    assert set(left.states()) == set(right.states())
    for state in left.states():
        for a, b in zip(left.values(state), right.values(state)):
            assert math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


@given(qtables())
def test_aggregate_of_one_table_is_identity(table):
    merged = FederatedAggregator(ACTION_COUNT).aggregate([table])
    assert_tables_close(merged, table)
    for state in table.states():
        assert merged.visits(state) == table.visits(state)


@given(qtables(), st.integers(min_value=2, max_value=5))
def test_aggregate_of_identical_tables_is_identity_on_values(table, copies):
    clones = [QTable.from_dict(table.to_dict()) for _ in range(copies)]
    merged = FederatedAggregator(ACTION_COUNT).aggregate(clones)
    assert_tables_close(merged, table)
    # ... while the visit mass pools across the fleet.
    for state in table.states():
        assert merged.visits(state) == copies * table.visits(state)


@settings(max_examples=50)
@given(st.lists(qtables(), min_size=2, max_size=4), st.randoms(use_true_random=False))
def test_aggregation_is_permutation_invariant(tables, rng):
    aggregator = FederatedAggregator(ACTION_COUNT)
    merged = aggregator.aggregate(tables)
    shuffled = list(tables)
    rng.shuffle(shuffled)
    assert_tables_close(aggregator.aggregate(shuffled), merged)


@given(st.lists(qtables(), min_size=1, max_size=4))
def test_merged_visits_sum_and_states_union(tables):
    merged = FederatedAggregator(ACTION_COUNT).aggregate(tables)
    expected_states = set()
    for table in tables:
        expected_states.update(table.states())
    assert set(merged.states()) == expected_states
    for state in expected_states:
        assert merged.visits(state) == sum(table.visits(state) for table in tables)


@given(qtables(), st.integers(min_value=1, max_value=5))
def test_distribute_splits_the_visit_mass_conservatively(table, devices):
    replicas = FederatedAggregator(ACTION_COUNT).distribute(table, devices)
    assert len(replicas) == devices
    for state in table.states():
        # Values replicate exactly; the pooled visit mass splits (off by at
        # most one between devices) and sums back to the original.
        shares = [replica.visits(state) for replica in replicas]
        assert sum(shares) == table.visits(state)
        assert max(shares) - min(shares) <= 1
        for replica in replicas:
            assert replica.values(state) == table.values(state)


@given(qtables(), st.integers(min_value=1, max_value=5))
def test_distribute_then_aggregate_round_trips(table, devices):
    # The multi-round invariant: a server -> devices -> server cycle with no
    # local training in between must return the merged table unchanged --
    # same values, same pooled visit mass (no per-device double counting).
    aggregator = FederatedAggregator(ACTION_COUNT)
    merged = aggregator.aggregate([table])
    re_merged = aggregator.aggregate(aggregator.distribute(merged, devices))
    assert_tables_close(re_merged, merged)
    for state in merged.states():
        assert re_merged.visits(state) == merged.visits(state)


@given(st.lists(qtables(), min_size=1, max_size=4))
def test_merged_values_stay_within_the_fleet_envelope(tables):
    # A weighted mean can never leave the min/max envelope of its inputs.
    merged = FederatedAggregator(ACTION_COUNT).aggregate(tables)
    for state in merged.states():
        contributors = [table.values(state) for table in tables if state in table]
        for action in range(ACTION_COUNT):
            values = [row[action] for row in contributors]
            assert min(values) - ABS_TOL <= merged.get(state, action)
            assert merged.get(state, action) <= max(values) + ABS_TOL


# -- non-uniform visit masses (non-IID, intensity-weighted fleets) -------------
#
# Intensity-weighted fleet specs give heavy users more episodes, so their
# tables arrive at the merge with much larger visit counts than light users'.
# These properties pin how the merge treats that imbalance.


@st.composite
def shared_state_fleets(draw):
    """2-4 device tables over one shared state set with *unequal* visits."""
    states = draw(st.lists(state_keys, unique=True, min_size=1, max_size=4))
    tables = []
    for _ in range(draw(st.integers(min_value=2, max_value=4))):
        table = QTable(action_count=ACTION_COUNT, initial_q=0.0)
        for state in states:
            values = draw(
                st.lists(q_values, min_size=ACTION_COUNT, max_size=ACTION_COUNT)
            )
            visits = draw(st.integers(min_value=0, max_value=200))
            table.set_row(state, values, visits)
        tables.append(table)
    return states, tables


@settings(max_examples=50)
@given(shared_state_fleets())
def test_non_uniform_visit_masses_merge_by_the_weighted_mean_formula(fleet):
    # The exact FedAvg contract under imbalance: each state's merged value
    # is the visit-weighted mean over contributors (weight floored at 1 so
    # never-updated rows still speak), and the pooled mass sums raw visits.
    states, tables = fleet
    merged = FederatedAggregator(ACTION_COUNT).aggregate(tables)
    for state in states:
        weights = [max(1, table.visits(state)) for table in tables]
        for action in range(ACTION_COUNT):
            expected = sum(
                weight * table.get(state, action)
                for weight, table in zip(weights, tables)
            ) / sum(weights)
            assert math.isclose(
                merged.get(state, action), expected, rel_tol=REL_TOL, abs_tol=1e-9
            )
        assert merged.visits(state) == sum(table.visits(state) for table in tables)


@settings(max_examples=50)
@given(shared_state_fleets(), st.integers(min_value=2, max_value=64))
def test_heavier_visit_mass_pulls_the_merge_towards_that_device(fleet, scale):
    # Multiplying one device's visit counts (more episodes -> more updates)
    # must move every merged value weakly towards that device's values.
    states, tables = fleet
    aggregator = FederatedAggregator(ACTION_COUNT)
    before = aggregator.aggregate(tables)
    heavy = QTable.from_dict(tables[0].to_dict())
    for state in states:
        heavy.set_row(
            state, heavy.values(state), max(1, heavy.visits(state)) * scale
        )
    after = aggregator.aggregate([heavy] + tables[1:])
    for state in states:
        for action in range(ACTION_COUNT):
            target = heavy.get(state, action)
            drift = abs(after.get(state, action) - target)
            assert drift <= abs(before.get(state, action) - target) + 1e-9


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=10),
    st.data(),
)
def test_intensity_weighted_specs_yield_monotone_episode_budgets(
    devices, episodes, data
):
    # The spec-level source of the imbalance: per-device intensities scale
    # episode budgets deterministically -- budgets stay >= 1, intensity 1.0
    # reproduces the uniform budget exactly, and a heavier user never gets
    # fewer episodes than a lighter one.
    from repro.core.federated import FleetSpec

    intensities = tuple(
        data.draw(
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
            label=f"intensity[{device}]",
        )
        for device in range(devices)
    )
    spec = FleetSpec(
        apps=("facebook",),
        devices=devices,
        rounds=1,
        platform="exynos9810",
        episodes=episodes,
        episode_duration_s=1.0,
        fleet_seed=0,
        device_intensities=intensities,
    )
    budgets = [spec.device_episodes(device) for device in range(devices)]
    for device, (intensity, budget) in enumerate(zip(intensities, budgets)):
        assert budget >= 1
        if intensity == 1.0:
            assert budget == episodes
        assert spec.device_training_spec(device).episodes == budget
    ranked = sorted(range(devices), key=lambda device: intensities[device])
    for lighter, heavier in zip(ranked, ranked[1:]):
        assert budgets[lighter] <= budgets[heavier]
