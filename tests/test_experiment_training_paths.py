"""Coverage for the Next training/selection helpers in ``sim.experiment``.

``pretrained_next_governor`` and ``select_best_next_governor`` encode the
paper's evaluation protocol (train fully, then evaluate greedily; pick the
candidate that saves the most power *without* violating QoS).  These tests
exercise both with tiny budgets and pin the QoS-first selection ordering.
"""

from types import SimpleNamespace

import pytest

import repro.sim.experiment as experiment
from repro.core.governor import NextGovernor
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    candidate_sort_key,
    pretrained_next_governor,
    select_best_next_governor,
    train_next_governor,
)
from repro.soc.platform import generic_two_cluster_soc


@pytest.fixture(scope="module")
def platform():
    return generic_two_cluster_soc()


class TestPretrainedNextGovernor:
    def test_trains_each_app_and_disables_exploration(self, platform):
        governor = pretrained_next_governor(
            ("home", "spotify"),
            platform=platform,
            episodes=1,
            episode_duration_s=4.0,
            seed=5,
        )
        assert governor.training is False
        assert governor.agent.qtable_size("home") > 0
        assert governor.agent.qtable_size("spotify") > 0

    def test_pretrained_governor_is_usable_for_evaluation(self, platform):
        governor = pretrained_next_governor(
            ("home",), platform=platform, episodes=1, episode_duration_s=4.0, seed=5
        )
        result = experiment.run_app_session(
            "home", governor, duration_s=4.0, platform=platform, seed=9
        )
        assert result.governor_name == "next"
        assert result.summary.average_power_w > 0.0


class TestTrainNextGovernorSeeding:
    def _captured_seeds(self, monkeypatch, platform, config=None):
        """Run training with a stubbed Simulation and record per-episode seeds."""
        seeds = []

        class FakeSimulation:
            def __init__(self, platform=None, governor=None, config=None):
                seeds.append(config.seed)

            def run(self, workload, duration_s=None):
                return None

        monkeypatch.setattr(experiment, "Simulation", FakeSimulation)
        governor = NextGovernor(seed=1)
        monkeypatch.setattr(governor.agent, "has_converged", lambda *a, **k: False)
        train_next_governor(
            governor,
            "home",
            platform=platform,
            episodes=3,
            episode_duration_s=4.0,
            seed=40,
            config=config,
        )
        return seeds

    def test_default_config_varies_seed_per_episode(self, monkeypatch, platform):
        seeds = self._captured_seeds(monkeypatch, platform)
        assert seeds == [40, 141, 242]

    def test_explicit_config_still_varies_seed_per_episode(
        self, monkeypatch, platform
    ):
        # Regression: a caller-supplied config used to pin one sensor-noise
        # seed across all "freshly seeded" episodes.
        config = SimulationConfig(refresh_hz=60.0, duration_s=4.0, seed=7)
        seeds = self._captured_seeds(monkeypatch, platform, config=config)
        assert seeds == [40, 141, 242]
        assert config.seed == 7  # the caller's config object is not mutated

    def test_explicit_config_other_knobs_are_kept(self, monkeypatch, platform):
        captured = []

        class FakeSimulation:
            def __init__(self, platform=None, governor=None, config=None):
                captured.append(config)

            def run(self, workload, duration_s=None):
                return None

        monkeypatch.setattr(experiment, "Simulation", FakeSimulation)
        governor = NextGovernor(seed=1)
        monkeypatch.setattr(governor.agent, "has_converged", lambda *a, **k: False)
        config = SimulationConfig(
            refresh_hz=60.0, duration_s=4.0, seed=7, warm_start_temperature_c=33.0
        )
        train_next_governor(
            governor, "home", platform=platform, episodes=2,
            episode_duration_s=4.0, seed=0, config=config,
        )
        assert all(c.warm_start_temperature_c == 33.0 for c in captured)
        assert [c.seed for c in captured] == [0, 101]


class TestCandidateSortKey:
    def test_qos_ok_candidates_ranked_by_power(self):
        assert candidate_sort_key(2.0, 0.99) < candidate_sort_key(3.0, 0.95)

    def test_qos_preservation_beats_any_power_saving(self):
        # A violator with spectacular savings still loses to a QoS-ok run.
        assert candidate_sort_key(9.0, 0.95) < candidate_sort_key(0.5, 0.80)

    def test_violators_ranked_by_least_bad_delivery(self):
        assert candidate_sort_key(5.0, 0.90) < candidate_sort_key(1.0, 0.70)

    def test_threshold_is_inclusive(self):
        ok_key = candidate_sort_key(1.0, 0.93, min_delivery_ratio=0.93)
        assert ok_key[0] == 0


class TestSelectBestNextGovernor:
    def test_tiny_end_to_end_selection(self, platform):
        governor = select_best_next_governor(
            ("home",),
            platform=platform,
            candidate_seeds=(1, 2),
            episodes=1,
            episode_duration_s=4.0,
            validation_duration_s=4.0,
        )
        assert governor.name == "next"
        assert governor.training is False

    def _fake_selection(self, monkeypatch, platform, powers, deliveries):
        """Run selection with fabricated per-candidate validation outcomes."""
        candidates = []

        def fake_train(governor, app_name, **kwargs):
            if governor not in candidates:
                candidates.append(governor)

        def fake_run_trace(trace, governor, platform=None, config=None):
            index = candidates.index(governor)
            return SimpleNamespace(
                summary=SimpleNamespace(
                    average_power_w=powers[index],
                    frame_delivery_ratio=deliveries[index],
                )
            )

        monkeypatch.setattr(experiment, "train_next_governor", fake_train)
        monkeypatch.setattr(experiment, "run_trace", fake_run_trace)
        winner = select_best_next_governor(
            ("home",),
            platform=platform,
            candidate_seeds=tuple(range(1, len(powers) + 1)),
            validation_duration_s=0.5,
        )
        return candidates.index(winner)

    def test_qos_ok_low_power_candidate_wins(self, monkeypatch, platform):
        # Candidate 0 violates QoS despite the lowest power; candidate 2 is
        # QoS-preserving and cheaper than candidate 1.
        winner = self._fake_selection(
            monkeypatch,
            platform,
            powers=[0.5, 5.0, 3.0],
            deliveries=[0.50, 0.99, 0.97],
        )
        assert winner == 2

    def test_least_bad_violator_wins_when_no_candidate_preserves_qos(
        self, monkeypatch, platform
    ):
        winner = self._fake_selection(
            monkeypatch,
            platform,
            powers=[1.0, 9.0],
            deliveries=[0.70, 0.85],
        )
        assert winner == 1
