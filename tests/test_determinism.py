"""Determinism regression tests.

The scenario-matrix harness (result cache, cross-process replication,
paired baseline comparisons) is only trustworthy if simulation runs are
reproducible: the same seed must give bit-identical recordings, and the same
cell must summarise identically whether it runs in-process, through the
process pool or out of the on-disk cache.  These tests pin all of that down.
"""

import json

import pytest

from repro.experiments.matrix import ScenarioMatrix, derive_seed, named_matrix
from repro.experiments.runner import (
    SweepRunner,
    execute_cell,
    run_matrix,
    summary_to_dict,
)
from repro.governors.schedutil import SchedutilGovernor
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.soc.platform import generic_two_cluster_soc
from repro.workloads.apps import make_app


def _run_once(seed: int):
    platform = generic_two_cluster_soc()
    config = SimulationConfig(refresh_hz=60.0, duration_s=6.0, seed=seed)
    simulation = Simulation(
        platform=platform, governor=SchedutilGovernor(), config=config
    )
    return simulation.run(make_app("facebook", seed=seed), duration_s=6.0)


class TestSimulationDeterminism:
    def test_same_seed_bit_identical_samples(self):
        first = _run_once(seed=11)
        second = _run_once(seed=11)
        assert len(first) == len(second) > 0
        # SimulationSample is a frozen dataclass: == compares every field,
        # including the per-cluster mappings, exactly (no tolerance).
        assert first.samples == second.samples

    def test_different_seed_diverges(self):
        first = _run_once(seed=11)
        second = _run_once(seed=12)
        assert first.samples != second.samples


class TestSeedDerivation:
    def test_derive_seed_is_stable_and_hashlib_based(self):
        # Stable constant: this value must never change across processes,
        # interpreter versions or PYTHONHASHSEED settings.
        assert derive_seed("trace", 0, "facebook", "exynos9810") == derive_seed(
            "trace", 0, "facebook", "exynos9810"
        )
        assert 0 <= derive_seed("x") < 2**31

    def test_trace_seed_is_governor_independent(self):
        matrix = named_matrix("smoke")
        cells = matrix.cells()
        by_coords = {}
        for cell in cells:
            coords = (cell.workload.key, cell.platform, cell.seed)
            by_coords.setdefault(coords, []).append(cell)
        for group in by_coords.values():
            assert len(group) == len(matrix.governors)
            assert len({cell.trace_seed for cell in group}) == 1
            assert len({cell.sim_seed for cell in group}) == 1
            # exploration randomness is decoupled between governors
            assert len({cell.governor_seed for cell in group}) == len(group)

    def test_fingerprints_unique_and_stable(self):
        cells = named_matrix("smoke").cells()
        fingerprints = [cell.fingerprint() for cell in cells]
        assert len(set(fingerprints)) == len(cells)
        assert fingerprints == [cell.fingerprint() for cell in cells]


@pytest.fixture(scope="module")
def tiny_matrix():
    return ScenarioMatrix.build(
        name="determinism",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=4.0,
    )


class TestCrossProcessDeterminism:
    def test_in_process_vs_pool_identical_summaries(self, tiny_matrix):
        """The ISSUE acceptance criterion: 8 cells, pool == sequential."""
        sequential = run_matrix(tiny_matrix, max_workers=1)
        pooled = run_matrix(tiny_matrix, max_workers=2)
        assert len(sequential) == len(pooled) == 8
        assert all(result.ok for result in pooled.results)
        for seq, par in zip(sequential.results, pooled.results):
            assert seq.cell == par.cell
            assert seq.summary == par.summary

    def test_single_cell_execute_is_reproducible(self, tiny_matrix):
        cell = tiny_matrix.cells()[0]
        first = execute_cell(cell)
        second = execute_cell(cell)
        assert first.ok and second.ok
        assert first.summary == second.summary

    def test_cache_serves_identical_summaries(self, tiny_matrix, tmp_path):
        cache_dir = str(tmp_path / "cache")
        fresh = run_matrix(tiny_matrix, max_workers=2, cache_dir=cache_dir)
        assert fresh.cached_count == 0
        cached = run_matrix(tiny_matrix, max_workers=2, cache_dir=cache_dir)
        assert cached.cached_count == len(tiny_matrix) == 8
        for a, b in zip(fresh.results, cached.results):
            assert a.summary == b.summary  # JSON round-trip is float-exact

    @pytest.mark.parametrize("corruption", ["{not json", "[]", "null", '"x"'])
    def test_corrupt_cache_entry_recomputed(self, tiny_matrix, tmp_path, corruption):
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(max_workers=1, cache_dir=str(cache_dir))
        runner.run(tiny_matrix)
        victim = sorted(cache_dir.glob("*.json"))[0]
        victim.write_text(corruption)  # invalid JSON or valid-but-wrong shape
        sweep = runner.run(tiny_matrix)
        assert all(result.ok for result in sweep.results)
        assert sweep.cached_count == len(tiny_matrix) - 1
        assert json.loads(victim.read_text())["status"] == "ok"  # repaired

    def test_cache_hit_with_tuple_valued_params(self, tmp_path):
        # Tuple values serialise to JSON lists; the cache's spec-equality
        # check must still recognise the stored entry as the same cell.
        from repro.experiments.matrix import ScenarioCell, WorkloadSpec
        from repro.experiments.runner import CellResult, ResultCache

        cell = ScenarioCell(
            matrix_name="t",
            governor="next",
            workload=WorkloadSpec.single_app("facebook", 3.0),
            platform="exynos9810",
            seed=0,
            governor_params=(("layers", (32, 16)),),
        )
        cache = ResultCache(str(tmp_path))
        cache.store(
            CellResult(
                cell=cell,
                status="ok",
                # Every current summary carries the recorded-stream hash;
                # entries without it are treated as stale-format misses.
                summary={"average_power_w": 1.0, "sample_stream_hash": "0" * 64},
            )
        )
        hit = cache.load(cell)
        assert hit is not None and hit.from_cache

    def test_summary_dict_json_roundtrip_exact(self, tiny_matrix):
        cell = tiny_matrix.cells()[0]
        from repro.experiments.runner import run_cell_session

        summary = summary_to_dict(run_cell_session(cell))
        assert json.loads(json.dumps(summary)) == summary


@pytest.fixture(scope="module")
def trained_next_matrix():
    return ScenarioMatrix.build(
        name="trained-determinism",
        governors=("schedutil", "next"),
        apps=("facebook",),
        seeds=(0,),
        duration_s=4.0,
        training={
            "key": "pretrained",
            "mode": "pretrained",
            "episodes": 1,
            "episode_duration_s": 4.0,
        },
    )


class TestTrainedNextDeterminism:
    """The ISSUE acceptance criterion for the trained-agent pipeline.

    A trained-``next`` cell must summarise identically whether its artifact
    is trained in-process, trained across the pool, or loaded back from the
    artifact store -- otherwise the train-once optimisation would silently
    change the science.
    """

    def test_pretrained_cell_runs_greedy_from_artifact(self, trained_next_matrix):
        from repro.experiments.artifacts import train_artifact

        cell = next(c for c in trained_next_matrix.cells() if c.pretrained)
        artifact = train_artifact(cell.training_spec())
        governor = artifact.build_governor()
        assert governor.training is False
        assert governor.agent.qtable_size("facebook") > 0

    def test_pool_sequential_and_artifact_cache_parity(
        self, trained_next_matrix, tmp_path
    ):
        sequential = run_matrix(trained_next_matrix, max_workers=1)
        pooled = run_matrix(trained_next_matrix, max_workers=2)
        artifact_dir = str(tmp_path / "artifacts")
        trained = run_matrix(trained_next_matrix, max_workers=1, artifact_dir=artifact_dir)
        served_runner = SweepRunner(max_workers=1, artifact_dir=artifact_dir)
        served = served_runner.run(trained_next_matrix)
        assert served_runner.artifacts.trained_count == 0  # artifact from store
        assert served_runner.artifacts.reused_count == 1
        for sweep in (pooled, trained, served):
            assert all(result.ok for result in sweep.results)
            assert [r.cell for r in sweep.results] == [r.cell for r in sequential.results]
            assert [r.summary for r in sweep.results] == [
                r.summary for r in sequential.results
            ]
