"""End-to-end integration tests reproducing the paper's claims at small scale.

These are slower than the unit tests (a few seconds each) but still far below
the full benchmark harness; they assert the *direction* of every headline
claim so a regression in any subsystem is caught by ``pytest tests/``.
"""

import pytest

from repro.core.governor import NextGovernor
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.experiment import (
    compare_governors_on_trace,
    make_governor,
    record_session_trace,
    run_trace,
    train_next_governor,
)
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.session import SessionSegment
from repro.workloads.trace import TracePlayer, TraceRecorder

VSYNC = 1.0 / 60.0


@pytest.fixture(scope="module")
def platform():
    return exynos9810()


@pytest.fixture(scope="module")
def trained_spotify_governor(platform):
    """A Next governor trained (briefly) on the Spotify workload."""
    governor = NextGovernor(seed=11)
    train_next_governor(
        governor,
        "spotify",
        platform=platform,
        episodes=6,
        episode_duration_s=45.0,
        seed=11,
        td_error_threshold=0.0,
    )
    governor.set_training(False)
    return governor


class TestSchedutilBaselineBehaviour:
    """The motivating observation of Fig. 1: high frequency at near-zero FPS."""

    def test_spotify_keeps_big_frequency_high_despite_low_fps(self, platform):
        trace = TraceRecorder.record_app(make_app("spotify", seed=21), 45.0, VSYNC)
        result = run_trace(trace, make_governor("schedutil"), platform=platform)
        recorder = result.recorder
        # Consider the steady part of the session (skip the first 10 s).
        steady = [s for s in recorder.samples if s.time_s > 10.0]
        low_fps = [s for s in steady if s.fps < 10.0]
        assert low_fps, "spotify should spend time at near-zero FPS"
        mean_big_freq = sum(s.frequencies_mhz["big"] for s in low_fps) / len(low_fps)
        # The big cluster sits in the upper half of its range even though the
        # frame rate is near zero -- the waste the paper identifies.
        assert mean_big_freq > 0.5 * 2704.0

    def test_schedutil_average_power_in_paper_ballpark(self, platform):
        trace = record_session_trace(
            [SessionSegment("home", 15.0), SessionSegment("facebook", 30.0),
             SessionSegment("spotify", 30.0)],
            platform=platform,
            seed=8,
        )
        summary = run_trace(trace, make_governor("schedutil"), platform=platform).summary
        # Fig. 3 reports ~3.5 W average for this session type.
        assert 1.5 < summary.average_power_w < 6.0
        assert 35.0 < summary.peak_temperature_c["big"] < 80.0


class TestNextVersusSchedutil:
    def test_next_saves_power_and_temperature_on_spotify(self, platform, trained_spotify_governor):
        trace = TraceRecorder.record_app(make_app("spotify", seed=31), 60.0, VSYNC)
        schedutil = run_trace(trace, make_governor("schedutil"), platform=platform).summary
        next_summary = run_trace(trace, trained_spotify_governor, platform=platform).summary
        assert next_summary.average_power_w < schedutil.average_power_w
        assert (
            next_summary.peak_temperature_c["big"] <= schedutil.peak_temperature_c["big"] + 0.5
        )

    def test_next_preserves_qos_on_spotify(self, platform, trained_spotify_governor):
        trace = TraceRecorder.record_app(make_app("spotify", seed=31), 60.0, VSYNC)
        next_result = run_trace(trace, trained_spotify_governor, platform=platform)
        assert next_result.summary.frame_delivery_ratio > 0.85

    def test_untrained_next_does_not_crash_and_still_runs(self, platform):
        governor = NextGovernor(seed=5, training=True)
        trace = TraceRecorder.record_app(make_app("home", seed=5), 20.0, VSYNC)
        result = run_trace(trace, governor, platform=platform)
        assert result.summary.average_power_w > 0.0

    def test_training_then_exploitation_improves_reward(self, platform):
        governor = NextGovernor(seed=9)
        app_name = "facebook"
        first = train_next_governor(
            governor, app_name, platform=platform, episodes=2, episode_duration_s=30.0,
            seed=9, td_error_threshold=0.0,
        )
        assert first.agent_steps > 0
        governor.set_training(False)
        trace = TraceRecorder.record_app(make_app(app_name, seed=41), 30.0, VSYNC)
        exploited = run_trace(trace, governor, platform=platform).summary
        schedutil = run_trace(trace, make_governor("schedutil"), platform=platform).summary
        # The trained agent must not be worse than stock on the PPDW metric.
        assert exploited.average_ppdw >= 0.8 * schedutil.average_ppdw


class TestGovernorComparisonMatrix:
    def test_three_governor_comparison_on_a_game(self, platform):
        trace = TraceRecorder.record_app(make_app("pubg", seed=13), 40.0, VSYNC)
        comparison = compare_governors_on_trace(
            trace,
            {
                "schedutil": make_governor("schedutil"),
                "int_qos_pm": make_governor("int_qos_pm"),
                "performance": make_governor("performance"),
            },
            baseline="schedutil",
            platform=platform,
        )
        # Int. QoS PM saves power relative to schedutil on games (Fig. 7) ...
        assert comparison.power_saving_pct("int_qos_pm") > 0.0
        # ... while the performance governor can only consume more.
        assert comparison.power_saving_pct("performance") <= 1.0

    def test_every_governor_keeps_home_screen_responsive(self, platform):
        trace = TraceRecorder.record_app(make_app("home", seed=17), 20.0, VSYNC)
        for name in ("schedutil", "performance", "conservative"):
            summary = run_trace(trace, make_governor(name), platform=platform).summary
            assert summary.frame_delivery_ratio > 0.9


class TestQTablePersistenceAcrossSessions:
    def test_qtable_saved_and_reloaded_controls_like_the_original(self, platform, tmp_path,
                                                                   trained_spotify_governor):
        store_dir = str(tmp_path / "qtables")
        trained_spotify_governor.agent.store.save(store_dir)

        from repro.core.qtable import QTableStore

        reloaded_store = QTableStore.load(store_dir, action_count=9, initial_q=1.0)
        fresh = NextGovernor(seed=99, training=False)
        fresh.agent.store.set_table("spotify", reloaded_store.table_for("spotify"))
        # Force the agent to rebuild its learner around the injected table.
        fresh.agent.set_application("spotify")

        trace = TraceRecorder.record_app(make_app("spotify", seed=77), 30.0, VSYNC)
        original = run_trace(trace, trained_spotify_governor, platform=platform).summary
        restored = run_trace(trace, fresh, platform=platform).summary
        assert restored.average_power_w == pytest.approx(original.average_power_w, rel=0.25)
