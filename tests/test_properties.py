"""Property-based tests (hypothesis) on the library's core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ActionSpace
from repro.core.frame_window import FrameWindowConfig, FrameWindowMonitor, quantise_fps
from repro.core.ppdw import compute_ppdw, compute_reward
from repro.core.qlearning import QLearningConfig, QLearningCore
from repro.graphics.display import FpsCounter
from repro.graphics.pipeline import FramePipeline, FrameSpec
from repro.soc.cluster import Cluster, ClusterKind, ClusterSpec
from repro.soc.frequency import OppTable
from repro.soc.platform import exynos9810
from repro.soc.power import ClusterPowerModel
from repro.soc.thermal import ThermalNetwork, ThermalNodeSpec


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

frequencies = st.lists(
    st.floats(min_value=100.0, max_value=4000.0, allow_nan=False),
    min_size=2,
    max_size=12,
    unique=True,
)

fps_values = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)
powers = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
temperatures = st.floats(min_value=21.0, max_value=110.0, allow_nan=False)


# ---------------------------------------------------------------------------
# OPP tables and clusters
# ---------------------------------------------------------------------------

@given(frequencies)
def test_opp_table_sorted_and_lookups_consistent(freqs):
    table = OppTable.from_frequencies(freqs, v_min=0.6, v_max=1.1)
    ordered = table.frequencies_mhz
    assert ordered == sorted(ordered)
    for index, frequency in enumerate(ordered):
        assert table.index_of(frequency) == index
        assert table.floor_index(frequency) == index
        assert table.ceil_index(frequency) == index
        assert table.nearest_index(frequency) == index


@given(frequencies, st.floats(min_value=50.0, max_value=5000.0, allow_nan=False))
def test_floor_ceil_bracket_any_frequency(freqs, query):
    table = OppTable.from_frequencies(freqs, v_min=0.6, v_max=1.1)
    floor_index = table.floor_index(query)
    ceil_index = table.ceil_index(query)
    assert 0 <= floor_index < len(table)
    assert 0 <= ceil_index < len(table)
    if table.min_frequency_mhz <= query <= table.max_frequency_mhz:
        assert table.frequency_at(floor_index) <= query + 1e-9
        assert table.frequency_at(ceil_index) >= query - 1e-9


@given(frequencies, st.integers(min_value=-30, max_value=30), st.integers(min_value=-30, max_value=30))
def test_cluster_limits_always_consistent(freqs, max_request, min_request):
    table = OppTable.from_frequencies(freqs, v_min=0.6, v_max=1.1)
    spec = ClusterSpec(name="c", kind=ClusterKind.BIG_CPU, opp_table=table)
    cluster = Cluster(spec)
    cluster.set_max_limit_index(max_request)
    cluster.set_min_limit_index(min_request)
    assert 0 <= cluster.min_limit_index <= cluster.max_limit_index <= len(table) - 1
    assert cluster.min_limit_index <= cluster.current_index <= cluster.max_limit_index


# ---------------------------------------------------------------------------
# Power model
# ---------------------------------------------------------------------------

@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    temperatures,
)
def test_power_monotone_in_utilisation(util_low, util_high, temperature):
    platform = exynos9810()
    model = ClusterPowerModel(platform.cluster_specs["big"])
    low, high = sorted((util_low, util_high))
    p_low = model.total_power_w(2704.0, 1.08, low, temperature)
    p_high = model.total_power_w(2704.0, 1.08, high, temperature)
    assert p_high >= p_low >= 0.0


@given(st.integers(min_value=0, max_value=17), st.integers(min_value=0, max_value=17))
def test_power_monotone_in_opp_index(index_a, index_b):
    platform = exynos9810()
    spec = platform.cluster_specs["big"]
    model = ClusterPowerModel(spec)
    low, high = sorted((index_a, index_b))
    p_low = model.max_power_w(low, temperature_c=50.0)
    p_high = model.max_power_w(high, temperature_c=50.0)
    assert p_high >= p_low


# ---------------------------------------------------------------------------
# Thermal network
# ---------------------------------------------------------------------------

@given(
    st.floats(min_value=0.0, max_value=10.0),
    st.floats(min_value=0.1, max_value=120.0),
)
@settings(max_examples=40)
def test_thermal_never_below_ambient_and_bounded(power_w, duration_s):
    nodes = {
        "chip": ThermalNodeSpec("chip", capacitance_j_per_k=3.0, conductance_to_ambient_w_per_k=0.05),
        "body": ThermalNodeSpec("body", capacitance_j_per_k=40.0, conductance_to_ambient_w_per_k=0.2),
    }
    network = ThermalNetwork(nodes, {("chip", "body"): 0.1}, ambient_c=21.0)
    network.step({"chip": power_w}, duration_s)
    chip = network.temperature_c("chip")
    # Bounded above by the single-node steady state (all heat through the
    # chip's own conductances) plus a small numerical margin.
    upper_bound = 21.0 + power_w / 0.05 + 1.0
    assert 21.0 <= chip <= upper_bound


# ---------------------------------------------------------------------------
# Frame pipeline and FPS accounting
# ---------------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=10, max_size=200),
)
@settings(max_examples=30)
def test_pipeline_conservation_of_frames(demand_pattern):
    platform = exynos9810()
    clusters = platform.build_clusters()
    pipeline = FramePipeline()
    demanded = 0
    displayed = 0
    dropped = 0
    for count in demand_pattern:
        frames = [FrameSpec(10.0, 20.0)] * count
        demanded += count
        result = pipeline.tick(1.0 / 60.0, clusters, frames)
        displayed += result.frames_displayed
        dropped += result.frames_dropped
    # Frames cannot be displayed more than once, and accepted + rejected can
    # never exceed what was demanded.
    assert displayed + dropped <= demanded + 3  # +3 for frames still in flight
    assert displayed <= demanded


@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=300))
def test_fps_counter_never_negative_nor_above_input_rate(counts):
    counter = FpsCounter(window_s=1.0)
    time_s = 0.0
    for count in counts:
        counter.record(time_s, count)
        fps = counter.fps(time_s)
        assert fps >= 0.0
        assert fps <= 2.0 * 60.0 + 1e-6
        time_s += 1.0 / 60.0


# ---------------------------------------------------------------------------
# PPDW and reward
# ---------------------------------------------------------------------------

@given(fps_values, powers, temperatures)
def test_ppdw_non_negative_and_monotone_in_fps(fps, power, temperature):
    value = compute_ppdw(fps, power, temperature, ambient_c=21.0)
    higher = compute_ppdw(min(60.0, fps + 5.0), power, temperature, ambient_c=21.0)
    assert value >= 0.0
    assert higher >= value


@given(fps_values, powers, powers, temperatures)
def test_ppdw_monotone_decreasing_in_power(fps, power_a, power_b, temperature):
    low, high = sorted((power_a, power_b))
    assert compute_ppdw(fps, high, temperature, 21.0) <= compute_ppdw(fps, low, temperature, 21.0)


@given(fps_values, fps_values, powers, temperatures, st.integers(0, 10), st.integers(0, 10))
def test_reward_bounded_and_penalties_never_help(fps, target, power, temperature, dropped, extra):
    demanded = dropped + extra
    base = compute_reward(fps, target, power, temperature, 21.0,
                          dropped_frames=0, demanded_frames=demanded)
    with_drops = compute_reward(fps, target, power, temperature, 21.0,
                                dropped_frames=dropped, demanded_frames=demanded)
    assert with_drops <= base + 1e-9


# ---------------------------------------------------------------------------
# Frame window
# ---------------------------------------------------------------------------

@given(st.lists(fps_values, min_size=1, max_size=400), st.integers(min_value=1, max_value=60))
def test_frame_window_mode_is_a_representable_level(samples, levels):
    config = FrameWindowConfig(quantisation_levels=levels)
    monitor = FrameWindowMonitor(config)
    for index, fps in enumerate(samples):
        monitor.observe(index * config.sample_period_s, fps)
    target = monitor.target_fps()
    assert 0.0 <= target <= config.max_fps
    # The target must correspond to one of the quantisation levels present in
    # the window.
    levels_in_window = {level for level, _ in monitor.histogram()}
    assert quantise_fps(target, levels, config.max_fps) in levels_in_window


@given(st.floats(min_value=0.0, max_value=300.0, allow_nan=False), st.integers(min_value=1, max_value=120))
def test_quantise_fps_within_range(fps, levels):
    level = quantise_fps(fps, levels)
    assert 0 <= level <= levels


# ---------------------------------------------------------------------------
# Actions and Q-learning
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=300))
@settings(max_examples=30)
def test_action_application_keeps_limits_valid(action_indices):
    platform = exynos9810()
    clusters = platform.build_clusters()
    space = ActionSpace(["big", "little", "gpu"])
    for index in action_indices:
        space.apply(index, clusters)
        for cluster in clusters.values():
            assert 0 <= cluster.max_limit_index <= len(cluster.opp_table) - 1
            assert cluster.min_limit_index <= cluster.max_limit_index


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # state
            st.integers(min_value=0, max_value=2),   # action
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),  # reward
            st.integers(min_value=0, max_value=5),   # next state
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=30)
def test_q_values_remain_bounded_by_reward_geometry(transitions):
    config = QLearningConfig(learning_rate=0.5, discount=0.9, initial_q=0.0)
    core = QLearningCore(action_count=3, config=config, rng=random.Random(0))
    for state, action, reward, next_state in transitions:
        core.update(state, action, reward, next_state)
    # With |r| <= 5 and gamma = 0.9 every Q value must stay within the
    # discounted-return bound 5 / (1 - 0.9) = 50.
    bound = 50.0 + 1e-6
    for state in core.visited_states():
        for value in core.qtable.values(state):
            assert -bound <= value <= bound
