"""Tests for the scenario-matrix harness: matrix, runner, aggregate, CLI."""

import json

import pytest

from repro.experiments.aggregate import (
    MetricStatistics,
    condition_table,
    metric_statistics,
    marginal_savings,
    marginal_table,
    paired_savings,
    replicate_statistics,
)
from repro.experiments.matrix import (
    COLD_TRAINING,
    NAMED_MATRICES,
    ScenarioCell,
    ScenarioMatrix,
    TrainingVariant,
    WorkloadSpec,
    named_matrix,
)
from repro.experiments.runner import CellResult, SweepRunner, execute_cell, run_matrix
from repro.experiments import cli
from repro.workloads.session import FIGURE1_SESSION, session_matrix


# ---------------------------------------------------------------------------
# Matrix expansion
# ---------------------------------------------------------------------------

class TestWorkloadSpec:
    def test_single_app(self):
        spec = WorkloadSpec.single_app("facebook", 30.0)
        assert spec.key == "facebook"
        assert spec.duration_s == pytest.approx(30.0)

    def test_from_session(self):
        spec = WorkloadSpec.from_session("fig1", FIGURE1_SESSION)
        assert [app for app, _ in spec.segments] == ["home", "facebook", "spotify"]
        assert spec.duration_s == pytest.approx(FIGURE1_SESSION.total_duration_s)

    def test_rejects_unknown_app_and_bad_duration(self):
        with pytest.raises(ValueError):
            WorkloadSpec.single_app("not_an_app", 10.0)
        with pytest.raises(ValueError):
            WorkloadSpec.single_app("facebook", 0.0)

    def test_dict_roundtrip(self):
        spec = WorkloadSpec.from_session("fig1", FIGURE1_SESSION)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec


class TestScenarioMatrix:
    def test_full_factorial_expansion(self):
        matrix = ScenarioMatrix.build(
            name="t",
            governors=("schedutil", "powersave"),
            apps=("facebook", "spotify"),
            platforms=("exynos9810", "generic-two-cluster"),
            seeds=(0, 1, 2),
            duration_s=5.0,
        )
        cells = matrix.cells()
        assert len(cells) == len(matrix) == 2 * 2 * 2 * 3
        assert len({cell.fingerprint() for cell in cells}) == len(cells)
        # pre-registered order: workload-major, governor fastest
        assert [cell.governor for cell in cells[:2]] == ["schedutil", "powersave"]

    def test_validates_axes(self):
        workloads = (WorkloadSpec.single_app("facebook", 5.0),)
        with pytest.raises(ValueError):
            ScenarioMatrix(name="t", governors=(), workloads=workloads)
        with pytest.raises(ValueError):
            ScenarioMatrix(name="t", governors=("nope",), workloads=workloads)
        with pytest.raises(ValueError):
            ScenarioMatrix(
                name="t", governors=("schedutil",), workloads=workloads,
                platforms=("martian-soc",),
            )
        with pytest.raises(ValueError):
            ScenarioMatrix(
                name="t", governors=("schedutil",), workloads=workloads,
                seeds=(0, 0),
            )

    def test_config_overrides_validated_at_construction(self):
        # Typos and reserved keys fail fast with a clear message, not as an
        # opaque per-cell TypeError after the sweep has started.
        with pytest.raises(ValueError, match="unknown config override"):
            ScenarioMatrix.build(
                name="t", governors=("schedutil",), apps=("facebook",),
                config_overrides={"bogus_knob": 1},
            )
        with pytest.raises(ValueError, match="reserved"):
            ScenarioMatrix.build(
                name="t", governors=("schedutil",), apps=("facebook",),
                config_overrides={"duration_s": 30.0},
            )
        matrix = ScenarioMatrix.build(
            name="t", governors=("schedutil",), apps=("facebook",),
            duration_s=3.0, config_overrides={"warm_start_temperature_c": 30.0},
        )
        sweep = run_matrix(matrix, max_workers=1)
        assert all(result.ok for result in sweep.results)

    def test_governor_params_must_match_axis(self):
        with pytest.raises(ValueError):
            ScenarioMatrix.build(
                name="t",
                governors=("schedutil",),
                apps=("facebook",),
                governor_params={"next": {"seed": 1}},
            )

    def test_dict_roundtrip(self):
        matrix = named_matrix("smoke")
        rebuilt = ScenarioMatrix.from_dict(matrix.to_dict())
        assert rebuilt == matrix
        assert [c.fingerprint() for c in rebuilt.cells()] == [
            c.fingerprint() for c in matrix.cells()
        ]

    def test_from_dict_bare_names_and_named_sessions(self):
        matrix = ScenarioMatrix.from_dict(
            {
                "name": "mix",
                "governors": ["schedutil"],
                "workloads": ["facebook", "fig1"],
                "duration_s": 12.0,
            }
        )
        keys = {workload.key: workload for workload in matrix.workloads}
        assert keys["facebook"].duration_s == pytest.approx(12.0)
        assert keys["fig1"].duration_s == pytest.approx(
            FIGURE1_SESSION.total_duration_s
        )

    def test_from_dict_game_duration_and_unknown_keys(self):
        matrix = ScenarioMatrix.from_dict(
            {
                "name": "g",
                "governors": ["schedutil"],
                "workloads": ["facebook", "pubg"],
                "duration_s": 30.0,
                "game_duration_s": 120.0,
            }
        )
        durations = {w.key: w.duration_s for w in matrix.workloads}
        assert durations["facebook"] == pytest.approx(30.0)
        assert durations["pubg"] == pytest.approx(120.0)
        # A typo'd key must not silently run a different experiment.
        with pytest.raises(ValueError, match="unknown matrix key"):
            ScenarioMatrix.from_dict(
                {"name": "g", "governors": ["schedutil"],
                 "workloads": ["facebook"], "governors_params": {}}
            )

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(named_matrix("smoke").to_dict()))
        assert ScenarioMatrix.from_file(str(path)) == named_matrix("smoke")

    def test_from_file_malformed_json_raises_value_error(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            ScenarioMatrix.from_file(str(bad_json))

    def test_from_file_malformed_yaml_raises_value_error(self, tmp_path):
        pytest.importorskip("yaml")  # PyYAML is an optional dependency
        bad_yaml = tmp_path / "bad.yaml"
        bad_yaml.write_text("governors: [schedutil")
        with pytest.raises(ValueError, match="invalid YAML"):
            ScenarioMatrix.from_file(str(bad_yaml))

    def test_named_matrices_all_expand(self):
        for name in NAMED_MATRICES:
            matrix = named_matrix(name)
            assert len(matrix.cells()) == len(matrix) > 0
        with pytest.raises(ValueError):
            named_matrix("nope")


class TestTrainingAxis:
    PRETRAINED = {
        "key": "pretrained",
        "mode": "pretrained",
        "episodes": 1,
        "episode_duration_s": 4.0,
    }

    def test_default_axis_is_cold_only(self):
        matrix = named_matrix("smoke")
        assert matrix.training == (COLD_TRAINING,)
        assert all(cell.training == COLD_TRAINING for cell in matrix.cells())
        assert not any(cell.pretrained for cell in matrix.cells())

    def test_only_trainable_governors_expand_across_the_axis(self):
        matrix = ScenarioMatrix.build(
            name="t",
            governors=("schedutil", "next"),
            apps=("facebook",),
            duration_s=4.0,
            training=({"mode": "cold"}, self.PRETRAINED),
        )
        cells = matrix.cells()
        assert len(cells) == len(matrix) == 3  # schedutil once, next twice
        by_governor = {}
        for cell in cells:
            by_governor.setdefault(cell.governor, []).append(cell.training.key)
        assert by_governor["schedutil"] == ["cold"]
        assert by_governor["next"] == ["cold", "pretrained"]
        assert len({cell.fingerprint() for cell in cells}) == 3

    def test_pretrained_cell_spec_and_label(self):
        matrix = ScenarioMatrix.build(
            name="t",
            governors=("next",),
            apps=("facebook",),
            duration_s=4.0,
            training=self.PRETRAINED,
        )
        cell = matrix.cells()[0]
        assert cell.pretrained
        assert cell.label().endswith("/pretrained")
        spec = cell.training_spec()
        assert spec.apps == ("facebook",)  # derived from the workload
        assert spec.platform == cell.platform
        assert spec.episodes == 1
        rebuilt = ScenarioCell.from_spec(cell.spec())
        assert rebuilt == cell
        assert rebuilt.fingerprint() == cell.fingerprint()

    def test_training_changes_the_fingerprint(self):
        base = ScenarioMatrix.build(
            name="t", governors=("next",), apps=("facebook",), duration_s=4.0
        ).cells()[0]
        trained = ScenarioMatrix.build(
            name="t", governors=("next",), apps=("facebook",), duration_s=4.0,
            training=self.PRETRAINED,
        ).cells()[0]
        assert base.fingerprint() != trained.fingerprint()

    def test_cosmetic_variant_differences_share_fingerprints_and_cache(self, tmp_path):
        # Only execution semantics may enter the fingerprint: a renamed cold
        # variant (or an unused training budget on it) describes the same
        # run, and a pretrained variant pinning exactly the workload's own
        # apps resolves to the same TrainingSpec as one that derives them.
        def cell_with_training(training):
            return ScenarioMatrix.build(
                name="t", governors=("next",), apps=("facebook",),
                duration_s=4.0, training=training,
            ).cells()[0]

        default_cold = cell_with_training(None)
        renamed_cold = cell_with_training(
            {"key": "baseline", "mode": "cold", "episodes": 3}
        )
        assert default_cold.fingerprint() == renamed_cold.fingerprint()
        derived_apps = cell_with_training(self.PRETRAINED)
        pinned_apps = cell_with_training(dict(self.PRETRAINED, apps=["facebook"]))
        assert derived_apps.fingerprint() == pinned_apps.fingerprint()
        # The result cache honours the same equivalence end to end.
        from repro.experiments.runner import ResultCache, execute_cell

        cache = ResultCache(str(tmp_path))
        cache.store(execute_cell(default_cold))
        hit = cache.load(renamed_cold)
        assert hit is not None and hit.from_cache
        assert hit.cell == renamed_cold  # served under the requesting cell

    def test_matrix_config_overrides_reach_the_training_spec(self):
        # The agent must train in the same simulated environment its
        # evaluation cells run in.
        matrix = ScenarioMatrix.build(
            name="t", governors=("next",), apps=("facebook",), duration_s=4.0,
            training=self.PRETRAINED,
            config_overrides={"warm_start_temperature_c": 40.0},
        )
        spec = matrix.cells()[0].training_spec()
        assert spec.config_overrides == (("warm_start_temperature_c", 40.0),)

    def test_explicit_training_apps_override_the_workload(self):
        # Pinning a superset lets many workloads share one artifact; the pin
        # must still cover every workload's own apps.
        variant = dict(self.PRETRAINED, apps=["facebook", "youtube"])
        matrix = ScenarioMatrix.build(
            name="t", governors=("next",), apps=("youtube",), duration_s=4.0,
            training=variant,
        )
        assert matrix.cells()[0].training_spec().apps == ("facebook", "youtube")

    def test_pinned_training_apps_must_cover_the_workload(self):
        with pytest.raises(ValueError, match="must cover"):
            ScenarioMatrix.build(
                name="t", governors=("next",), apps=("youtube",), duration_s=4.0,
                training=dict(self.PRETRAINED, apps=["facebook"]),
            )

    def test_pretrained_axis_requires_a_trainable_governor(self):
        with pytest.raises(ValueError, match="trainable governor"):
            ScenarioMatrix.build(
                name="t", governors=("schedutil",), apps=("facebook",),
                duration_s=4.0, training=self.PRETRAINED,
            )

    def test_pretrained_axis_rejects_trainable_governor_params(self):
        with pytest.raises(ValueError, match="governor_params"):
            ScenarioMatrix.build(
                name="t", governors=("next",), apps=("facebook",),
                duration_s=4.0, training=self.PRETRAINED,
                governor_params={"next": {"seed": 3}},
            )

    def test_variant_validation(self):
        with pytest.raises(ValueError, match="unknown training mode"):
            TrainingVariant(mode="lukewarm")
        with pytest.raises(ValueError, match="unknown app"):
            TrainingVariant(mode="pretrained", apps=("not_an_app",))
        with pytest.raises(ValueError, match="unknown training key"):
            TrainingVariant.from_dict({"mode": "pretrained", "episoeds": 3})
        with pytest.raises(ValueError, match="unique"):
            ScenarioMatrix.build(
                name="t", governors=("next",), apps=("facebook",), duration_s=4.0,
                training=({"mode": "cold"}, {"mode": "cold"}),
            )

    def test_matrix_dict_round_trip_with_training(self):
        matrix = ScenarioMatrix.build(
            name="t", governors=("schedutil", "next"), apps=("facebook",),
            duration_s=4.0, training=self.PRETRAINED,
        )
        rebuilt = ScenarioMatrix.from_dict(matrix.to_dict())
        assert rebuilt == matrix
        assert [c.fingerprint() for c in rebuilt.cells()] == [
            c.fingerprint() for c in matrix.cells()
        ]


class TestSessionMatrixHelper:
    def test_games_get_game_duration(self):
        sessions = session_matrix(
            ("facebook", "pubg"), duration_s=60.0, game_duration_s=120.0
        )
        assert sessions["facebook"].total_duration_s == pytest.approx(60.0)
        assert sessions["pubg"].total_duration_s == pytest.approx(120.0)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            session_matrix(())
        with pytest.raises(ValueError):
            session_matrix(("facebook", "facebook"))


# ---------------------------------------------------------------------------
# Runner behaviour
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_sweep():
    matrix = ScenarioMatrix.build(
        name="small",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=4.0,
    )
    return matrix, run_matrix(matrix, max_workers=1)


class TestRunner:
    def test_results_in_cell_order(self, small_sweep):
        matrix, sweep = small_sweep
        assert [result.cell for result in sweep.results] == matrix.cells()
        assert all(result.ok for result in sweep.results)
        assert all(result.metric("average_power_w") > 0 for result in sweep.results)

    def test_failure_isolation(self, monkeypatch):
        matrix = ScenarioMatrix.build(
            name="crashy",
            governors=("schedutil", "powersave"),
            apps=("facebook",),
            duration_s=3.0,
        )
        import repro.experiments.runner as runner_module

        real = runner_module.make_governor

        # Inject the fault where the scalar and batch-kernel cell paths
        # meet: both instantiate the governor through the runner module's
        # make_governor, so a diverging configuration crashes either route
        # (a batch that hits it falls back to per-cell execution, which then
        # isolates the crash to its own cell).
        def crash_on_powersave(name, **kwargs):
            if name == "powersave":
                raise RuntimeError("boom")
            return real(name, **kwargs)

        monkeypatch.setattr(runner_module, "make_governor", crash_on_powersave)
        sweep = runner_module.run_matrix(matrix, max_workers=1)
        assert len(sweep.completed) == 1
        assert len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert failure.cell.governor == "powersave"
        assert "boom" in failure.error
        with pytest.raises(ValueError):
            failure.metric("average_power_w")

    def test_errors_not_cached(self, monkeypatch, tmp_path):
        matrix = ScenarioMatrix.build(
            name="crashy", governors=("powersave",), apps=("facebook",), duration_s=3.0
        )
        import repro.experiments.runner as runner_module

        def crash(cell, artifact=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner_module, "run_cell_session", crash)
        runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
        assert len(runner.run(matrix).failures) == 1
        assert sorted(tmp_path.glob("*.json")) == []
        # Once "fixed", the cell runs for real and then caches.
        monkeypatch.undo()
        sweep = runner.run(matrix)
        assert sweep.failures == [] and sweep.cached_count == 0
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_progress_callback(self, small_sweep):
        matrix, _ = small_sweep
        seen = []
        run_matrix(
            matrix,
            max_workers=1,
            progress=lambda done, total, result: seen.append((done, total, result.ok)),
        )
        assert [entry[0] for entry in seen] == list(range(1, len(matrix) + 1))
        assert all(total == len(matrix) for _, total, _ in seen)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            SweepRunner(max_workers=0)

    def test_result_for_looks_up_by_fingerprint(self, small_sweep):
        matrix, sweep = small_sweep
        cell = matrix.cells()[3]
        assert sweep.result_for(cell) is sweep.results[3]
        foreign = ScenarioMatrix.build(
            name="other", governors=("schedutil",), apps=("youtube",), duration_s=3.0
        ).cells()[0]
        with pytest.raises(KeyError):
            sweep.result_for(foreign)

    def test_unknown_metric_is_a_value_error(self, small_sweep):
        _, sweep = small_sweep
        with pytest.raises(ValueError, match="unknown metric"):
            sweep.results[0].metric("average_pwoer_w")
        # Real-but-non-scalar summary entries are rejected the same way, so
        # programmatic aggregation gets the clear error the CLI gives.
        with pytest.raises(ValueError, match="unknown metric"):
            sweep.results[0].metric("peak_temperature_c")

    def test_result_dict_roundtrip(self, small_sweep):
        _, sweep = small_sweep
        result = sweep.results[0]
        rebuilt = CellResult.from_dict(result.to_dict())
        assert rebuilt.cell == result.cell
        assert rebuilt.summary == result.summary


class TestHeterogeneousBatchedSweep:
    """Mixed-duration/cadence sweeps route through the masked batch kernel.

    Before the masked kernel, cells only grouped when their durations (and
    every override) matched exactly; a sweep mixing browsing and game
    session lengths fell back to scalar execution.  These tests pin that
    such sweeps now batch -- and that the pool, sequential-batched and
    forced-scalar routes all produce bit-identical summaries, so cached
    results from any route stay interchangeable.
    """

    def _mixed_duration_matrix(self):
        # lineage is a game: game_duration_s gives it a longer session than
        # facebook's, so the two cells have heterogeneous trace durations.
        return ScenarioMatrix.build(
            name="hetero",
            governors=("schedutil", "powersave"),
            apps=("facebook", "lineage"),
            duration_s=3.0,
            game_duration_s=5.0,
        )

    def test_mixed_duration_cells_group_into_one_masked_batch(self):
        pytest.importorskip("numpy")
        from repro.experiments.runner import batchable_cell_groups

        matrix = self._mixed_duration_matrix()
        pending = list(enumerate(matrix.cells()))
        groups, rest = batchable_cell_groups(pending)
        assert rest == []
        assert len(groups) == 1 and len(groups[0]) == len(matrix)
        durations = {cell.workload.duration_s for _, cell in groups[0]}
        assert durations == {3.0, 5.0}

    def test_mixed_cadence_cells_group_and_match_scalar(self):
        pytest.importorskip("numpy")
        from dataclasses import replace

        from repro.experiments.runner import (
            batchable_cell_groups,
            execute_cells_batched,
        )

        base = self._mixed_duration_matrix().cells()
        cells = [
            replace(cell, config_overrides=(("record_every_n_ticks", 1 + i % 2),))
            for i, cell in enumerate(base)
        ]
        groups, rest = batchable_cell_groups(list(enumerate(cells)))
        assert rest == [] and len(groups) == 1
        batched = execute_cells_batched(cells)
        scalar = [execute_cell(cell) for cell in cells]
        assert [r.summary for r in batched] == [r.summary for r in scalar]

    def test_pool_sequential_and_scalar_routes_agree(self, monkeypatch):
        pytest.importorskip("numpy")
        import repro.experiments.runner as runner_module

        matrix = self._mixed_duration_matrix()
        sequential = run_matrix(matrix, max_workers=1)
        pooled = run_matrix(matrix, max_workers=2)
        monkeypatch.setattr(runner_module, "batch_kernel_available", lambda: False)
        scalar = run_matrix(matrix, max_workers=1)
        summaries = [
            [result.summary for result in sweep.results]
            for sweep in (sequential, pooled, scalar)
        ]
        assert all(sweep.failures == [] for sweep in (sequential, pooled, scalar))
        assert summaries[0] == summaries[1] == summaries[2]

    def test_scalar_fallback_with_numpy_absent(self, monkeypatch):
        # Simulate a NumPy-less interpreter: ``sys.modules[name] = None``
        # makes ``import numpy`` raise ImportError, so the runner must take
        # the scalar route end to end -- with identical results.
        pytest.importorskip("numpy")
        import sys

        matrix = self._mixed_duration_matrix()
        with_kernel = run_matrix(matrix, max_workers=1)
        for name in list(sys.modules):
            if name == "numpy" or name.startswith("numpy."):
                monkeypatch.setitem(sys.modules, name, None)
        without_kernel = run_matrix(matrix, max_workers=1)
        assert without_kernel.failures == []
        assert [result.summary for result in without_kernel.results] == [
            result.summary for result in with_kernel.results
        ]


class TestResultCacheQuarantine:
    """Corrupt cache entries are quarantined as misses, never raised mid-sweep."""

    @staticmethod
    def _single_cell_matrix():
        return ScenarioMatrix.build(
            name="quarantine", governors=("powersave",), apps=("facebook",),
            duration_s=3.0,
        )

    @pytest.mark.parametrize(
        "payload",
        [
            '{"cell": {"governor": "powersa',  # truncated mid-write
            "not json at all",
            '{"status": "ok"}',  # valid JSON, wrong shape
        ],
    )
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path, payload):
        from repro.experiments.runner import ResultCache

        matrix = self._single_cell_matrix()
        cell = matrix.cells()[0]
        path = tmp_path / f"{cell.fingerprint()}.json"
        path.write_text(payload)

        cache = ResultCache(str(tmp_path))
        assert cache.load(cell) is None
        bad = tmp_path / f"{cell.fingerprint()}.json.bad"
        assert bad.exists() and bad.read_text() == payload  # evidence kept
        assert not path.exists()

        # A sweep over the poisoned cache re-runs the cell and re-caches it.
        sweep = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(matrix)
        assert sweep.failures == [] and sweep.cached_count == 0
        rerun = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(matrix)
        assert rerun.cached_count == 1  # fresh entry landed at the original path

    def test_semantic_mismatch_is_a_miss_but_not_quarantined(self, tmp_path):
        # A different cell stored under this fingerprint name is not file
        # corruption: the entry stays on disk (same behaviour as before).
        from repro.experiments.runner import ResultCache, execute_cell

        cache = ResultCache(str(tmp_path))
        matrix = self._single_cell_matrix()
        cell = matrix.cells()[0]
        other = ScenarioMatrix.build(
            name="other", governors=("schedutil",), apps=("spotify",), duration_s=3.0
        ).cells()[0]
        result = execute_cell(other)
        result.cell = cell  # store the wrong content under this cell's name
        cache.store(result)
        cache_path = tmp_path / f"{cell.fingerprint()}.json"
        assert cache_path.exists()
        # Rewrite with the *other* cell's spec so payload comparison fails.
        data = json.loads(cache_path.read_text())
        data["cell"] = other.spec()
        cache_path.write_text(json.dumps(data))
        assert cache.load(cell) is None
        assert cache_path.exists()
        assert not (tmp_path / f"{cell.fingerprint()}.json.bad").exists()


class TestPretrainedCells:
    @staticmethod
    def _matrix():
        return ScenarioMatrix.build(
            name="pretrained",
            governors=("schedutil", "next"),
            apps=("facebook",),
            duration_s=4.0,
            training={
                "key": "pretrained",
                "mode": "pretrained",
                "episodes": 1,
                "episode_duration_s": 4.0,
            },
        )

    def test_sweep_trains_once_and_rerun_trains_zero_times(self, tmp_path):
        from repro.experiments.runner import SweepRunner

        matrix = self._matrix()
        artifact_dir = str(tmp_path / "artifacts")
        runner = SweepRunner(max_workers=1, artifact_dir=artifact_dir)
        sweep = runner.run(matrix)
        assert all(result.ok for result in sweep.results)
        assert runner.artifacts.trained_count == 1
        # The full matrix again, fresh runner: every artifact comes from the
        # store, zero training happens, summaries are identical.
        rerun_runner = SweepRunner(max_workers=1, artifact_dir=artifact_dir)
        rerun = rerun_runner.run(matrix)
        assert rerun_runner.artifacts.trained_count == 0
        assert rerun_runner.artifacts.reused_count == 1
        assert [r.summary for r in rerun.results] == [r.summary for r in sweep.results]

    def test_training_failure_fails_only_dependent_cells(self, monkeypatch):
        import repro.experiments.artifacts as artifacts_module
        import repro.experiments.runner as runner_module

        def crash(spec, agent_config=None):
            raise RuntimeError("training boom")

        monkeypatch.setattr(artifacts_module, "train_artifact", crash)
        sweep = runner_module.run_matrix(self._matrix(), max_workers=1)
        by_governor = {result.cell.governor: result for result in sweep.results}
        assert by_governor["schedutil"].ok
        assert not by_governor["next"].ok
        assert "training boom" in by_governor["next"].error

    def test_standalone_execute_cell_trains_inline(self):
        from repro.experiments.runner import execute_cell

        cell = next(c for c in self._matrix().cells() if c.pretrained)
        result = execute_cell(cell)
        assert result.ok
        assert result.metric("average_power_w") > 0


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

class TestAggregate:
    def test_metric_statistics(self):
        stats = metric_statistics([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)  # sample std (ddof=1)
        assert (stats.minimum, stats.maximum, stats.count) == (1.0, 3.0, 3)
        assert metric_statistics([5.0]).std == 0.0
        with pytest.raises(ValueError):
            metric_statistics([])

    def test_replicate_statistics_collapses_seeds(self, small_sweep):
        matrix, sweep = small_sweep
        stats = replicate_statistics(sweep.results, "average_power_w")
        # 2 governors x 2 workloads x 1 platform conditions, 2 seeds each
        assert len(stats) == 4
        assert all(entry.count == 2 for entry in stats.values())

    def test_paired_savings_pairs_by_row(self, small_sweep):
        _, sweep = small_sweep
        pairs = paired_savings(sweep.results, baseline="schedutil")
        assert len(pairs) == 4  # powersave cells only
        assert all(result.cell.governor == "powersave" for result, _ in pairs)
        assert all(saving > 0 for _, saving in pairs)

    def test_marginal_savings_by_axis(self, small_sweep):
        _, sweep = small_sweep
        by_governor = marginal_savings(sweep.results, axis="governor")
        assert set(by_governor) == {"powersave"}
        assert by_governor["powersave"].count == 4
        by_workload = marginal_savings(sweep.results, axis="workload")
        assert set(by_workload) == {"facebook", "spotify"}
        with pytest.raises(ValueError):
            marginal_savings(sweep.results, axis="colour")

    def test_tables_render(self, small_sweep):
        _, sweep = small_sweep
        table = condition_table(sweep)
        assert "schedutil" in table and "facebook" in table
        marginal = marginal_table(sweep, axis="governor")
        assert "powersave" in marginal

    def test_ambiguous_trainable_baseline_is_rejected(self):
        # A trainable baseline expanding across several training variants has
        # multiple cells per (workload, platform, seed) row; pairing against
        # an arbitrary one would report savings vs an unspecified policy.
        matrix = ScenarioMatrix.build(
            name="t", governors=("schedutil", "next"), apps=("facebook",),
            duration_s=4.0,
            training=(
                {"mode": "cold"},
                {"key": "pretrained", "mode": "pretrained", "episodes": 1,
                 "episode_duration_s": 4.0},
            ),
        )
        from repro.experiments.runner import CellResult

        results = [
            CellResult(cell=cell, status="ok", summary={"average_power_w": 1.0})
            for cell in matrix.cells()
        ]
        with pytest.raises(ValueError, match="ambiguous baseline"):
            paired_savings(results, baseline="next")
        # The stateless baseline still pairs fine.
        assert len(paired_savings(results, baseline="schedutil")) == 2


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_list(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "cells" in out

    def test_spec_file_sweep_with_cache(self, tmp_path, capsys):
        spec = {
            "name": "cli-test",
            "governors": ["schedutil", "powersave"],
            "workloads": ["facebook"],
            "seeds": [0],
            "duration_s": 3.0,
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        cache_dir = str(tmp_path / "cache")
        assert cli.main(["--spec", str(path), "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells ok" in out
        assert "Marginal average_power_w saving" in out
        # Second invocation: everything from cache.
        assert cli.main(["--spec", str(path), "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 from cache" in out

    def test_pretrained_flag_and_artifact_listing(self, tmp_path, capsys):
        spec = {
            "name": "cli-pretrained",
            "governors": ["schedutil", "next"],
            "workloads": ["facebook"],
            "seeds": [0],
            "duration_s": 3.0,
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        cache_dir = str(tmp_path / "cache")
        argv = [
            "--spec", str(path), "--cache-dir", cache_dir,
            "--pretrained", "--train-episodes", "1", "--train-duration", "3.0",
        ]
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "artifacts: 1 trained, 0 reused" in out
        # Re-run: cells come from the result cache, nothing retrains.
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "2 from cache" in out
        assert "artifacts: 0 trained, 0 reused" in out
        assert cli.main(["--list-artifacts", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "apps=facebook" in out

    def test_pretrained_flag_needs_trainable_governor(self, capsys):
        assert cli.main(["smoke", "--pretrained"]) == 2
        assert "trainable governor" in capsys.readouterr().err

    def test_multi_variant_trainable_baseline_rejected_before_sweep(
        self, tmp_path, capsys
    ):
        # An ambiguous baseline must fail before any cell runs, not after
        # the whole sweep has been computed.
        spec = {
            "name": "ambiguous",
            "governors": ["schedutil", "next"],
            "workloads": ["facebook"],
            "duration_s": 3.0,
            "training": [
                {"mode": "cold"},
                {"key": "pretrained", "mode": "pretrained", "episodes": 1,
                 "episode_duration_s": 3.0},
            ],
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        assert cli.main(["--spec", str(path), "--baseline", "next"]) == 2
        err = capsys.readouterr().err
        assert "training variants" in err and "ambiguous" in err

    def test_train_flags_without_pretrained_are_an_error(self, capsys):
        # Silently ignoring a training budget would misreport the experiment.
        assert cli.main(["trained-next", "--train-episodes", "12"]) == 2
        err = capsys.readouterr().err
        assert "--train-episodes" in err and "--pretrained" in err

    def test_list_artifacts_needs_a_directory(self, capsys):
        assert cli.main(["--list-artifacts"]) == 2
        assert "--artifact-dir or --cache-dir" in capsys.readouterr().err

    def test_list_artifacts_does_not_create_the_directory(self, tmp_path, capsys):
        missing = tmp_path / "typo" / "artifacts"
        assert cli.main(["--list-artifacts", "--artifact-dir", str(missing)]) == 0
        assert "no artifacts" in capsys.readouterr().out
        assert not missing.exists()  # read-only query leaves no trace

    def test_requires_matrix_or_spec(self, capsys):
        assert cli.main([]) == 2
        assert "give a matrix name or --spec" in capsys.readouterr().err

    def test_matrix_name_and_spec_conflict(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(named_matrix("smoke").to_dict()))
        assert cli.main(["baselines", "--spec", str(path)]) == 2
        assert "give exactly one" in capsys.readouterr().err

    def test_bad_baseline_rejected_before_sweep_runs(self, capsys):
        assert cli.main(["baselines", "--baseline", "scheduti"]) == 2
        err = capsys.readouterr().err
        assert "baseline governor" in err and "schedutil" in err

    def test_bad_metric_rejected_before_sweep_runs(self, capsys):
        # Must fail fast: a typo'd metric on a 72-cell sweep would otherwise
        # only surface after minutes of compute.
        assert cli.main(["baselines", "--metric", "average_pwoer_w"]) == 2
        err = capsys.readouterr().err
        assert "unknown metric" in err and "average_power_w" in err

    def test_user_errors_exit_2_with_clean_message(self, capsys, tmp_path):
        assert cli.main(["not-a-matrix"]) == 2
        assert "unknown matrix" in capsys.readouterr().err
        assert cli.main(["--spec", "/does/not/exist.json"]) == 2
        assert "repro-sweep: error:" in capsys.readouterr().err
        # Malformed syntax and wrong-typed values both stay clean errors.
        bad_type = tmp_path / "bad_type.json"
        bad_type.write_text(
            '{"name":"x","governors":["schedutil"],"workloads":["facebook"],'
            '"duration_s":[3]}'
        )
        assert cli.main(["--spec", str(bad_type)]) == 2
        assert "repro-sweep: error:" in capsys.readouterr().err
