"""Unit tests for the baseline governors and the schedutil scaler."""

import pytest

from repro.governors.base import GovernorObservation
from repro.governors.intqos import IntQosConfig, IntQosGovernor
from repro.governors.schedutil import SchedutilConfig, SchedutilGovernor, SchedutilScaler
from repro.governors.simple import (
    ConservativeGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.soc.platform import exynos9810


@pytest.fixture
def clusters():
    return exynos9810().build_clusters()


def observation(clusters, fps=30.0, utils=None, power=3.0, t_big=45.0, t_dev=30.0,
                time_s=10.0, dropped=0, demanded=3):
    utils = utils or {name: 0.3 for name in clusters}
    return GovernorObservation(
        time_s=time_s,
        dt_s=0.1,
        fps=fps,
        utilisations=utils,
        frequencies_mhz={n: c.current_frequency_mhz for n, c in clusters.items()},
        max_limits_mhz={n: c.max_limit_frequency_mhz for n, c in clusters.items()},
        power_w=power,
        temperature_big_c=t_big,
        temperature_device_c=t_dev,
        frames_dropped=dropped,
        frames_demanded=demanded,
    )


# ---------------------------------------------------------------------------
# Schedutil scaler (inner frequency selection)
# ---------------------------------------------------------------------------

class TestSchedutilScaler:
    def test_zero_utilisation_drops_to_min_without_boost(self, clusters):
        scaler = SchedutilScaler(SchedutilConfig(touch_boost_fraction=0.0, down_rate_limit_s=0.0))
        big = clusters["big"]
        big.set_frequency_index(10)
        scaler.select(big, utilisation=0.0, now_s=1.0)
        assert big.current_index == 0

    def test_high_utilisation_raises_frequency(self, clusters):
        scaler = SchedutilScaler(SchedutilConfig(touch_boost_fraction=0.0))
        big = clusters["big"]
        big.set_frequency_index(5)
        scaler.select(big, utilisation=1.0, now_s=1.0)
        assert big.current_index > 5

    def test_headroom_keeps_frequency_above_exact_need(self, clusters):
        scaler = SchedutilScaler(SchedutilConfig(touch_boost_fraction=0.0, down_rate_limit_s=0.0))
        big = clusters["big"]
        big.set_frequency_index(17)
        # 60 % utilisation at the top OPP: 1.25 * 0.6 = 0.75 of max is needed.
        scaler.select(big, utilisation=0.6, now_s=1.0)
        assert big.current_frequency_mhz >= 0.74 * 2704.0

    def test_down_rate_limit_delays_reduction(self, clusters):
        scaler = SchedutilScaler(
            SchedutilConfig(touch_boost_fraction=0.0, down_rate_limit_s=1.0)
        )
        big = clusters["big"]
        big.set_frequency_index(17)
        scaler.select(big, utilisation=0.4, now_s=0.0)   # first drop allowed
        first = big.current_index
        assert 0 < first < 17
        scaler.select(big, utilisation=0.0, now_s=0.5)   # within rate limit
        assert big.current_index == first
        scaler.select(big, utilisation=0.0, now_s=2.0)   # after rate limit
        assert big.current_index < first

    def test_touch_boost_pins_cpu_high_despite_low_utilisation(self, clusters):
        scaler = SchedutilScaler(SchedutilConfig(touch_boost_fraction=0.95))
        big = clusters["big"]
        big.set_frequency_index(0)
        scaler.select(big, utilisation=0.08, now_s=1.0)
        assert big.current_frequency_mhz >= 0.9 * 2704.0

    def test_touch_boost_does_not_apply_to_gpu_by_default(self, clusters):
        scaler = SchedutilScaler(SchedutilConfig(touch_boost_fraction=0.95, down_rate_limit_s=0.0))
        gpu = clusters["gpu"]
        gpu.set_frequency_index(0)
        scaler.select(gpu, utilisation=0.08, now_s=1.0)
        assert gpu.current_index <= 1

    def test_touch_boost_expires_after_hold(self, clusters):
        scaler = SchedutilScaler(
            SchedutilConfig(touch_boost_fraction=0.95, touch_boost_hold_s=0.5, down_rate_limit_s=0.0)
        )
        big = clusters["big"]
        scaler.select(big, utilisation=0.2, now_s=0.0)
        assert big.current_frequency_mhz >= 0.9 * 2704.0
        scaler.select(big, utilisation=0.0, now_s=2.0)
        assert big.current_index == 0

    def test_boost_respects_maxfreq_limit(self, clusters):
        scaler = SchedutilScaler()
        big = clusters["big"]
        big.set_max_limit_index(4)
        scaler.select(big, utilisation=0.5, now_s=1.0)
        assert big.current_index <= 4

    def test_select_all_covers_every_cluster(self, clusters):
        scaler = SchedutilScaler()
        indices = scaler.select_all(clusters, {n: 0.5 for n in clusters}, now_s=1.0)
        assert set(indices) == set(clusters)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedutilConfig(headroom=0.9)
        with pytest.raises(ValueError):
            SchedutilConfig(touch_boost_fraction=1.5)
        with pytest.raises(ValueError):
            SchedutilConfig(down_rate_limit_s=-1.0)


# ---------------------------------------------------------------------------
# Policy governors
# ---------------------------------------------------------------------------

class TestSchedutilGovernor:
    def test_keeps_limits_wide_open(self, clusters):
        governor = SchedutilGovernor()
        clusters["big"].set_max_limit_index(3)
        governor.update(observation(clusters), clusters)
        assert clusters["big"].max_limit_index == 17
        assert clusters["big"].min_limit_index == 0


class TestSimpleGovernors:
    def test_performance_pins_top(self, clusters):
        PerformanceGovernor().update(observation(clusters), clusters)
        for cluster in clusters.values():
            assert cluster.current_index == len(cluster.opp_table) - 1

    def test_powersave_pins_bottom(self, clusters):
        PowersaveGovernor().update(observation(clusters), clusters)
        for cluster in clusters.values():
            assert cluster.current_index == 0

    def test_conservative_steps_cap_with_utilisation(self, clusters):
        governor = ConservativeGovernor()
        start = clusters["big"].max_limit_index
        governor.update(observation(clusters, utils={"big": 0.1, "little": 0.1, "gpu": 0.1}), clusters)
        assert clusters["big"].max_limit_index == start - 1
        governor.update(observation(clusters, utils={"big": 0.95, "little": 0.95, "gpu": 0.95}), clusters)
        assert clusters["big"].max_limit_index == start

    def test_conservative_threshold_validation(self):
        with pytest.raises(ValueError):
            ConservativeGovernor(up_threshold=0.3, down_threshold=0.5)


class TestIntQosGovernor:
    def test_pins_frequencies(self, clusters):
        governor = IntQosGovernor()
        governor.update(observation(clusters, fps=50.0), clusters)
        for cluster in clusters.values():
            assert cluster.min_limit_index == cluster.max_limit_index

    def test_low_average_fps_leads_to_lower_frequencies(self, clusters):
        governor = IntQosGovernor()
        # Feed a long history of moderate FPS with modest utilisation.
        for step in range(30):
            governor.update(
                observation(clusters, fps=30.0, utils={"big": 0.2, "little": 0.2, "gpu": 0.3},
                            time_s=float(step)),
                clusters,
            )
        assert clusters["big"].current_index < len(clusters["big"].opp_table) - 1

    def test_closed_loop_raises_capacity_when_fps_short(self, clusters):
        governor = IntQosGovernor()
        for step in range(20):
            governor.update(
                observation(clusters, fps=55.0, utils={"big": 0.4, "little": 0.3, "gpu": 0.6},
                            time_s=float(step)),
                clusters,
            )
        settled = clusters["gpu"].current_index
        # FPS collapses below the averaged target -> the correction factor must
        # push the chosen OPPs back up (or at least not lower them).
        for step in range(20, 26):
            governor.update(
                observation(clusters, fps=20.0, utils={"big": 0.4, "little": 0.3, "gpu": 0.9},
                            time_s=float(step)),
                clusters,
            )
        assert clusters["gpu"].current_index >= settled

    def test_session_start_clears_history(self, clusters):
        governor = IntQosGovernor()
        governor.update(observation(clusters, fps=60.0), clusters)
        governor.on_session_start("pubg")
        assert len(governor._fps_history) == 0

    def test_reset_releases_limits(self, clusters):
        governor = IntQosGovernor()
        governor.update(observation(clusters, fps=30.0), clusters)
        governor.reset(clusters)
        for cluster in clusters.values():
            assert cluster.min_limit_index == 0
            assert cluster.max_limit_index == len(cluster.opp_table) - 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IntQosConfig(fps_window_s=0.0)
        with pytest.raises(ValueError):
            IntQosConfig(capacity_margin=0.9)
        with pytest.raises(ValueError):
            IntQosConfig(invocation_period_s=0.0)
