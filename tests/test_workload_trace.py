"""Unit tests for workload trace recording, serialisation and replay."""

import pytest

from repro.workloads.apps import make_app
from repro.workloads.session import SessionSegment
from repro.workloads.trace import TracePlayer, TraceRecorder, WorkloadTrace

VSYNC = 1.0 / 60.0


class TestTraceRecording:
    def test_record_app_length_and_duration(self):
        trace = TraceRecorder.record_app(make_app("facebook", seed=1), 10.0, VSYNC)
        assert len(trace) == int(round(10.0 / VSYNC))
        assert trace.duration_s == pytest.approx(10.0, abs=0.1)
        assert trace.total_frames_demanded > 0

    def test_record_segments_concatenates_apps(self):
        segments = [SessionSegment("home", 5.0), SessionSegment("spotify", 5.0)]
        trace = TraceRecorder.record_segments(segments, dt_s=VSYNC, seed=3)
        assert trace.app_names() == ["home", "spotify"]
        # Times are monotonically non-decreasing across the segment boundary.
        times = [tick.time_s for tick in trace]
        assert times == sorted(times)

    def test_record_app_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            TraceRecorder.record_app(make_app("home"), 0.0, VSYNC)

    def test_same_seed_same_trace(self):
        a = TraceRecorder.record_segments([SessionSegment("facebook", 5.0)], VSYNC, seed=7)
        b = TraceRecorder.record_segments([SessionSegment("facebook", 5.0)], VSYNC, seed=7)
        assert a.total_frames_demanded == b.total_frames_demanded


class TestTraceSerialisation:
    def test_json_round_trip(self):
        trace = TraceRecorder.record_app(make_app("home", seed=2), 3.0, VSYNC)
        restored = WorkloadTrace.from_json(trace.to_json())
        assert len(restored) == len(trace)
        assert restored.dt_s == trace.dt_s
        assert restored.total_frames_demanded == trace.total_frames_demanded
        assert restored[0].app_name == trace[0].app_name

    def test_dict_round_trip_preserves_frame_work(self):
        trace = TraceRecorder.record_app(make_app("lineage", seed=2), 2.0, VSYNC)
        restored = WorkloadTrace.from_dict(trace.to_dict())
        original_work = sum(f.gpu_work_mwu for t in trace for f in t.frames)
        restored_work = sum(f.gpu_work_mwu for t in restored for f in t.frames)
        assert restored_work == pytest.approx(original_work)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            WorkloadTrace(dt_s=0.0)


class TestTracePlayer:
    def test_replays_in_order(self):
        trace = TraceRecorder.record_app(make_app("home", seed=4), 2.0, VSYNC)
        player = TracePlayer(trace)
        replayed = [player.tick(VSYNC) for _ in range(len(trace))]
        assert [t.frame_count for t in replayed] == [t.frame_count for t in trace]
        assert player.exhausted

    def test_exhausted_player_emits_empty_demand(self):
        trace = TraceRecorder.record_app(make_app("home", seed=4), 1.0, VSYNC)
        player = TracePlayer(trace)
        for _ in range(len(trace)):
            player.tick(VSYNC)
        extra = player.tick(VSYNC)
        assert extra.frame_count == 0
        assert extra.phase_name == "exhausted"

    def test_looping_player_never_exhausts(self):
        trace = TraceRecorder.record_app(make_app("home", seed=4), 1.0, VSYNC)
        player = TracePlayer(trace, loop=True)
        for _ in range(3 * len(trace)):
            player.tick(VSYNC)
        assert not player.exhausted

    def test_wrong_dt_rejected(self):
        trace = TraceRecorder.record_app(make_app("home", seed=4), 1.0, VSYNC)
        player = TracePlayer(trace)
        with pytest.raises(ValueError):
            player.tick(0.5)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TracePlayer(WorkloadTrace(dt_s=VSYNC))

    def test_reset(self):
        trace = TraceRecorder.record_app(make_app("home", seed=4), 1.0, VSYNC)
        player = TracePlayer(trace)
        first = player.tick(VSYNC)
        player.reset()
        again = player.tick(VSYNC)
        assert first.frame_count == again.frame_count
