"""Unit tests for sensor sampling and the SocSimulator facade."""

import random

import pytest

from repro.soc.platform import exynos9810, generic_two_cluster_soc
from repro.soc.sensors import (
    PowerSensor,
    SampledSensor,
    SensorConfig,
    SensorHub,
    TemperatureSensor,
)
from repro.soc.soc import SocSimulator


class TestSampledSensor:
    def test_sample_and_hold(self):
        sensor = SampledSensor(SensorConfig(sample_period_s=1.0, noise_std=0.0))
        first = sensor.read(10.0, now_s=0.0)
        held = sensor.read(99.0, now_s=0.5)
        refreshed = sensor.read(99.0, now_s=1.5)
        assert first == 10.0
        assert held == 10.0
        assert refreshed == 99.0

    def test_quantisation(self):
        sensor = SampledSensor(SensorConfig(sample_period_s=0.0, noise_std=0.0, quantisation=0.5))
        assert sensor.read(10.26, now_s=0.0) == pytest.approx(10.5)

    def test_noise_is_deterministic_with_seeded_rng(self):
        a = SampledSensor(SensorConfig(noise_std=0.5), rng=random.Random(3))
        b = SampledSensor(SensorConfig(noise_std=0.5), rng=random.Random(3))
        assert a.read(5.0, 0.0) == b.read(5.0, 0.0)

    def test_reset_forces_refresh(self):
        sensor = SampledSensor(SensorConfig(sample_period_s=10.0))
        sensor.read(1.0, now_s=0.0)
        sensor.reset()
        assert sensor.read(2.0, now_s=0.1) == 2.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SensorConfig(sample_period_s=-1.0)
        with pytest.raises(ValueError):
            SensorConfig(noise_std=-0.1)
        with pytest.raises(ValueError):
            SensorConfig(quantisation=-0.1)


class TestSensorHub:
    def test_readings_include_all_nodes(self):
        hub = SensorHub(["big", "little", "device"], rng=random.Random(0))
        readings = hub.read(3.0, {"big": 50.0, "little": 40.0, "device": 30.0}, now_s=0.0)
        assert set(readings.temperatures_c) == {"big", "little", "device"}
        assert readings.power_w >= 0.0

    def test_device_virtual_sensor_blends_body_and_silicon(self):
        hub = SensorHub(
            ["big", "device"],
            rng=random.Random(0),
            device_blend_weight=0.75,
            temperature_sensor_factory=lambda: TemperatureSensor(noise_std_c=0.0, quantisation_c=0.0),
        )
        readings = hub.read(2.0, {"big": 60.0, "device": 30.0}, now_s=0.0)
        expected = 0.75 * 30.0 + 0.25 * 60.0
        assert readings.device_temperature_c == pytest.approx(expected, abs=0.2)

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            SensorHub([])

    def test_power_never_negative(self):
        hub = SensorHub(["big"], power_sensor=PowerSensor(noise_std_w=5.0), rng=random.Random(1))
        for i in range(20):
            readings = hub.read(0.01, {"big": 25.0}, now_s=float(i))
            assert readings.power_w >= 0.0


class TestSocSimulator:
    def test_step_advances_time_and_heats(self):
        soc = SocSimulator(exynos9810(), rng=random.Random(0))
        soc.set_utilisations({"big": 0.8, "little": 0.3, "gpu": 0.5})
        for _ in range(60):
            telemetry = soc.step(1.0)
        assert soc.time_s == pytest.approx(60.0)
        assert telemetry.temperature_c("big") > soc.ambient_c
        assert telemetry.total_power_w > 0.0

    def test_higher_frequency_means_more_power(self):
        soc = SocSimulator(exynos9810(), rng=random.Random(0))
        soc.set_utilisations({"big": 0.5, "little": 0.2, "gpu": 0.2})
        soc.cluster("big").set_frequency_index(0)
        low = soc.step(0.1).total_power_w
        soc.cluster("big").set_frequency_index(17)
        high = soc.step(0.1).total_power_w
        assert high > low

    def test_sensor_sampling_path(self):
        soc = SocSimulator(exynos9810(), rng=random.Random(0))
        soc.set_utilisations({"big": 0.5})
        soc.step(0.2)
        readings = soc.sample_sensors()
        assert readings.power_w > 0.0
        assert "big" in readings.temperatures_c

    def test_reset_restores_everything(self):
        soc = SocSimulator(exynos9810(), rng=random.Random(0))
        soc.set_utilisations({"big": 1.0, "gpu": 1.0})
        soc.step(30.0)
        soc.reset()
        assert soc.time_s == 0.0
        assert soc.thermal.temperature_c("big") == pytest.approx(soc.ambient_c)
        assert soc.cluster("big").max_limit_index == 17

    def test_thermal_failsafe_clamps_runaway(self):
        platform = exynos9810()
        soc = SocSimulator(platform, rng=random.Random(0), thermal_throttle=True)
        soc.set_utilisations({"big": 1.0, "little": 1.0, "gpu": 1.0})
        for _ in range(600):
            soc.step(1.0)
        # Junction temperature is clamped near the failsafe threshold instead
        # of growing without bound.
        assert soc.thermal.temperature_c("big") < platform.max_chip_temperature_c + 15.0

    def test_helper_cluster_names(self):
        soc = SocSimulator(exynos9810())
        assert soc.big_cluster_name() == "big"
        assert soc.gpu_cluster_name() == "gpu"
        assert set(soc.cluster_names) == {"big", "little", "gpu"}

    def test_invalid_step(self):
        soc = SocSimulator(generic_two_cluster_soc())
        with pytest.raises(ValueError):
            soc.step(0.0)
