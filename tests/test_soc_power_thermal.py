"""Unit tests for the power model and the lumped-RC thermal network."""

import pytest

from repro.soc.cluster import Cluster, ClusterKind, ClusterSpec
from repro.soc.frequency import OppTable
from repro.soc.platform import exynos9810
from repro.soc.power import (
    LEAKAGE_REFERENCE_TEMPERATURE_C,
    ClusterPowerModel,
    SocPowerModel,
)
from repro.soc.thermal import ThermalNetwork, ThermalNodeSpec


@pytest.fixture
def spec():
    table = OppTable.from_frequencies([400.0, 800.0, 1600.0], v_min=0.7, v_max=1.0)
    return ClusterSpec(
        name="cpu",
        kind=ClusterKind.BIG_CPU,
        opp_table=table,
        core_count=4,
        capacitance_nf=0.5,
        leakage_w_per_v=0.05,
        leakage_temp_coeff=0.012,
    )


class TestClusterPowerModel:
    def test_dynamic_power_scales_with_utilisation(self, spec):
        model = ClusterPowerModel(spec)
        low = model.dynamic_power_w(1600.0, 1.0, 0.25)
        high = model.dynamic_power_w(1600.0, 1.0, 1.0)
        assert high == pytest.approx(4 * low)

    def test_dynamic_power_scales_with_v_squared(self, spec):
        model = ClusterPowerModel(spec)
        at_07 = model.dynamic_power_w(800.0, 0.7, 1.0)
        at_10 = model.dynamic_power_w(800.0, 1.0, 1.0)
        assert at_10 / at_07 == pytest.approx((1.0 / 0.7) ** 2)

    def test_dynamic_power_zero_when_idle(self, spec):
        model = ClusterPowerModel(spec)
        assert model.dynamic_power_w(1600.0, 1.0, 0.0) == 0.0

    def test_utilisation_is_clamped(self, spec):
        model = ClusterPowerModel(spec)
        assert model.dynamic_power_w(800.0, 0.8, 2.0) == model.dynamic_power_w(800.0, 0.8, 1.0)

    def test_leakage_grows_with_temperature(self, spec):
        model = ClusterPowerModel(spec)
        cold = model.leakage_power_w(1.0, LEAKAGE_REFERENCE_TEMPERATURE_C)
        hot = model.leakage_power_w(1.0, LEAKAGE_REFERENCE_TEMPERATURE_C + 50.0)
        assert hot > cold
        assert cold == pytest.approx(0.05 * 1.0 * 4)

    def test_total_power_is_sum(self, spec):
        model = ClusterPowerModel(spec)
        total = model.total_power_w(800.0, 0.8, 0.5, 40.0)
        assert total == pytest.approx(
            model.dynamic_power_w(800.0, 0.8, 0.5) + model.leakage_power_w(0.8, 40.0)
        )

    def test_max_power_at_top_opp_dominates(self, spec):
        model = ClusterPowerModel(spec)
        assert model.max_power_w(2) > model.max_power_w(0)


class TestSocPowerModel:
    def test_evaluate_breakdown(self, spec):
        soc_model = SocPowerModel({"cpu": spec}, rest_of_platform_power_w=0.5)
        cluster = Cluster(spec)
        cluster.utilisation = 0.5
        breakdown = soc_model.evaluate({"cpu": cluster}, {"cpu": 40.0})
        assert breakdown.total_w == pytest.approx(
            breakdown.cluster_total_w("cpu") + 0.5
        )
        assert breakdown.clusters_total_w > 0

    def test_peak_exceeds_min_active(self, spec):
        soc_model = SocPowerModel({"cpu": spec}, rest_of_platform_power_w=0.3)
        assert soc_model.peak_power_w() > soc_model.min_active_power_w()

    def test_rejects_negative_floor(self, spec):
        with pytest.raises(ValueError):
            SocPowerModel({"cpu": spec}, rest_of_platform_power_w=-1.0)

    def test_exynos_peak_power_plausible(self):
        platform = exynos9810()
        model = SocPowerModel(
            platform.cluster_specs, platform.rest_of_platform_power_w
        )
        peak = model.peak_power_w()
        # The Note 9 can transiently draw well above 10 W (Fig. 3 shows ~14 W
        # spikes); the calibration should sit in that ballpark.
        assert 9.0 < peak < 25.0


# ---------------------------------------------------------------------------
# Thermal network
# ---------------------------------------------------------------------------

@pytest.fixture
def two_node_network():
    nodes = {
        "chip": ThermalNodeSpec("chip", capacitance_j_per_k=2.0, conductance_to_ambient_w_per_k=0.02),
        "body": ThermalNodeSpec("body", capacitance_j_per_k=50.0, conductance_to_ambient_w_per_k=0.2),
    }
    couplings = {("chip", "body"): 0.1}
    return ThermalNetwork(nodes, couplings, ambient_c=21.0)


class TestThermalNetwork:
    def test_starts_at_ambient(self, two_node_network):
        assert two_node_network.temperature_c("chip") == pytest.approx(21.0)
        assert two_node_network.temperature_c("body") == pytest.approx(21.0)

    def test_heating_raises_temperature(self, two_node_network):
        two_node_network.step({"chip": 2.0}, dt_s=10.0)
        assert two_node_network.temperature_c("chip") > 21.0

    def test_heat_conducts_to_coupled_node(self, two_node_network):
        two_node_network.step({"chip": 2.0}, dt_s=60.0)
        assert two_node_network.temperature_c("body") > 21.0
        assert two_node_network.temperature_c("chip") > two_node_network.temperature_c("body")

    def test_cooling_returns_towards_ambient(self, two_node_network):
        two_node_network.step({"chip": 3.0}, dt_s=60.0)
        hot = two_node_network.temperature_c("chip")
        two_node_network.step({}, dt_s=300.0)
        assert two_node_network.temperature_c("chip") < hot

    def test_never_below_ambient(self, two_node_network):
        two_node_network.step({}, dt_s=1000.0)
        for name in two_node_network.node_names:
            assert two_node_network.temperature_c(name) >= 21.0

    def test_zero_dt_is_noop(self, two_node_network):
        before = two_node_network.temperatures_c()
        two_node_network.step({"chip": 5.0}, dt_s=0.0)
        assert two_node_network.temperatures_c() == before

    def test_negative_dt_rejected(self, two_node_network):
        with pytest.raises(ValueError):
            two_node_network.step({}, dt_s=-1.0)

    def test_steady_state_does_not_mutate_live_state(self, two_node_network):
        before = two_node_network.temperatures_c()
        steady = two_node_network.steady_state({"chip": 2.0})
        assert two_node_network.temperatures_c() == before
        assert steady.temperatures_c["chip"] > before["chip"]

    def test_steady_state_energy_balance(self, two_node_network):
        power = 2.0
        steady = two_node_network.steady_state({"chip": power}, tolerance_c=0.001)
        # In steady state the heat leaving to ambient must equal the heat in.
        out = 0.02 * (steady.temperatures_c["chip"] - 21.0) + 0.2 * (
            steady.temperatures_c["body"] - 21.0
        )
        assert out == pytest.approx(power, rel=0.05)

    def test_reset(self, two_node_network):
        two_node_network.step({"chip": 3.0}, dt_s=60.0)
        two_node_network.reset()
        assert two_node_network.temperature_c("chip") == pytest.approx(21.0)

    def test_set_temperature_and_max(self, two_node_network):
        two_node_network.set_temperature("chip", 55.0)
        assert two_node_network.state.max_temperature_c() == pytest.approx(55.0)
        with pytest.raises(KeyError):
            two_node_network.set_temperature("missing", 30.0)

    def test_invalid_construction(self):
        nodes = {"a": ThermalNodeSpec("a", 1.0, 0.1)}
        with pytest.raises(ValueError):
            ThermalNetwork({}, {})
        with pytest.raises(ValueError):
            ThermalNetwork(nodes, {("a", "b"): 0.1})
        with pytest.raises(ValueError):
            ThermalNetwork(nodes, {("a", "a"): 0.1})

    def test_node_spec_validation(self):
        with pytest.raises(ValueError):
            ThermalNodeSpec("x", capacitance_j_per_k=0.0, conductance_to_ambient_w_per_k=0.1)
        with pytest.raises(ValueError):
            ThermalNodeSpec("x", capacitance_j_per_k=1.0, conductance_to_ambient_w_per_k=-0.1)

    def test_long_step_is_subdivided_and_stable(self, two_node_network):
        # A single huge step must not blow up the forward-Euler integration.
        two_node_network.step({"chip": 5.0}, dt_s=600.0)
        assert two_node_network.temperature_c("chip") < 500.0


class TestExynosThermalCalibration:
    def test_sustained_mixed_load_lands_in_paper_range(self):
        platform = exynos9810()
        network = ThermalNetwork(
            platform.thermal_nodes, platform.thermal_couplings, ambient_c=platform.ambient_c
        )
        # Roughly the heat split of a mixed (Fig. 3 style) session.
        steady = network.steady_state(
            {"big": 1.5, "little": 0.2, "gpu": 0.5, "device": 0.4}, tolerance_c=0.005
        )
        big = steady.temperatures_c["big"]
        device = steady.temperatures_c["device"]
        assert 40.0 < big < 75.0
        assert 25.0 < device < 45.0
        assert big > device
