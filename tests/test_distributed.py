"""Distributed sweep sharding: planner, worker, merge and CLI semantics.

The load-bearing guarantee is *bit-identity*: planning a matrix into N
shards, running them independently (interrupted and resumed, on disjoint
cache directories) and merging the shard outputs must reconstruct exactly
the sweep a single machine would have produced -- pinned per cell through
``sample_stream_hash``, the canonical SHA-256 of the full recorded sample
stream.  On top of that the suite pins the planner's invariants (determinism,
training co-location, cost balancing), the merge engine's conflict handling
(clean overlaps merge, divergent same-fingerprint entries fail loudly) and
the ``repro-sweep shard`` CLI round trip.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import cli
from repro.experiments.distributed import (
    MANIFEST_FILENAME,
    CostModel,
    ShardManifest,
    ShardMergeError,
    amortised_cell_costs,
    cell_group_key,
    load_merged_result,
    merge_shard_stores,
    merge_shards,
    plan_shards,
    run_shard,
    shard_cache_dir,
    shard_directory,
    shard_status,
)
from repro.experiments.distributed import RemainingCost
from repro.experiments.matrix import ScenarioMatrix, named_matrix
from repro.experiments.runner import CellResult, SweepRunner
from repro.reliability.clock import wall_now
from repro.reliability.faults import (
    KIND_CRASH,
    KIND_TRANSIENT,
    SITE_ATOMIC_WRITE_STAGED,
    SITE_EXECUTE_BATCH,
    SITE_EXECUTE_CELL,
    FaultPlan,
    FaultRule,
    InjectedCrashError,
    injected_faults,
)
from repro.reliability.retry import RetryPolicy


def small_matrix() -> ScenarioMatrix:
    """2 governors x 2 workloads x 1 seed, ~3 s cells: fast and untrained."""
    return ScenarioMatrix.build(
        name="shard-small",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0,),
        duration_s=3.0,
    )


TRAINED_APPS = ("facebook", "spotify")


def trained_matrix() -> ScenarioMatrix:
    """Cold + pretrained + federated ``next`` cells against schedutil.

    The acceptance shape of the distributed round trip: one trained-Next
    artifact and one federated fleet, each shared by several cells, so the
    planner must co-locate them and the merge must carry the artifacts back.
    """
    return ScenarioMatrix.build(
        name="shard-trained",
        governors=("schedutil", "next"),
        apps=TRAINED_APPS,
        seeds=(0,),
        duration_s=3.0,
        training=(
            {"key": "cold", "mode": "cold"},
            {
                "key": "pretrained",
                "mode": "pretrained",
                "apps": list(TRAINED_APPS),
                "episodes": 1,
                "episode_duration_s": 3.0,
                "seed": 0,
            },
            {
                "key": "federated",
                "mode": "federated",
                "apps": list(TRAINED_APPS),
                "episodes": 1,
                "episode_duration_s": 3.0,
                "seed": 0,
                "devices": 2,
                "rounds": 2,
            },
        ),
    )


def cell_hashes(sweep) -> dict:
    """Per-cell sample-stream hash of a sweep result (the parity currency)."""
    assert not sweep.failures, sweep.failures and sweep.failures[0].error
    return {
        result.cell.fingerprint(): result.summary["sample_stream_hash"]
        for result in sweep.results
    }


@pytest.fixture(scope="module")
def trained_reference():
    """The unsharded pool run every sharded variant must reproduce."""
    matrix = trained_matrix()
    sweep = SweepRunner(max_workers=2).run(matrix)
    return matrix, cell_hashes(sweep)


def run_all_shards(manifest, base_dir, max_workers=1):
    for index in range(manifest.shard_count):
        sweep = run_shard(
            manifest, index, shard_directory(base_dir, index), max_workers=max_workers
        )
        assert not sweep.failures, sweep.failures[0].error


def shard_dirs(manifest, base_dir):
    return [shard_directory(base_dir, i) for i in range(manifest.shard_count)]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class TestPlanner:
    def test_plan_is_deterministic_and_partitions_the_matrix(self):
        matrix = named_matrix("smoke")
        first = plan_shards(matrix, 3)
        second = plan_shards(matrix, 3)
        assert first.to_dict() == second.to_dict()
        assigned = [f for shard in first.assignments for f in shard]
        assert sorted(assigned) == sorted(
            {cell.fingerprint() for cell in matrix.cells()}
        )
        assert len(assigned) == len(set(assigned))

    def test_training_groups_are_never_split(self):
        matrix = trained_matrix()
        manifest = plan_shards(matrix, 3)
        cells = {cell.fingerprint(): cell for cell in matrix.cells()}
        shard_of = {}
        for index, shard in enumerate(manifest.assignments):
            for fingerprint in shard:
                key = cell_group_key(cells[fingerprint])
                if key.startswith(("train:", "fleet:")):
                    shard_of.setdefault(key, set()).add(index)
        assert shard_of, "expected trained groups in the matrix"
        for key, indices in shard_of.items():
            assert len(indices) == 1, f"group {key} split across shards {indices}"

    def test_cost_model_weighs_training(self):
        costs = amortised_cell_costs(trained_matrix().cells())
        by_key = {}
        for cell in trained_matrix().cells():
            by_key[(cell.governor, cell.training.key)] = costs[cell.fingerprint()]
        # A federated cell amortises devices x rounds of training; it must
        # dominate a pretrained cell, which must dominate a cold one.
        assert by_key[("next", "federated")] > by_key[("next", "pretrained")]
        assert by_key[("next", "pretrained")] > by_key[("next", "cold")]
        assert by_key[("next", "cold")] == pytest.approx(
            by_key[("schedutil", "cold")]
        )

    def test_balancing_spreads_cost_not_just_counts(self):
        manifest = plan_shards(small_matrix(), 2)
        first, second = (manifest.shard_cost_s(i) for i in range(2))
        assert first == pytest.approx(second, rel=0.5)

    def test_more_shards_than_groups_leaves_empty_shards_runnable(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, len(matrix.cells()) + 2)
        empties = [shard for shard in manifest.assignments if not shard]
        assert empties  # more shards than work
        index = manifest.assignments.index(empties[0])
        sweep = run_shard(manifest, index, shard_directory(str(tmp_path), index))
        assert len(sweep) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            plan_shards(small_matrix(), 0)

    def test_default_cost_model_matches_committed_bench_report(self):
        # The defaults are documented as "the committed BENCH_hotloop.json
        # numbers"; regenerating the benchmark must not silently
        # desynchronise them from what the planner actually uses.
        path = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_hotloop.json"
        )
        from_report = CostModel.from_bench_file(path)
        default = CostModel()
        assert default.cell_s_per_sim_s == pytest.approx(
            from_report.cell_s_per_sim_s
        )
        assert default.train_s_per_sim_s == pytest.approx(
            from_report.train_s_per_sim_s
        )

    def test_bench_report_derived_cost_model(self, tmp_path):
        report = {
            "after": {
                "sweep_cell_wall_s": 0.008,
                "cold_train_sim_s_per_wall_s": 250.0,
            }
        }
        path = tmp_path / "BENCH_hotloop.json"
        path.write_text(json.dumps(report))
        model = CostModel.from_bench_file(str(path))
        assert model.cell_s_per_sim_s == pytest.approx(0.002)
        assert model.train_s_per_sim_s == pytest.approx(0.004)

    def test_wrong_shaped_bench_report_is_rejected(self, tmp_path):
        # A silently defaulted cost model would record another machine's
        # numbers in the manifest as if they were calibrated.
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"after": {"sweep_cell_wall_ms": 8}}))
        with pytest.raises(ValueError, match="missing 'after' key"):
            CostModel.from_bench_file(str(path))
        # Structurally wrong documents get the same curated error, not a
        # raw AttributeError the CLI's handler would not catch.
        for payload in ({"after": None}, [1, 2, 3]):
            path.write_text(json.dumps(payload))
            with pytest.raises(ValueError, match="missing 'after' key"):
                CostModel.from_bench_file(str(path))


# ---------------------------------------------------------------------------
# Manifest round trip
# ---------------------------------------------------------------------------

class TestManifest:
    def test_save_load_round_trip(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        path = str(tmp_path / MANIFEST_FILENAME)
        manifest.save(path)
        loaded = ShardManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.matrix_fingerprint == manifest.matrix_fingerprint

    def test_edited_matrix_is_rejected(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        data = manifest.to_dict()
        data["matrix"]["seeds"] = [7]
        path = tmp_path / MANIFEST_FILENAME
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="fingerprint"):
            ShardManifest.load(str(path))

    def test_double_assignment_is_rejected(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        data = manifest.to_dict()
        data["assignments"][0]["cells"].append(data["assignments"][1]["cells"][0])
        path = tmp_path / MANIFEST_FILENAME
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="several shards"):
            ShardManifest.load(str(path))

    def test_schema_version_gate(self, tmp_path):
        data = plan_shards(small_matrix(), 2).to_dict()
        data["manifest_schema_version"] = 99
        path = tmp_path / MANIFEST_FILENAME
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            ShardManifest.load(str(path))


# ---------------------------------------------------------------------------
# Merge semantics: the bit-identity contract
# ---------------------------------------------------------------------------

class TestMergeParity:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_equals_unsharded_pool_run(
        self, tmp_path, shards, trained_reference
    ):
        matrix, reference = trained_reference
        manifest = plan_shards(matrix, shards)
        base = str(tmp_path)
        run_all_shards(manifest, base)
        merged, counters = merge_shards(
            manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
        )
        assert cell_hashes(merged) == reference
        assert counters["results"] == len(matrix.cells())
        # Exactly one shard trained the agent artifact and one the fleet.
        assert counters["artifacts"] >= 1 and counters["fleets"] == 1
        assert counters["duplicates"] == 0
        # Results come back in the matrix's pre-registered order.
        assert [r.cell.fingerprint() for r in merged.results] == [
            c.fingerprint() for c in matrix.cells()
        ]

    def test_merged_summaries_equal_not_just_hashes(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)
        run_all_shards(manifest, base)
        merged, _ = merge_shards(
            manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
        )
        reference = SweepRunner(max_workers=1).run(matrix)
        for cell in matrix.cells():
            assert (
                merged.result_for(cell).summary == reference.result_for(cell).summary
            )

    def test_interrupted_shard_resumes_from_its_cache(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)

        class Interrupt(Exception):
            pass

        def bomb(done, total, result):
            raise Interrupt  # simulate a kill after the first cell completed

        with pytest.raises(Interrupt):
            run_shard(manifest, 0, shard_directory(base, 0), progress=bomb)
        status = shard_status(manifest, 0, shard_directory(base, 0))
        assert status.state == "partial"
        assert 0 < status.completed < status.total
        assert 0 < status.remaining_s < manifest.shard_cost_s(0)

        resumed = run_shard(manifest, 0, shard_directory(base, 0))
        assert resumed.cached_count == status.completed  # restart re-ran nothing
        run_shard(manifest, 1, shard_directory(base, 1))
        merged, _ = merge_shards(
            manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
        )
        assert cell_hashes(merged) == cell_hashes(SweepRunner().run(matrix))

    def test_remaining_cost_tracks_outstanding_and_cached_hits(self):
        """ETA accounting: outstanding cells and cached-hit deduction.

        The CLI's ETA divides ``remaining_s`` by the *effective* parallelism
        ``min(workers, outstanding)``: once fewer cells than workers remain,
        the tail runs at the lower width, and a plain ``remaining / workers``
        would claim a 4-worker pool finishes one long training cell 4x
        faster than physically possible.  Cached hits arrive with
        ``ok=True`` and must deduct like any completed cell.
        """
        cells = small_matrix().cells()
        costs = {cell.fingerprint(): 10.0 for cell in cells[:3]}
        costs[cells[3].fingerprint()] = 70.0
        tracker = RemainingCost(costs)
        assert tracker.outstanding == 4
        assert tracker.remaining_s == 100.0

        # A cached hit is a first delivery with ok=True: deducts and counts.
        assert tracker.deliver(
            CellResult(cell=cells[0], status="ok", summary={}, from_cache=True)
        )
        assert tracker.outstanding == 3
        assert tracker.remaining_s == 90.0

        # A failed cell is no longer runnable now, but its work is still
        # owed (errors are never cached, so a re-run retries it).
        assert tracker.deliver(CellResult(cell=cells[1], status="error"))
        assert tracker.outstanding == 2
        assert tracker.remaining_s == 90.0

        # Duplicate-fingerprint expansions deliver twice; priced once.
        assert not tracker.deliver(
            CellResult(cell=cells[0], status="ok", summary={})
        )
        assert tracker.outstanding == 2
        assert tracker.remaining_s == 90.0

        tracker.deliver(CellResult(cell=cells[2], status="ok", summary={}))
        # Only the 70 s cell is left: with 4 workers the effective
        # parallelism is 1, so the ETA is the full 70 s -- not 70 / 4.
        assert tracker.outstanding == 1
        workers = 4
        eta = tracker.remaining_s / max(1, min(workers, tracker.outstanding))
        assert eta == 80.0  # 70 s outstanding + 10 s owed by the failure

    def test_progress_printer_eta_clamps_to_outstanding(self, capsys):
        """The printed ETA uses effective parallelism, not the worker count."""
        cells = small_matrix().cells()
        costs = {cell.fingerprint(): 10.0 for cell in cells[:3]}
        costs[cells[3].fingerprint()] = 70.0
        progress = cli._progress_printer(
            False, cli._progress_tracker(costs, workers=4)
        )
        for done, cell in enumerate(cells[:2], start=1):
            progress(done, 4, CellResult(cell=cell, status="ok", summary={}))
        out = capsys.readouterr().out
        # 2 delivered: 80 s over 2 outstanding cells -> ~40 s, never ~20 s
        # (remaining / workers) and not yet the single-cell tail.
        assert "~40.0s left" in out.strip().splitlines()[-1]
        progress(3, 4, CellResult(cell=cells[2], status="ok", summary={}))
        # Only the 70 s cell is outstanding now: the ETA must be the full
        # 70 s, not 70 / 4.
        assert "~70.0s left" in capsys.readouterr().out.strip().splitlines()[-1]

    def test_keyboard_interrupt_flushes_status_and_resumes(self, tmp_path):
        """Ctrl-C mid-shard leaves an honest status file and a resumable cache.

        A ``KeyboardInterrupt`` raised after the first cell delivers must (a)
        propagate -- the worker exits nonzero rather than swallowing the
        signal -- (b) flush ``shard-status.json`` atomically with
        ``state == "interrupted"`` and the true progress counters, and (c)
        cost nothing on resume: re-running the same shard serves the
        completed cells from its cache.
        """
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        shard_dir = shard_directory(str(tmp_path), 0)

        def bomb(done, total, result):
            raise KeyboardInterrupt  # Ctrl-C lands after the first cell

        with pytest.raises(KeyboardInterrupt):
            run_shard(manifest, 0, shard_dir, progress=bomb)
        with open(
            os.path.join(shard_dir, "shard-status.json"), encoding="utf-8"
        ) as handle:
            status = json.load(handle)
        assert status["state"] == "interrupted"
        assert status["completed"] == 1
        assert status["failed"] == 0
        assert 0 < status["estimated_remaining_s"] < manifest.shard_cost_s(0)

        resumed = run_shard(manifest, 0, shard_dir)
        assert not resumed.failures
        assert resumed.cached_count == status["completed"]

    def test_cli_maps_keyboard_interrupt_to_exit_130(self, monkeypatch, capsys):
        """``main`` turns Ctrl-C into exit 130 plus a how-to-resume hint."""

        def interrupted(argv):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_run", interrupted)
        assert cli.main(["run", "--matrix", "smoke"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "re-running the same command" in err

    def test_missing_shard_fails_unless_allowed(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)
        run_shard(manifest, 0, shard_directory(base, 0))
        with pytest.raises(ShardMergeError, match="missing"):
            merge_shards(
                manifest, shard_dirs(manifest, base), os.path.join(base, "m1")
            )
        partial, _ = merge_shards(
            manifest,
            shard_dirs(manifest, base),
            os.path.join(base, "m2"),
            require_complete=False,
        )
        assert 0 < len(partial) < len(matrix.cells())


class TestMergeConflicts:
    def _two_run_shards(self, tmp_path):
        matrix = small_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)
        run_all_shards(manifest, base)
        return manifest, base

    def test_byte_identical_overlap_merges_cleanly(self, tmp_path):
        manifest, base = self._two_run_shards(tmp_path)
        # Ship shard 0's whole cache into shard 1 as well: a full overlap.
        source = shard_cache_dir(shard_directory(base, 0))
        target = shard_cache_dir(shard_directory(base, 1))
        for name in sorted(os.listdir(source)):
            path = os.path.join(source, name)
            if os.path.isfile(path):
                with open(path, "rb") as handle:
                    payload = handle.read()
                with open(os.path.join(target, name), "wb") as handle:
                    handle.write(payload)
        merged, counters = merge_shards(
            manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
        )
        assert counters["duplicates"] == len(manifest.assignments[0])
        assert cell_hashes(merged) == cell_hashes(
            SweepRunner().run(manifest.matrix)
        )

    def test_wall_clock_only_divergence_merges_cleanly(self, tmp_path):
        manifest, base = self._two_run_shards(tmp_path)
        source = shard_cache_dir(shard_directory(base, 0))
        target = shard_cache_dir(shard_directory(base, 1))
        name = sorted(
            n for n in os.listdir(source)
            if n.endswith(".json") and os.path.isfile(os.path.join(source, n))
        )[0]
        data = json.loads(open(os.path.join(source, name)).read())
        data["elapsed_s"] = data.get("elapsed_s", 0.0) + 123.0  # other machine
        with open(os.path.join(target, name), "w") as handle:
            json.dump(data, handle)
        _, counters = merge_shards(
            manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
        )
        assert counters["duplicates"] == 1

    def test_divergent_entry_fails_with_a_clear_error(self, tmp_path):
        manifest, base = self._two_run_shards(tmp_path)
        source = shard_cache_dir(shard_directory(base, 0))
        target = shard_cache_dir(shard_directory(base, 1))
        name = sorted(
            n for n in os.listdir(source)
            if n.endswith(".json") and os.path.isfile(os.path.join(source, n))
        )[0]
        data = json.loads(open(os.path.join(source, name)).read())
        data["summary"]["average_power_w"] += 1.0  # actual content divergence
        with open(os.path.join(target, name), "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ShardMergeError, match="diverges between"):
            merge_shards(
                manifest, shard_dirs(manifest, base), os.path.join(base, "merged")
            )

    def test_divergent_artifact_fails(self, tmp_path):
        matrix = trained_matrix()
        manifest = plan_shards(matrix, 2)
        base = str(tmp_path)
        run_all_shards(manifest, base)
        # Find the shard holding the agent artifact and plant a divergent
        # copy of it in the other shard's store.
        stores = [
            os.path.join(shard_cache_dir(shard_directory(base, i)), "artifacts")
            for i in range(2)
        ]
        agents = [
            sorted(
                n for n in (os.listdir(s) if os.path.isdir(s) else [])
                if n.endswith(".agent.json")
            )
            for s in stores
        ]
        holder = 0 if agents[0] else 1
        other = 1 - holder
        name = agents[holder][0]
        data = json.loads(open(os.path.join(stores[holder], name)).read())
        data["agent_state"]["seed"] = 999  # diverging trained state
        os.makedirs(stores[other], exist_ok=True)
        with open(os.path.join(stores[other], name), "w") as handle:
            json.dump(data, handle)
        with pytest.raises(ShardMergeError, match="artifact"):
            merge_shard_stores(
                [shard_cache_dir(shard_directory(base, i)) for i in range(2)],
                os.path.join(base, "merged"),
            )

    def test_merge_is_idempotent(self, tmp_path):
        manifest, base = self._two_run_shards(tmp_path)
        dest = os.path.join(base, "merged")
        first, counters1 = merge_shards(manifest, shard_dirs(manifest, base), dest)
        second, counters2 = merge_shards(manifest, shard_dirs(manifest, base), dest)
        assert counters1["results"] == len(manifest.matrix.cells())
        assert counters2["results"] == 0
        assert counters2["duplicates"] == len(manifest.matrix.cells())
        assert cell_hashes(first) == cell_hashes(second)

    def test_torn_source_entry_is_quarantined_not_fatal(self, tmp_path):
        # A truncated shard entry (worker killed mid-copy) must not abort
        # the merge: it is quarantined as .bad and surfaces as a *missing*
        # cell, which re-running that shard repairs.
        manifest, base = self._two_run_shards(tmp_path)
        victim_fp = manifest.assignments[0][0]
        victim = os.path.join(
            shard_cache_dir(shard_directory(base, 0)), f"{victim_fp}.json"
        )
        with open(victim, "w") as handle:
            handle.write('{"cell": {"gov')
        dest = os.path.join(base, "merged")
        counters = merge_shard_stores(
            [shard_cache_dir(shard_directory(base, i)) for i in range(2)], dest
        )
        assert counters["quarantined"] == 1
        assert os.path.exists(f"{victim}.bad") and not os.path.exists(victim)
        with pytest.raises(ShardMergeError, match="missing"):
            load_merged_result(manifest, dest)
        # Resume the damaged shard: only the quarantined cell recomputes,
        # and the repeated merge completes with full parity.
        rerun = run_shard(manifest, 0, shard_directory(base, 0))
        assert [r.cell.fingerprint() for r in rerun.results if not r.from_cache] == [
            victim_fp
        ]
        merged, _ = merge_shards(manifest, shard_dirs(manifest, base), dest)
        assert cell_hashes(merged) == cell_hashes(SweepRunner().run(manifest.matrix))

    def test_interrupted_merge_resumes_and_repairs_torn_destination(
        self, tmp_path
    ):
        # Model a merge interrupted partway: only shard 0 landed, and one
        # already-merged entry was torn (non-atomic destination filesystem).
        # Re-running the full merge must quarantine the torn copy, recopy
        # the parseable source and reconstruct the complete sweep.
        manifest, base = self._two_run_shards(tmp_path)
        dest = os.path.join(base, "merged")
        caches = [shard_cache_dir(shard_directory(base, i)) for i in range(2)]
        merge_shard_stores(caches[:1], dest)  # partial: interrupted after shard 0
        torn = os.path.join(dest, f"{manifest.assignments[0][0]}.json")
        with open(torn, "w") as handle:
            handle.write('{"cell": {"gov')
        merged, counters = merge_shards(manifest, shard_dirs(manifest, base), dest)
        # The torn *destination* is quarantined as evidence and replaced by
        # the parseable source, so it tallies as a copy, not a loss.
        assert os.path.exists(f"{torn}.bad") and os.path.exists(torn)
        assert counters["quarantined"] == 0
        assert counters["results"] == 1 + len(manifest.assignments[1])
        assert counters["duplicates"] == len(manifest.assignments[0]) - 1
        assert cell_hashes(merged) == cell_hashes(SweepRunner().run(manifest.matrix))


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------

class TestShardStatus:
    def test_status_lifecycle(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        base = str(tmp_path)
        before = shard_status(manifest, 0, shard_directory(base, 0))
        assert before.state == "pending"
        assert before.completed == 0
        assert before.remaining_s == pytest.approx(manifest.shard_cost_s(0))
        run_shard(manifest, 0, shard_directory(base, 0))
        after = shard_status(manifest, 0, shard_directory(base, 0))
        assert after.state == "complete"
        assert after.completed == after.total
        assert after.remaining_s == 0.0

    def test_failed_cells_leave_the_shard_marked_failed_with_work_left(
        self, tmp_path, monkeypatch
    ):
        # Error results are never cached, so a shard with failures must not
        # report itself complete with nothing left to do.
        import repro.experiments.runner as runner_module

        matrix = small_matrix()
        manifest = plan_shards(matrix, 1)
        real = runner_module.make_governor

        # Injected where scalar and batch-kernel cell paths meet, so the
        # crash fires whichever route executes the cells.
        def crash_on_powersave(name, **kwargs):
            if name == "powersave":
                raise RuntimeError("boom")
            return real(name, **kwargs)

        monkeypatch.setattr(runner_module, "make_governor", crash_on_powersave)
        shard_dir = shard_directory(str(tmp_path), 0)
        sweep = run_shard(manifest, 0, shard_dir)
        assert len(sweep.failures) == 2
        data = json.loads(open(os.path.join(shard_dir, "shard-status.json")).read())
        assert data["state"] == "failed"
        assert data["failed"] == 2
        assert data["estimated_remaining_s"] > 0.0  # failed cells still owed
        status = shard_status(manifest, 0, shard_dir)
        assert status.state == "failed"
        assert status.completed == 2 and status.failed == 2
        assert status.remaining_s > 0.0
        # Once "fixed", re-running the shard retries exactly the failures
        # and the shard flips to complete.
        monkeypatch.undo()
        rerun = run_shard(manifest, 0, shard_dir)
        assert not rerun.failures and rerun.cached_count == 2
        assert shard_status(manifest, 0, shard_dir).state == "complete"

    def test_duplicate_fingerprint_cells_count_once_in_the_status_file(
        self, tmp_path
    ):
        # Two cold variants differing only in display key expand to cells
        # sharing one fingerprint; the status file accounts distinct cells.
        matrix = ScenarioMatrix.build(
            name="dupes",
            governors=("schedutil", "next"),
            apps=("facebook",),
            seeds=(0,),
            duration_s=3.0,
            training=({"key": "a", "mode": "cold"}, {"key": "b", "mode": "cold"}),
        )
        assert len(matrix.cells()) == 3  # next delivers twice, schedutil once
        manifest = plan_shards(matrix, 1)
        assert len(manifest.assignments[0]) == 2  # distinct fingerprints
        shard_dir = shard_directory(str(tmp_path), 0)
        sweep = run_shard(manifest, 0, shard_dir)
        assert len(sweep) == 3 and not sweep.failures
        data = json.loads(open(os.path.join(shard_dir, "shard-status.json")).read())
        assert data["completed"] == data["total"] == 2
        assert shard_status(manifest, 0, shard_dir).state == "complete"

    def test_stale_format_entries_keep_status_and_merge_in_agreement(
        self, tmp_path
    ):
        # Entries a merge would reject (pre-upgrade summaries without
        # sample_stream_hash) must not let status call the shard complete.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        run_shard(manifest, 0, shard_dir)
        cache_dir = shard_cache_dir(shard_dir)
        victim = os.path.join(cache_dir, f"{manifest.assignments[0][0]}.json")
        data = json.loads(open(victim).read())
        del data["summary"]["sample_stream_hash"]
        with open(victim, "w") as handle:
            json.dump(data, handle)
        status = shard_status(manifest, 0, shard_dir)
        assert status.state == "partial"
        assert status.completed == status.total - 1

    def test_status_of_an_unstarted_shard_creates_nothing(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        shard_dir = shard_directory(str(tmp_path), 0)
        status = shard_status(manifest, 0, shard_dir)
        assert status.state == "pending" and status.completed == 0
        assert not os.path.exists(shard_dir)  # read-only query leaves no trace

    def test_torn_cache_entry_does_not_count_as_done(self, tmp_path):
        # A truncated entry (scp mid-write) must not let status report a
        # cell done that the merge would then quarantine as missing.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        run_shard(manifest, 0, shard_dir)
        victim = os.path.join(
            shard_cache_dir(shard_dir), f"{manifest.assignments[0][0]}.json"
        )
        with open(victim, "w") as handle:
            handle.write('{"cell": {"gov')
        status = shard_status(manifest, 0, shard_dir)
        assert status.completed == status.total - 1
        assert status.state == "partial"
        assert status.remaining_s > 0.0
        # Status is strictly read-only: the torn file might still be
        # mid-copy, so it is not quarantined (the runner/merge will).
        assert os.path.exists(victim)
        assert not os.path.exists(f"{victim}.bad")

    def test_status_file_written_atomically_and_versioned(self, tmp_path):
        manifest = plan_shards(small_matrix(), 2)
        shard_dir = shard_directory(str(tmp_path), 1)
        run_shard(manifest, 1, shard_dir)
        data = json.loads(open(os.path.join(shard_dir, "shard-status.json")).read())
        assert data["state"] == "complete"
        assert data["matrix_fingerprint"] == manifest.matrix_fingerprint
        assert data["completed"] == data["total"] == len(manifest.assignments[1])


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------

class TestShardLiveness:
    def _running_status(self, manifest, shard_dir, **overrides):
        """Hand-write a worker status file claiming the shard is running."""
        payload = {
            "status_schema_version": 1,
            "matrix_fingerprint": manifest.matrix_fingerprint,
            "shard": 0,
            "state": "running",
            "total": len(manifest.assignments[0]),
            "completed": 0,
            "cached": 0,
            "failed": 0,
            "attempts": 0,
            "heartbeat_unix_s": wall_now(),
            "estimated_remaining_s": manifest.shard_cost_s(0),
            "estimated_total_s": manifest.shard_cost_s(0),
        }
        payload.update(overrides)
        payload = {k: v for k, v in payload.items() if v is not None}
        os.makedirs(shard_dir, exist_ok=True)
        with open(os.path.join(shard_dir, "shard-status.json"), "w") as handle:
            json.dump(payload, handle)

    def test_status_file_carries_heartbeat_and_attempt_count(self, tmp_path):
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        run_shard(manifest, 0, shard_dir)
        data = json.loads(open(os.path.join(shard_dir, "shard-status.json")).read())
        assert isinstance(data["heartbeat_unix_s"], float)
        assert data["attempts"] == 0  # fault-free run: no retries spent
        status = shard_status(manifest, 0, shard_dir, stale_after_s=3600.0)
        assert status.heartbeat_age_s is not None
        assert 0.0 <= status.heartbeat_age_s < 3600.0
        assert status.attempts == 0 and not status.stale

    def test_retries_surface_in_the_status_attempt_counter(self, tmp_path):
        # Every cell's first attempt fails transiently (the batch rule
        # forces the scalar path so the per-cell rule reaches each cell);
        # the shard still completes and the retries it spent are visible to
        # the planning host through the status file.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        plan = FaultPlan(
            seed=21,
            rules=(
                FaultRule(
                    site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT, max_attempt=99
                ),
                FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_TRANSIENT),
            ),
        )
        with injected_faults(plan):
            sweep = run_shard(
                manifest,
                0,
                shard_dir,
                retry_policy=RetryPolicy(max_retries=2),
            )
        assert not sweep.failures
        status = shard_status(manifest, 0, shard_dir)
        assert status.state == "complete"
        assert status.attempts >= len(manifest.assignments[0])

    def test_stale_running_shard_is_flagged(self, tmp_path):
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        self._running_status(
            manifest, shard_dir, heartbeat_unix_s=wall_now() - 500.0, attempts=3
        )
        status = shard_status(manifest, 0, shard_dir, stale_after_s=60.0)
        assert status.stale
        assert status.heartbeat_age_s == pytest.approx(500.0, abs=30.0)
        assert status.attempts == 3
        # A wide-enough window, or no window at all, keeps it live.
        assert not shard_status(manifest, 0, shard_dir, stale_after_s=3600.0).stale
        assert not shard_status(manifest, 0, shard_dir).stale

    def test_running_status_without_heartbeat_counts_as_stale(self, tmp_path):
        # Pre-liveness status files have no heartbeat: once a window is
        # given, "running" with nothing to prove it counts as dead.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        self._running_status(manifest, shard_dir, heartbeat_unix_s=None)
        status = shard_status(manifest, 0, shard_dir, stale_after_s=60.0)
        assert status.stale and status.heartbeat_age_s is None
        assert not shard_status(manifest, 0, shard_dir).stale

    def test_complete_cache_is_never_stale(self, tmp_path):
        # The cache outranks the heartbeat: a finished shard is done no
        # matter how old its status file claims to be.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        run_shard(manifest, 0, shard_dir)
        self._running_status(
            manifest, shard_dir, heartbeat_unix_s=wall_now() - 9999.0
        )
        status = shard_status(manifest, 0, shard_dir, stale_after_s=60.0)
        assert status.state == "complete"
        assert not status.stale

    def test_crash_during_status_write_is_recoverable(self, tmp_path):
        # A worker dying mid-status-write (satellite of the torn-write
        # seam): the atomic write crashes after staging, leaving only
        # ``.tmp`` debris -- no half-written status file -- and a restarted
        # worker resumes from its cache and publishes a clean status.
        manifest = plan_shards(small_matrix(), 1)
        shard_dir = shard_directory(str(tmp_path), 0)
        plan = FaultPlan(
            seed=22,
            rules=(
                FaultRule(
                    site=SITE_ATOMIC_WRITE_STAGED,
                    kind=KIND_CRASH,
                    match="shard-status.json",
                    max_fires=1,
                ),
            ),
        )
        with injected_faults(plan):
            with pytest.raises(InjectedCrashError):
                run_shard(manifest, 0, shard_dir)
            status_path = os.path.join(shard_dir, "shard-status.json")
            assert not os.path.exists(status_path)
            assert any(".tmp." in name for name in os.listdir(shard_dir))
            # Restart under the same (spent) plan: resumes and completes.
            sweep = run_shard(manifest, 0, shard_dir)
        assert not sweep.failures
        data = json.loads(open(status_path).read())
        assert data["state"] == "complete"
        assert shard_status(manifest, 0, shard_dir).state == "complete"
        assert cell_hashes(sweep) == cell_hashes(
            SweepRunner().run(manifest.matrix)
        )


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------

class TestShardCli:
    def _spec_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(small_matrix().to_dict()))
        return str(path)

    def test_plan_run_status_merge_round_trip(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        plan_dir = str(tmp_path / "plan")
        os.makedirs(plan_dir)
        manifest_path = os.path.join(plan_dir, MANIFEST_FILENAME)

        assert cli.main(
            ["shard", "plan", "--spec", spec, "--shards", "2", "--plan-dir", plan_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "Planned 2 shard(s)" in out and "shard-manifest.json" in out
        assert os.path.exists(manifest_path)

        for index in ("0", "1"):
            assert cli.main(
                ["shard", "run", "--manifest", manifest_path, "--shard-index", index]
            ) == 0
            out = capsys.readouterr().out
            assert "0 failed" in out and "left)" in out

        assert cli.main(["shard", "status", "--manifest", manifest_path]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "~0.0s left" in out

        merged_dir = str(tmp_path / "merged")
        assert cli.main(
            [
                "shard", "merge", "--manifest", manifest_path,
                "--cache-dir", merged_dir,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "4/4 cells ok" in out
        assert "identical duplicates skipped" in out
        # The merged cache must serve a plain single-machine re-run fully.
        merged = load_merged_result(ShardManifest.load(manifest_path), merged_dir)
        assert len(merged) == 4

    def test_merge_of_missing_shard_reports_error(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        plan_dir = str(tmp_path)
        manifest_path = os.path.join(plan_dir, MANIFEST_FILENAME)
        assert cli.main(
            ["shard", "plan", "--spec", spec, "--shards", "2", "--plan-dir", plan_dir]
        ) == 0
        assert cli.main(
            ["shard", "run", "--manifest", manifest_path, "--shard-index", "0"]
        ) == 0
        capsys.readouterr()
        assert cli.main(
            [
                "shard", "merge", "--manifest", manifest_path,
                "--cache-dir", str(tmp_path / "merged"),
            ]
        ) == 2
        assert "missing" in capsys.readouterr().err
        # --allow-missing requests exactly this preview: partial is success.
        assert cli.main(
            [
                "shard", "merge", "--manifest", manifest_path,
                "--cache-dir", str(tmp_path / "merged2"), "--allow-missing",
            ]
        ) == 0
        assert "partial merge" in capsys.readouterr().out

    def test_merge_accepts_a_subset_of_custom_shard_dirs(self, tmp_path, capsys):
        # A partial merge must work when only some shard directories have
        # been copied back to non-default locations.
        spec = self._spec_file(tmp_path)
        plan_dir = str(tmp_path)
        manifest_path = os.path.join(plan_dir, MANIFEST_FILENAME)
        assert cli.main(
            ["shard", "plan", "--spec", spec, "--shards", "2", "--plan-dir", plan_dir]
        ) == 0
        custom = str(tmp_path / "landed" / "first-shard")
        manifest = ShardManifest.load(manifest_path)
        sweep = run_shard(manifest, 0, custom)
        assert not sweep.failures
        capsys.readouterr()
        assert cli.main(
            [
                "shard", "merge", "--manifest", manifest_path,
                "--shard-dir", custom, "--allow-missing",
                "--cache-dir", str(tmp_path / "merged"),
            ]
        ) == 0  # the requested preview of the landed shard is a success
        out = capsys.readouterr().out
        assert "partial merge" in out

    def test_stale_cache_entry_without_stream_hash_recomputes(self, tmp_path):
        # A cache entry written before summaries carried sample_stream_hash
        # must be treated as a miss (same fingerprint, stale format), so
        # every served entry carries the merge-parity field.
        matrix = small_matrix()
        cell = matrix.cells()[0]
        runner = SweepRunner(max_workers=1, cache_dir=str(tmp_path))
        sweep = runner.run(matrix, cells=[cell])
        path = tmp_path / f"{cell.fingerprint()}.json"
        data = json.loads(path.read_text())
        del data["summary"]["sample_stream_hash"]  # simulate pre-upgrade entry
        path.write_text(json.dumps(data))
        rerun = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(
            matrix, cells=[cell]
        )
        assert rerun.cached_count == 0  # recomputed, not served stale
        assert (
            rerun.results[0].summary["sample_stream_hash"]
            == sweep.results[0].summary["sample_stream_hash"]
        )
        again = SweepRunner(max_workers=1, cache_dir=str(tmp_path)).run(
            matrix, cells=[cell]
        )
        assert again.cached_count == 1  # rewritten entry serves with the hash

    def test_plan_requires_a_matrix(self, capsys):
        assert cli.main(["shard", "plan", "--shards", "2"]) == 2
        assert "matrix name or --spec" in capsys.readouterr().err

    def test_merge_rejects_ambiguous_baseline_before_touching_shards(
        self, tmp_path, capsys
    ):
        # Same preflight as the plain run path: a baseline spanning several
        # training variants must fail with the curated message up front.
        spec = {
            "name": "ambiguous",
            "governors": ["schedutil", "next"],
            "workloads": ["facebook"],
            "duration_s": 3.0,
            "training": [
                {"mode": "cold"},
                {"key": "pretrained", "mode": "pretrained", "episodes": 1,
                 "episode_duration_s": 3.0},
            ],
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        plan_dir = str(tmp_path)
        manifest_path = os.path.join(plan_dir, MANIFEST_FILENAME)
        assert cli.main(
            ["shard", "plan", "--spec", str(path), "--shards", "2",
             "--plan-dir", plan_dir]
        ) == 0
        capsys.readouterr()
        assert cli.main(
            ["shard", "merge", "--manifest", manifest_path, "--baseline", "next",
             "--cache-dir", str(tmp_path / "merged")]
        ) == 2
        err = capsys.readouterr().err
        assert "training variants" in err and "ambiguous" in err
        assert not os.path.exists(str(tmp_path / "merged"))

    def test_plain_run_prints_cost_model_eta(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        assert cli.main(["--spec", spec]) == 0
        out = capsys.readouterr().out
        assert "estimated ~" in out  # upfront total from the cost model
        assert "left)" in out  # per-cell remaining-time readout
