"""Unit tests for the Q-table store and the tabular Q-learning core."""

import random
from pathlib import Path

import pytest

from repro.core.qlearning import QLearningConfig, QLearningCore
from repro.core.qtable import (
    QTable,
    QTableStore,
    _decode_state,
    _encode_state,
    escape_app_name,
    unescape_app_name,
)


# ---------------------------------------------------------------------------
# QTable
# ---------------------------------------------------------------------------

class TestQTable:
    def test_lazy_rows_use_initial_q(self):
        table = QTable(action_count=3, initial_q=0.7)
        assert table.values("s") == [0.7, 0.7, 0.7]
        assert "s" in table
        assert len(table) == 1

    def test_set_and_get(self):
        table = QTable(action_count=2)
        table.set("s", 1, 3.5)
        assert table.get("s", 1) == 3.5
        assert table.get("s", 0) == 0.0
        assert table.visits("s") == 1
        assert table.total_visits() == 1

    def test_merge_blends_common_states(self):
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        a.set("s", 0, 1.0)
        b.set("s", 0, 3.0)
        b.set("only_b", 1, 5.0)
        a.merge(b, weight=0.5)
        assert a.get("s", 0) == pytest.approx(2.0)
        assert a.get("only_b", 1) == pytest.approx(5.0)

    def test_merge_validation(self):
        a = QTable(action_count=2)
        b = QTable(action_count=3)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            a.merge(QTable(action_count=2), weight=2.0)

    def test_merge_accumulates_visit_counts(self):
        # Visit accounting drives is_trained(); a merge must add the other
        # table's experience for both common and copied states.
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        a.set("both", 0, 1.0)
        a.set("both", 1, 1.0)
        b.set("both", 0, 3.0)
        b.set("only_b", 1, 5.0)
        b.set("only_b", 1, 6.0)
        a.merge(b, weight=0.5)
        assert a.visits("both") == 3  # 2 of ours + 1 of theirs
        assert a.visits("only_b") == 2  # copied states keep their visits
        assert a.total_visits() == 5

    def test_merge_into_unvisited_lazy_row(self):
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        a.values("lazy")  # row exists but was never updated
        b.set("lazy", 0, 4.0)
        a.merge(b, weight=1.0)
        assert a.get("lazy", 0) == pytest.approx(4.0)
        assert a.visits("lazy") == 1

    def test_serialisation_round_trip_with_tuple_states(self):
        table = QTable(action_count=4, initial_q=0.1)
        table.set((1, 2, 3), 2, -1.5)
        table.set((0, 0, 0), 0, 2.25)
        restored = QTable.from_dict(table.to_dict())
        assert restored.get((1, 2, 3), 2) == -1.5
        assert restored.get((0, 0, 0), 0) == 2.25
        assert restored.visits((1, 2, 3)) == 1
        assert restored.action_count == 4

    def test_rejects_invalid_action_count(self):
        with pytest.raises(ValueError):
            QTable(action_count=0)


class TestStateEncoding:
    @pytest.mark.parametrize(
        "state",
        [
            (1, 2, 3),
            (),
            (0,),
            (-1, 0, 7, 42),
            "plain-string",
            5,
            ("mixed", 1, 2.5),
        ],
    )
    def test_encode_decode_round_trip(self, state):
        assert _decode_state(_encode_state(state)) == state

    def test_tuple_and_list_like_strings_stay_distinct(self):
        # A string that *looks* like an encoded tuple must not collide with
        # the actual tuple after a round trip.
        tuple_key = _encode_state((1, 2))
        string_key = _encode_state("[1, 2]")
        assert tuple_key != string_key
        assert _decode_state(tuple_key) == (1, 2)
        assert _decode_state(string_key) == "[1, 2]"


class TestAppNameEscaping:
    @pytest.mark.parametrize(
        "app_name",
        [
            "facebook",
            "com.example/app",
            "../../etc/passwd",
            "a b%20c",
            "trailing.",
            "..",
            "per%cent",
            "unicode-éü",
        ],
    )
    def test_round_trip(self, app_name):
        escaped = escape_app_name(app_name)
        assert "/" not in escaped
        assert unescape_app_name(escaped) == app_name

    def test_distinct_names_stay_distinct(self):
        # '%' is always encoded, so a name containing an escape sequence
        # cannot collide with the name it would decode to.
        assert escape_app_name("a/b") != escape_app_name("a%2Fb")


class TestQTableStore:
    def test_table_per_app(self):
        store = QTableStore(action_count=9)
        facebook = store.table_for("facebook")
        spotify = store.table_for("spotify")
        assert facebook is not spotify
        assert store.table_for("facebook") is facebook
        assert set(store.app_names()) == {"facebook", "spotify"}

    def test_is_trained_threshold(self):
        store = QTableStore(action_count=2)
        table = store.table_for("app")
        assert not store.is_trained("app", min_visits=3)
        for i in range(3):
            table.set(f"s{i}", 0, 1.0)
        assert store.is_trained("app", min_visits=3)

    def test_save_and_load(self, tmp_path):
        store = QTableStore(action_count=3, initial_q=0.5)
        store.table_for("pubg").set((1, 2), 1, 4.0)
        paths = store.save(str(tmp_path))
        assert len(paths) == 1
        loaded = QTableStore.load(str(tmp_path), action_count=3, initial_q=0.5)
        assert "pubg" in loaded
        assert loaded.table_for("pubg").get((1, 2), 1) == 4.0

    def test_load_missing_directory(self, tmp_path):
        loaded = QTableStore.load(str(tmp_path / "nope"), action_count=3)
        assert loaded.app_names() == []

    def test_save_and_load_path_unsafe_app_names(self, tmp_path):
        # Names with separators or traversal components must neither write
        # outside the directory nor collide, and must round-trip exactly.
        store = QTableStore(action_count=2)
        names = ["com.example/app", "../escape", "a/b", "a%2Fb", "plain"]
        for index, name in enumerate(names):
            store.table_for(name).set("s", 0, float(index))
        paths = store.save(str(tmp_path))
        assert len(paths) == len(names)
        for path in paths:
            assert Path(path).parent == tmp_path
        loaded = QTableStore.load(str(tmp_path), action_count=2)
        assert sorted(loaded.app_names()) == sorted(names)
        for index, name in enumerate(names):
            assert loaded.table_for(name).get("s", 0) == float(index)

    def test_store_dict_round_trip(self):
        store = QTableStore(action_count=3, initial_q=0.5)
        store.table_for("facebook").set((1, 2), 1, 4.0)
        store.table_for("pubg").set((0, 0), 2, -1.0)
        rebuilt = QTableStore.from_dict(store.to_dict())
        assert rebuilt.app_names() == store.app_names()
        assert rebuilt.table_for("facebook").get((1, 2), 1) == 4.0
        assert rebuilt.table_for("pubg").visits((0, 0)) == 1
        assert rebuilt.initial_q == 0.5

    def test_set_table_validates_action_count(self):
        store = QTableStore(action_count=3)
        with pytest.raises(ValueError):
            store.set_table("x", QTable(action_count=5))

    def test_load_order_independent_of_filesystem_order(self, tmp_path, monkeypatch):
        # Regression (repro-lint REP003): load used to iterate os.listdir
        # unsorted, so store insertion order -- and any downstream
        # dict-iteration-order-dependent serialisation (to_dict/save JSON
        # bytes follow dict insertion order) -- depended on filesystem
        # enumeration order.  Loading the same directory under a reversed
        # enumeration must now produce byte-identical serialisations.
        import json

        import repro.core.qtable as qtable_module

        store = QTableStore(action_count=2)
        for index, name in enumerate(["zebra", "alpha", "mango", "kiwi"]):
            store.table_for(name).set("s", 0, float(index))
        store.save(str(tmp_path))

        forward = QTableStore.load(str(tmp_path), action_count=2)

        real_listdir = qtable_module.os.listdir
        monkeypatch.setattr(
            qtable_module.os,
            "listdir",
            lambda directory: list(reversed(real_listdir(directory))),
        )
        scrambled = QTableStore.load(str(tmp_path), action_count=2)
        monkeypatch.undo()

        assert json.dumps(scrambled.to_dict()) == json.dumps(forward.to_dict())
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        paths_a = forward.save(str(out_a))
        paths_b = scrambled.save(str(out_b))
        assert [Path(p).name for p in paths_a] == [Path(p).name for p in paths_b]
        for path_a, path_b in zip(paths_a, paths_b):
            assert Path(path_a).read_bytes() == Path(path_b).read_bytes()


# ---------------------------------------------------------------------------
# QLearningCore
# ---------------------------------------------------------------------------

class TestQLearningConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QLearningConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            QLearningConfig(discount=1.0)
        with pytest.raises(ValueError):
            QLearningConfig(epsilon_start=0.1, epsilon_min=0.5)
        with pytest.raises(ValueError):
            QLearningConfig(epsilon_decay=0.0)
        with pytest.raises(ValueError):
            QLearningConfig(exploration_hold_steps=0)


class TestQLearningCore:
    def test_update_matches_equation_three(self):
        config = QLearningConfig(learning_rate=0.5, discount=0.9, initial_q=0.0)
        core = QLearningCore(action_count=2, config=config, rng=random.Random(0))
        core.qtable.set("next", 0, 2.0)  # max_a Q(s', a) = 2.0
        core.qtable.set("s", 1, 1.0)
        new_value = core.update("s", 1, reward=0.5, next_state="next")
        # Q <- Q + alpha * (r - Q + gamma * max Q(s'))
        expected = 1.0 + 0.5 * (0.5 - 1.0 + 0.9 * 2.0)
        assert new_value == pytest.approx(expected)
        assert core.qtable.get("s", 1) == pytest.approx(expected)

    def test_epsilon_decays_towards_minimum(self):
        config = QLearningConfig(epsilon_start=0.5, epsilon_min=0.1, epsilon_decay=0.5)
        core = QLearningCore(action_count=2, config=config, rng=random.Random(0))
        for _ in range(20):
            core.update("s", 0, 1.0, "s")
        assert core.epsilon == pytest.approx(0.1)

    def test_epsilon_frozen_when_not_exploring(self):
        core = QLearningCore(action_count=2, rng=random.Random(0))
        core.set_exploration(False)
        start = core.epsilon
        core.update("s", 0, 1.0, "s")
        assert core.epsilon == start

    def test_greedy_action_picks_max(self):
        core = QLearningCore(action_count=3, rng=random.Random(0))
        core.qtable.set("s", 0, 0.1)
        core.qtable.set("s", 1, 0.9)
        core.qtable.set("s", 2, 0.5)
        assert core.greedy_action("s") == 1

    def test_exploitation_is_deterministic_given_table(self):
        core = QLearningCore(action_count=3, rng=random.Random(0))
        core.set_exploration(False)
        core.qtable.set("s", 2, 10.0)
        assert all(core.select_action("s") == 2 for _ in range(20))

    def test_exploration_hold_repeats_action(self):
        config = QLearningConfig(
            epsilon_start=1.0, epsilon_min=1.0, epsilon_decay=1.0, exploration_hold_steps=4
        )
        core = QLearningCore(action_count=5, config=config, rng=random.Random(1))
        actions = [core.select_action("s") for _ in range(4)]
        assert len(set(actions)) == 1

    def test_learns_simple_bandit(self):
        # Action 1 always pays 1.0, action 0 pays 0.0: greedy must find action 1.
        config = QLearningConfig(
            learning_rate=0.3, discount=0.0, epsilon_start=1.0, epsilon_min=1.0,
            epsilon_decay=1.0, initial_q=0.0, exploration_hold_steps=1
        )
        core = QLearningCore(action_count=2, config=config, rng=random.Random(3))
        for _ in range(200):
            action = core.select_action("s")
            reward = 1.0 if action == 1 else 0.0
            core.update("s", action, reward, "s")
        assert core.greedy_action("s") == 1

    def test_learns_chain_towards_goal(self):
        # States 0..4; action 0 moves left, action 1 moves right; reward only
        # at state 4.  Q-learning must learn to go right from every state.
        config = QLearningConfig(
            learning_rate=0.5, discount=0.9, epsilon_start=1.0, epsilon_min=1.0,
            epsilon_decay=1.0, initial_q=0.0, exploration_hold_steps=1
        )
        core = QLearningCore(action_count=2, config=config, rng=random.Random(0))
        for _ in range(300):
            state = 0
            for _step in range(20):
                action = core.select_action(state)
                next_state = max(0, min(4, state + (1 if action == 1 else -1)))
                reward = 1.0 if next_state == 4 else 0.0
                core.update(state, action, reward, next_state)
                state = next_state
                if state == 4:
                    break
        for state in range(4):
            assert core.greedy_action(state) == 1

    def test_diagnostics(self):
        core = QLearningCore(action_count=2, rng=random.Random(0))
        core.update("a", 0, 1.0, "b")
        assert core.update_count == 1
        assert set(core.visited_states()) >= {"a", "b"}
        snapshot = core.policy_snapshot()
        assert "a" in snapshot

    def test_invalid_action_index(self):
        core = QLearningCore(action_count=2)
        with pytest.raises(IndexError):
            core.update("s", 5, 1.0, "s")

    def test_mismatched_table_rejected(self):
        with pytest.raises(ValueError):
            QLearningCore(action_count=2, qtable=QTable(action_count=4))
