"""Unit tests for OPP tables, clusters and the Exynos 9810 platform spec."""

import pytest

from repro.soc.cluster import Cluster, ClusterKind, ClusterSpec
from repro.soc.frequency import FrequencyPoint, OppTable, interpolate_voltages
from repro.soc.platform import (
    EXYNOS9810_BIG_FREQUENCIES_MHZ,
    EXYNOS9810_GPU_FREQUENCIES_MHZ,
    EXYNOS9810_LITTLE_FREQUENCIES_MHZ,
    exynos9810,
    generic_two_cluster_soc,
)


# ---------------------------------------------------------------------------
# FrequencyPoint / voltage interpolation
# ---------------------------------------------------------------------------

class TestFrequencyPoint:
    def test_basic_properties(self):
        point = FrequencyPoint(frequency_mhz=1000.0, voltage_v=0.8)
        assert point.frequency_hz == pytest.approx(1e9)
        assert point.frequency_ghz == pytest.approx(1.0)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            FrequencyPoint(frequency_mhz=0.0, voltage_v=0.8)

    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError):
            FrequencyPoint(frequency_mhz=100.0, voltage_v=0.0)


class TestInterpolateVoltages:
    def test_endpoints(self):
        volts = interpolate_voltages([100.0, 200.0, 300.0], v_min=0.7, v_max=1.0)
        assert volts[0] == pytest.approx(0.7)
        assert volts[-1] == pytest.approx(1.0)

    def test_monotone_in_frequency(self):
        freqs = [100.0, 400.0, 800.0, 1600.0]
        volts = interpolate_voltages(freqs, v_min=0.6, v_max=1.1, curvature=1.4)
        assert volts == sorted(volts)

    def test_curvature_penalises_top_frequencies(self):
        freqs = [0.0 + f for f in (100.0, 550.0, 1000.0)]
        linear = interpolate_voltages(freqs, 0.7, 1.0, curvature=1.0)
        curved = interpolate_voltages(freqs, 0.7, 1.0, curvature=2.0)
        # Mid-frequency voltage is lower with curvature > 1.
        assert curved[1] < linear[1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            interpolate_voltages([100.0], v_min=-1.0, v_max=1.0)
        with pytest.raises(ValueError):
            interpolate_voltages([100.0], v_min=1.0, v_max=0.5)
        with pytest.raises(ValueError):
            interpolate_voltages([100.0], v_min=0.5, v_max=1.0, curvature=0.0)


# ---------------------------------------------------------------------------
# OppTable
# ---------------------------------------------------------------------------

@pytest.fixture
def table():
    return OppTable.from_frequencies([400.0, 800.0, 1200.0, 1600.0], v_min=0.7, v_max=1.0)


class TestOppTable:
    def test_sorted_ascending(self, table):
        assert table.frequencies_mhz == [400.0, 800.0, 1200.0, 1600.0]
        assert table.min_frequency_mhz == 400.0
        assert table.max_frequency_mhz == 1600.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OppTable(points=tuple())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            OppTable.from_frequencies([500.0, 500.0], v_min=0.7, v_max=1.0)

    def test_index_of_exact(self, table):
        assert table.index_of(800.0) == 1
        with pytest.raises(ValueError):
            table.index_of(900.0)

    def test_nearest_index(self, table):
        assert table.nearest_index(350.0) == 0
        assert table.nearest_index(900.0) == 1
        assert table.nearest_index(1100.0) == 2
        assert table.nearest_index(5000.0) == 3

    def test_floor_and_ceil(self, table):
        assert table.floor_index(1000.0) == 1
        assert table.ceil_index(1000.0) == 2
        # Below the lowest OPP the floor clamps to 0.
        assert table.floor_index(100.0) == 0
        # Above the highest OPP the ceiling clamps to the top.
        assert table.ceil_index(9999.0) == 3

    def test_step_clamps(self, table):
        assert table.step(0, -5) == 0
        assert table.step(3, 10) == 3
        assert table.step(1, 1) == 2

    def test_normalised_frequency(self, table):
        assert table.normalised_frequency(3) == pytest.approx(1.0)
        assert table.normalised_frequency(0) == pytest.approx(400.0 / 1600.0)

    def test_iteration_and_len(self, table):
        assert len(table) == 4
        assert [p.frequency_mhz for p in table] == table.frequencies_mhz


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------

@pytest.fixture
def cluster(table):
    spec = ClusterSpec(
        name="cpu",
        kind=ClusterKind.BIG_CPU,
        opp_table=table,
        core_count=4,
        capacitance_nf=0.5,
        perf_per_mhz=1.0,
    )
    return Cluster(spec)


class TestCluster:
    def test_starts_at_top_opp(self, cluster):
        assert cluster.current_frequency_mhz == 1600.0
        assert cluster.max_limit_frequency_mhz == 1600.0
        assert cluster.min_limit_frequency_mhz == 400.0

    def test_set_frequency_clamps_to_limits(self, cluster):
        cluster.set_max_limit_index(2)
        applied = cluster.set_frequency_index(3)
        assert applied == 2
        assert cluster.current_frequency_mhz == 1200.0

    def test_lowering_max_limit_pulls_down_current(self, cluster):
        cluster.set_frequency_index(3)
        cluster.set_max_limit_index(1)
        assert cluster.current_index == 1

    def test_raising_min_limit_pushes_up_current(self, cluster):
        cluster.set_frequency_index(0)
        cluster.set_min_limit_index(2)
        assert cluster.current_index == 2

    def test_limits_stay_consistent(self, cluster):
        cluster.set_max_limit_index(1)
        cluster.set_min_limit_index(3)  # above max -> clamped to max
        assert cluster.min_limit_index <= cluster.max_limit_index

    def test_set_max_limit_mhz_uses_floor(self, cluster):
        applied = cluster.set_max_limit_mhz(1000.0)
        assert applied == 800.0

    def test_reset_limits(self, cluster):
        cluster.set_max_limit_index(0)
        cluster.reset_limits()
        assert cluster.max_limit_index == 3
        assert cluster.min_limit_index == 0

    def test_utilisation_clamped(self, cluster):
        cluster.utilisation = 1.7
        assert cluster.utilisation == 1.0
        cluster.utilisation = -0.5
        assert cluster.utilisation == 0.0

    def test_capacity_scales_with_frequency(self, cluster):
        assert cluster.capacity_at_index(3) > cluster.capacity_at_index(0)
        assert cluster.max_capacity == cluster.capacity_at_index(3)

    def test_out_of_range_requests_are_clamped(self, cluster):
        assert cluster.set_frequency_index(99) == 3
        assert cluster.set_max_limit_index(-5) == 0


class TestClusterSpecValidation:
    def test_rejects_bad_core_count(self, table):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", kind=ClusterKind.GPU, opp_table=table, core_count=0)

    def test_rejects_bad_capacitance(self, table):
        with pytest.raises(ValueError):
            ClusterSpec(
                name="x", kind=ClusterKind.GPU, opp_table=table, capacitance_nf=0.0
            )

    def test_kind_is_cpu(self):
        assert ClusterKind.BIG_CPU.is_cpu
        assert ClusterKind.LITTLE_CPU.is_cpu
        assert not ClusterKind.GPU.is_cpu


# ---------------------------------------------------------------------------
# Platform specs
# ---------------------------------------------------------------------------

class TestExynos9810Platform:
    def test_has_three_clusters(self):
        platform = exynos9810()
        assert set(platform.cluster_names) == {"big", "little", "gpu"}

    def test_exact_frequency_tables_from_the_paper(self):
        platform = exynos9810()
        big = platform.cluster_specs["big"].opp_table
        little = platform.cluster_specs["little"].opp_table
        gpu = platform.cluster_specs["gpu"].opp_table
        assert len(big) == 18
        assert len(little) == 10
        assert len(gpu) == 6
        assert big.min_frequency_mhz == 650.0 and big.max_frequency_mhz == 2704.0
        assert little.min_frequency_mhz == 455.0 and little.max_frequency_mhz == 1794.0
        assert gpu.min_frequency_mhz == 260.0 and gpu.max_frequency_mhz == 572.0
        assert tuple(big.frequencies_mhz) == EXYNOS9810_BIG_FREQUENCIES_MHZ
        assert tuple(little.frequencies_mhz) == EXYNOS9810_LITTLE_FREQUENCIES_MHZ
        assert tuple(gpu.frequencies_mhz) == EXYNOS9810_GPU_FREQUENCIES_MHZ

    def test_cluster_kinds(self):
        platform = exynos9810()
        assert platform.cluster_specs["big"].kind is ClusterKind.BIG_CPU
        assert platform.cluster_specs["little"].kind is ClusterKind.LITTLE_CPU
        assert platform.cluster_specs["gpu"].kind is ClusterKind.GPU
        assert platform.cluster_of_kind(ClusterKind.BIG_CPU) == "big"
        assert platform.cluster_of_kind(ClusterKind.GPU) == "gpu"

    def test_every_cluster_has_a_thermal_node(self):
        platform = exynos9810()
        for name in platform.cluster_names:
            assert name in platform.thermal_nodes
        assert "device" in platform.thermal_nodes

    def test_build_clusters_returns_fresh_objects(self):
        platform = exynos9810()
        first = platform.build_clusters()
        second = platform.build_clusters()
        assert first["big"] is not second["big"]

    def test_ambient_default_matches_paper_setup(self):
        assert exynos9810().ambient_c == pytest.approx(21.0)

    def test_display_is_60hz(self):
        assert exynos9810().display_refresh_hz == 60.0


class TestGenericPlatform:
    def test_builds_and_has_gpu(self):
        platform = generic_two_cluster_soc()
        assert "gpu" in platform.cluster_names
        assert platform.cluster_of_kind(ClusterKind.LITTLE_CPU) is None
