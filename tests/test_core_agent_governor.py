"""Unit tests for the Next agent, its governor adapter and federated training."""

import pytest

from repro.core.agent import AgentConfig, NextAgent
from repro.core.federated import CloudTrainer, CloudTrainingConfig, FederatedAggregator
from repro.core.frame_window import FrameWindowConfig
from repro.core.governor import NextGovernor
from repro.core.qtable import QTable
from repro.governors.base import GovernorObservation
from repro.soc.platform import exynos9810


@pytest.fixture
def clusters():
    return exynos9810().build_clusters()


def observation(clusters, fps=30.0, power=3.0, t_big=45.0, t_dev=30.0, time_s=1.0,
                dropped=0, demanded=3):
    return GovernorObservation(
        time_s=time_s,
        dt_s=0.1,
        fps=fps,
        utilisations={name: 0.4 for name in clusters},
        frequencies_mhz={n: c.current_frequency_mhz for n, c in clusters.items()},
        max_limits_mhz={n: c.max_limit_frequency_mhz for n, c in clusters.items()},
        power_w=power,
        temperature_big_c=t_big,
        temperature_device_c=t_dev,
        frames_dropped=dropped,
        frames_demanded=demanded,
    )


class TestAgentConfig:
    def test_defaults_match_paper_settings(self):
        config = AgentConfig()
        assert config.invocation_period_s == pytest.approx(0.1)
        assert config.frame_window.sample_period_s == pytest.approx(0.025)
        assert config.frame_window.window_s == pytest.approx(4.0)
        assert config.cluster_order == ("big", "little", "gpu")

    def test_discretiser_cluster_order_follows_agent_order(self):
        config = AgentConfig(cluster_order=("gpu", "big"))
        assert config.discretiser.cluster_order == ("gpu", "big")

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentConfig(invocation_period_s=0.0)
        with pytest.raises(ValueError):
            AgentConfig(trained_visit_threshold=0)


class TestNextAgent:
    def test_nine_actions_on_exynos(self):
        agent = NextAgent()
        assert len(agent.action_space) == 9

    def test_step_applies_exactly_one_action(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("facebook")
        before = {n: c.max_limit_index for n, c in clusters.items()}
        info = agent.step(observation(clusters), clusters)
        after = {n: c.max_limit_index for n, c in clusters.items()}
        changed = [n for n in clusters if before[n] != after[n]]
        assert len(changed) <= 1
        assert 0 <= info.action_index < 9

    def test_first_step_has_no_reward(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("app")
        info = agent.step(observation(clusters), clusters)
        assert info.reward is None
        info2 = agent.step(observation(clusters, time_s=1.1), clusters)
        assert info2.reward is not None

    def test_target_fps_follows_frame_window(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("app")
        for i in range(200):
            agent.observe_frame(i * 0.025, 45.0)
        assert agent.target_fps == pytest.approx(45.0, abs=2.5)
        info = agent.step(observation(clusters, fps=45.0), clusters)
        assert info.target_fps == pytest.approx(45.0, abs=2.5)

    def test_per_app_qtables_are_isolated(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("facebook")
        for i in range(20):
            agent.step(observation(clusters, time_s=i * 0.1), clusters)
        facebook_states = agent.qtable_size("facebook")
        agent.set_application("spotify")
        assert agent.qtable_size("spotify") == 0
        assert agent.qtable_size("facebook") == facebook_states

    def test_switching_app_resets_frame_window(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("a")
        for i in range(200):
            agent.observe_frame(i * 0.025, 50.0)
        agent.set_application("b")
        assert agent.frame_window.sample_count == 0

    def test_training_toggle_freezes_qtable(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("app")
        agent.set_training(False)
        for i in range(30):
            agent.step(observation(clusters, time_s=i * 0.1), clusters)
        assert agent.store.table_for("app").total_visits() == 0
        assert agent.training is False

    def test_training_accumulates_time_and_steps(self, clusters):
        agent = NextAgent(seed=1)
        agent.set_application("app")
        for i in range(50):
            agent.step(observation(clusters, time_s=i * 0.1), clusters)
        assert agent.steps_for("app") == 50
        assert agent.training_time_s("app") == pytest.approx(5.0)
        assert agent.cumulative_reward != 0.0

    def test_convergence_diagnostics(self, clusters):
        agent = NextAgent(config=AgentConfig(td_error_window=10), seed=1)
        agent.set_application("app")
        assert agent.recent_td_error() == float("inf")
        assert not agent.has_converged()
        for i in range(60):
            agent.step(observation(clusters, time_s=i * 0.1), clusters)
        assert agent.recent_td_error() < float("inf")

    def test_default_application_when_unset(self, clusters):
        agent = NextAgent(seed=1)
        agent.step(observation(clusters), clusters)
        assert agent.app_name == "default"

    def test_is_trained_threshold(self, clusters):
        config = AgentConfig(trained_visit_threshold=10)
        agent = NextAgent(config=config, seed=1)
        agent.set_application("app")
        assert not agent.is_trained()
        for i in range(30):
            agent.step(observation(clusters, time_s=i * 0.1), clusters)
        assert agent.is_trained()


class TestNextGovernor:
    def test_governor_period_matches_agent(self):
        governor = NextGovernor(seed=1)
        assert governor.invocation_period_s == pytest.approx(0.1)

    def test_observe_tick_feeds_frame_window(self):
        governor = NextGovernor(seed=1)
        governor.on_session_start("app")
        for i in range(200):
            governor.observe_tick(i * 1.0 / 60.0, 30.0)
        # At 60 Hz ticks and 25 ms sampling roughly every other tick is kept.
        assert governor.agent.frame_window.sample_count >= 80

    def test_update_records_last_step(self, clusters):
        governor = NextGovernor(seed=1)
        governor.on_session_start("app")
        governor.update(observation(clusters), clusters)
        assert governor.last_step is not None

    def test_session_start_switches_agent_app(self):
        governor = NextGovernor(seed=1)
        governor.on_session_start("pubg")
        assert governor.agent.app_name == "pubg"

    def test_training_toggle_proxies_to_agent(self):
        governor = NextGovernor(seed=1, training=False)
        assert governor.training is False
        governor.set_training(True)
        assert governor.agent.training is True

    def test_reset_releases_limits_but_keeps_tables(self, clusters):
        governor = NextGovernor(seed=1)
        governor.on_session_start("app")
        for i in range(20):
            governor.update(observation(clusters, time_s=i * 0.1), clusters)
        states_before = governor.agent.qtable_size("app")
        governor.reset(clusters)
        assert governor.agent.qtable_size("app") == states_before
        for cluster in clusters.values():
            assert cluster.max_limit_index == len(cluster.opp_table) - 1


class TestFederated:
    def test_cloud_time_model(self):
        trainer = CloudTrainer(CloudTrainingConfig(speedup_factor=7.0, communication_overhead_s=4.0))
        assert trainer.cloud_time_s(70.0) == pytest.approx(14.0)
        assert trainer.speedup(70.0) == pytest.approx(5.0)
        assert trainer.cloud_time_s(0.0) == pytest.approx(4.0)

    def test_cloud_config_validation(self):
        with pytest.raises(ValueError):
            CloudTrainingConfig(speedup_factor=0.0)
        with pytest.raises(ValueError):
            CloudTrainingConfig(communication_overhead_s=-1.0)
        with pytest.raises(ValueError):
            CloudTrainer().cloud_time_s(-1.0)

    def test_aggregate_weighted_by_visits(self):
        aggregator = FederatedAggregator(action_count=2)
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        # Device A visited the state three times, device B once.
        for _ in range(3):
            a.set("s", 0, 3.0)
        b.set("s", 0, 7.0)
        merged = aggregator.aggregate([a, b])
        assert merged.get("s", 0) == pytest.approx((3.0 * 3 + 7.0 * 1) / 4)

    def test_aggregate_union_of_states(self):
        aggregator = FederatedAggregator(action_count=2)
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        a.set("only_a", 1, 1.0)
        b.set("only_b", 0, 2.0)
        merged = aggregator.aggregate([a, b])
        assert merged.get("only_a", 1) == pytest.approx(1.0)
        assert merged.get("only_b", 0) == pytest.approx(2.0)

    def test_distribute_clones(self):
        aggregator = FederatedAggregator(action_count=2)
        table = QTable(action_count=2)
        table.set("s", 0, 1.0)
        clones = aggregator.distribute(table, 3)
        assert len(clones) == 3
        clones[0].set("s", 0, 99.0)
        assert clones[1].get("s", 0) == pytest.approx(1.0)

    def test_validation(self):
        aggregator = FederatedAggregator(action_count=2)
        with pytest.raises(ValueError):
            aggregator.aggregate([])
        with pytest.raises(ValueError):
            aggregator.aggregate([QTable(action_count=3)])
        with pytest.raises(ValueError):
            aggregator.distribute(QTable(action_count=2), 0)
        with pytest.raises(ValueError):
            FederatedAggregator(action_count=0)
