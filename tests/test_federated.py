"""Federated device-fleet training: pipeline, parity and artifacts.

Four contract layers, each pinned here:

* :class:`FederatedAggregator` visit accounting: the merged table carries
  the pooled visit mass, so multi-round aggregation weights fleet
  experience instead of resetting every state to a fresh-write count,
* :func:`train_fleet_artifact` is a pure function of its
  :class:`FleetSpec`: sequential == pooled == resumed, bit for bit,
* :class:`FleetArtifact` round-trips through JSON to an identical greedy
  policy and the :class:`FleetStore` trains each spec once (resuming
  same-lineage shallower fleets instead of retraining), and
* the scenario-matrix integration: federated cells evaluate the merged
  agent deterministically next to cold/pretrained cells, with the same
  pool == sequential == cache parity the other variants guarantee.
"""

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.agent import AgentConfig
from repro.core.federated import (
    FLEET_SCHEMA_VERSION,
    FederatedAggregator,
    FleetArtifact,
    FleetSpec,
    RoundReport,
)
from repro.core.governor import NextGovernor
from repro.core.qtable import QTable
from repro.experiments.aggregate import marginal_savings
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.federated import (
    FleetStore,
    fleet_convergence_table,
    train_fleet_artifact,
)
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import SweepRunner, execute_cell, run_matrix
from repro.sim.experiment import run_app_session
from repro.soc.platform import generic_two_cluster_soc

APP = "home"


def tiny_fleet_spec(**overrides) -> FleetSpec:
    defaults = dict(
        apps=(APP,),
        devices=2,
        rounds=2,
        platform="generic-two-cluster",
        episodes=1,
        episode_duration_s=4.0,
        fleet_seed=3,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


@pytest.fixture(scope="module")
def fleet_artifact():
    return train_fleet_artifact(tiny_fleet_spec())


def _federated_matrix(**variant_overrides) -> ScenarioMatrix:
    variant = dict(
        key="federated",
        mode="federated",
        episodes=1,
        episode_duration_s=4.0,
        seed=3,
        devices=2,
        rounds=2,
    )
    variant.update(variant_overrides)
    return ScenarioMatrix.build(
        name="fed",
        governors=("schedutil", "next"),
        apps=(APP,),
        platforms=("generic-two-cluster",),
        duration_s=4.0,
        training=({"key": "cold", "mode": "cold"}, variant),
    )


# ---------------------------------------------------------------------------
# Aggregator visit accounting (regression)
# ---------------------------------------------------------------------------

class TestAggregatorVisitAccounting:
    def test_merged_visits_are_pooled_not_write_counted(self):
        # Regression: aggregate() used to write merged values through
        # QTable.set, which counts one visit per action -- every merged
        # state ended up with visits == action_count regardless of how much
        # fleet experience it represented.
        a = QTable(action_count=3)
        b = QTable(action_count=3)
        for _ in range(5):
            a.set((1,), 0, 1.0)
        b.set((1,), 0, 0.0)
        merged = FederatedAggregator(3).aggregate([a, b])
        assert merged.visits((1,)) == 6  # pooled, not action_count (3)

    def test_two_round_aggregation_weights_fleet_experience(self):
        # Round 1: device A (3 visits, Q=1.0) + device B (1 visit, Q=0.0)
        # -> merged Q = 0.75 carrying 4 visits.  Round 2 merges that with a
        # fresh device C (4 visits, Q=0.0): the correct visit-weighted value
        # is (0.75*4 + 0*4) / 8 = 0.375.  Under the old accounting the
        # merged table re-entered round 2 with visits == action_count == 2,
        # distorting the weight of the fleet's pooled experience.
        aggregator = FederatedAggregator(2)
        a = QTable(action_count=2)
        b = QTable(action_count=2)
        c = QTable(action_count=2)
        for _ in range(3):
            a.set((0,), 0, 1.0)
        b.set((0,), 0, 0.0)
        for _ in range(4):
            c.set((0,), 0, 0.0)
        first_round = aggregator.aggregate([a, b])
        assert first_round.get((0,), 0) == pytest.approx(0.75)
        assert first_round.visits((0,)) == 4
        second_round = aggregator.aggregate([first_round, c])
        assert second_round.get((0,), 0) == pytest.approx(0.375)
        assert second_round.visits((0,)) == 8

    def test_set_row_validates(self):
        table = QTable(action_count=2)
        with pytest.raises(ValueError, match="actions"):
            table.set_row((0,), [1.0], 3)
        with pytest.raises(ValueError, match="non-negative"):
            table.set_row((0,), [1.0, 2.0], -1)


# ---------------------------------------------------------------------------
# FleetSpec
# ---------------------------------------------------------------------------

class TestFleetSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_fleet_spec(apps=())
        with pytest.raises(ValueError):
            tiny_fleet_spec(apps=(APP, APP))
        with pytest.raises(ValueError):
            tiny_fleet_spec(devices=0)
        with pytest.raises(ValueError):
            tiny_fleet_spec(rounds=0)
        with pytest.raises(ValueError):
            tiny_fleet_spec(episodes=0)
        with pytest.raises(ValueError):
            tiny_fleet_spec(episode_duration_s=0.0)

    def test_dict_round_trip(self):
        spec = tiny_fleet_spec(config_overrides=(("warm_start_temperature_c", 40.0),))
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_device_heterogeneity(self):
        spec = tiny_fleet_spec(apps=("facebook", "spotify", "youtube"), devices=3)
        assert spec.device_apps(0) == ("facebook", "spotify", "youtube")
        assert spec.device_apps(1) == ("spotify", "youtube", "facebook")
        assert spec.device_apps(2) == ("youtube", "facebook", "spotify")
        seeds = {
            spec.device_seed(device, round_index)
            for device in range(3)
            for round_index in range(2)
        }
        assert len(seeds) == 6  # every (device, round) phase is decoupled

    def test_round_zero_is_an_ordinary_training_spec(self):
        spec = tiny_fleet_spec()
        device_spec = spec.device_training_spec(1)
        assert device_spec.apps == spec.device_apps(1)
        assert device_spec.seed == spec.device_seed(1, 0)
        assert device_spec.platform == spec.platform

    def test_fingerprint_and_lineage(self):
        spec = tiny_fleet_spec()
        deeper = dataclasses.replace(spec, rounds=4)
        assert deeper.lineage() == spec.lineage()
        assert deeper.fingerprint() != spec.fingerprint()
        for change in (
            {"apps": (APP, "facebook")},
            {"devices": 3},
            {"episodes": 2},
            {"episode_duration_s": 5.0},
            {"fleet_seed": 4},
            {"platform": "exynos9810"},
        ):
            other = dataclasses.replace(spec, **change)
            assert other.lineage() != spec.lineage()
            assert other.fingerprint() != spec.fingerprint()
        assert spec.fingerprint(AgentConfig(ambient_c=30.0)) != spec.fingerprint()


# ---------------------------------------------------------------------------
# Fleet training
# ---------------------------------------------------------------------------

class TestFleetTraining:
    def test_artifact_shape(self, fleet_artifact):
        spec = fleet_artifact.spec
        assert fleet_artifact.rounds_completed == spec.rounds
        assert len(fleet_artifact.device_states) == spec.devices
        assert [r.round_index for r in fleet_artifact.round_reports] == [0, 1]
        agent = fleet_artifact.build_agent()
        assert agent.training is False
        assert agent.qtable_size(APP) > 0

    def test_training_is_deterministic(self, fleet_artifact):
        again = train_fleet_artifact(tiny_fleet_spec())
        assert again.to_dict() == fleet_artifact.to_dict()

    def test_pool_matches_sequential(self, fleet_artifact):
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = train_fleet_artifact(tiny_fleet_spec(), pool=pool)
        assert pooled.to_dict() == fleet_artifact.to_dict()

    def test_resume_matches_from_scratch(self, fleet_artifact):
        shallow = train_fleet_artifact(tiny_fleet_spec(rounds=1))
        resumed = train_fleet_artifact(tiny_fleet_spec(rounds=2), start=shallow)
        assert resumed.to_dict() == fleet_artifact.to_dict()

    def test_resume_rejects_other_lineage_or_depth(self, fleet_artifact):
        other = train_fleet_artifact(tiny_fleet_spec(rounds=1, fleet_seed=9))
        with pytest.raises(ValueError, match="lineage"):
            train_fleet_artifact(tiny_fleet_spec(rounds=2), start=other)
        with pytest.raises(ValueError, match="already completed"):
            train_fleet_artifact(tiny_fleet_spec(rounds=2), start=fleet_artifact)

    def test_round_zero_reuses_the_artifact_store(self, tmp_path):
        artifacts = ArtifactStore(str(tmp_path))
        spec = tiny_fleet_spec()
        train_fleet_artifact(spec, artifacts=artifacts)
        assert artifacts.trained_count == spec.devices
        # A second fleet sharing the lineage serves round 0 from the store.
        again = ArtifactStore(str(tmp_path))
        train_fleet_artifact(spec, artifacts=again)
        assert again.trained_count == 0
        assert again.reused_count == spec.devices

    def test_convergence_table_renders(self, fleet_artifact):
        table = fleet_convergence_table(fleet_artifact)
        assert "per-round convergence" in table
        assert "mean_td_error" in table


# ---------------------------------------------------------------------------
# FleetArtifact + FleetStore
# ---------------------------------------------------------------------------

class TestFleetArtifact:
    def test_save_load_round_trip(self, fleet_artifact, tmp_path):
        path = fleet_artifact.save(str(tmp_path / "fleet.json"))
        loaded = FleetArtifact.load(path)
        assert loaded.to_dict() == fleet_artifact.to_dict()

    def test_loaded_greedy_policy_is_bit_identical(self, fleet_artifact, tmp_path):
        # The satellite acceptance: a shipped fleet evaluates exactly like
        # the fleet that trained in memory, sample for sample.
        path = fleet_artifact.save(str(tmp_path / "fleet.json"))
        loaded = FleetArtifact.load(path)
        platform = generic_two_cluster_soc()
        results = [
            run_app_session(
                APP, artifact.build_governor(), duration_s=4.0,
                platform=platform, seed=11,
            )
            for artifact in (fleet_artifact, loaded)
        ]
        assert results[0].recorder.samples == results[1].recorder.samples

    def test_load_rejects_tampered_content(self, fleet_artifact, tmp_path):
        data = fleet_artifact.to_dict()
        data["spec"]["episodes"] += 1
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="fingerprint"):
            FleetArtifact.load(str(path))

    def test_load_rejects_wrong_schema_version(self, fleet_artifact, tmp_path):
        data = fleet_artifact.to_dict()
        data["schema_version"] = FLEET_SCHEMA_VERSION + 1
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            FleetArtifact.load(str(path))

    def test_round_report_round_trip(self, fleet_artifact):
        for report in fleet_artifact.round_reports:
            assert RoundReport.from_dict(report.to_dict()) == report

    def test_evaluation_only_strips_fleet_bulk_but_keeps_the_policy(
        self, fleet_artifact
    ):
        stripped = fleet_artifact.evaluation_only()
        assert stripped.device_states == [] and stripped.round_reports == []
        assert stripped.fingerprint == fleet_artifact.fingerprint
        assert stripped.build_agent().to_dict() == fleet_artifact.build_agent().to_dict()


class TestFleetStore:
    def test_trains_once_then_reuses_across_instances(self, tmp_path):
        spec = tiny_fleet_spec()
        store = FleetStore(str(tmp_path))
        fleets, errors = store.ensure([spec, spec])
        assert errors == {}
        assert store.trained_count == 1 and store.reused_count == 0
        second = FleetStore(str(tmp_path))
        fleets_again, errors = second.ensure([spec])
        assert errors == {}
        assert second.trained_count == 0 and second.reused_count == 1
        fingerprint = spec.fingerprint()
        assert fleets_again[fingerprint].to_dict() == fleets[fingerprint].to_dict()

    def test_deeper_spec_resumes_the_stored_lineage(self, tmp_path):
        store = FleetStore(str(tmp_path))
        store.ensure([tiny_fleet_spec(rounds=1)])
        deeper = tiny_fleet_spec(rounds=2)
        fleets, errors = store.ensure([deeper])
        assert errors == {}
        assert store.resumed_count == 1
        assert (
            fleets[deeper.fingerprint()].to_dict()
            == train_fleet_artifact(deeper).to_dict()
        )

    def test_corrupt_resume_candidate_falls_back_to_the_next_deepest(
        self, tmp_path
    ):
        store = FleetStore(str(tmp_path))
        store.ensure([tiny_fleet_spec(rounds=1)])
        store.ensure([tiny_fleet_spec(rounds=2)])
        # Corrupt the deepest candidate; resumption must fall back to the
        # 1-round artifact instead of crashing or retraining from scratch.
        deep_path = tmp_path / f"{tiny_fleet_spec(rounds=2).fingerprint()}.fleet.json"
        deep_path.write_text(deep_path.read_text()[:-40])
        fresh = FleetStore(str(tmp_path))
        candidate = fresh.resume_candidate(tiny_fleet_spec(rounds=3))
        assert candidate is not None
        assert candidate.rounds_completed == 1

    def test_truncated_fleet_file_is_retrained(self, tmp_path):
        spec = tiny_fleet_spec()
        store = FleetStore(str(tmp_path))
        store.ensure([spec])
        path = tmp_path / f"{spec.fingerprint()}.fleet.json"
        path.write_text(path.read_text()[:100])  # simulate a torn write
        fresh = FleetStore(str(tmp_path))
        fleets, errors = fresh.ensure([spec])
        assert errors == {}
        assert fresh.trained_count == 1  # corrupt entry treated as a miss
        assert FleetArtifact.load(str(path)).fingerprint == spec.fingerprint()

    def test_training_failure_is_isolated(self, monkeypatch):
        import repro.experiments.federated as federated_module

        def crash(spec, agent_config=None):
            raise RuntimeError("device boom")

        monkeypatch.setattr(federated_module, "train_artifact", crash)
        store = FleetStore(None)
        fleets, errors = store.ensure([tiny_fleet_spec()])
        assert fleets == {}
        assert "device boom" in errors[tiny_fleet_spec().fingerprint()]


# ---------------------------------------------------------------------------
# Scenario-matrix integration
# ---------------------------------------------------------------------------

class TestFederatedCells:
    def test_only_trainable_governors_expand(self):
        matrix = _federated_matrix()
        cells = matrix.cells()
        assert len(cells) == len(matrix) == 3  # schedutil once, next twice
        federated = [cell for cell in cells if cell.federated]
        assert len(federated) == 1
        assert federated[0].governor == "next"
        assert federated[0].label().endswith("/federated")

    def test_fleet_spec_derivation(self):
        matrix = ScenarioMatrix.build(
            name="fed",
            governors=("next",),
            apps=(APP,),
            platforms=("generic-two-cluster",),
            duration_s=4.0,
            config_overrides={"warm_start_temperature_c": 40.0},
            training={
                "mode": "federated", "episodes": 1, "episode_duration_s": 4.0,
                "devices": 3, "rounds": 2, "seed": 7,
            },
        )
        cell = matrix.cells()[0]
        assert cell.training_spec() is None
        fleet = cell.fleet_spec()
        assert fleet.apps == (APP,)  # derived from the workload
        assert fleet.platform == cell.platform
        assert (fleet.devices, fleet.rounds, fleet.fleet_seed) == (3, 2, 7)
        assert fleet.config_overrides == (("warm_start_temperature_c", 40.0),)

    def test_training_modes_have_distinct_fingerprints(self):
        def cell_for(training):
            return ScenarioMatrix.build(
                name="t", governors=("next",), apps=(APP,),
                platforms=("generic-two-cluster",), duration_s=4.0,
                training=training,
            ).cells()[0]

        cold = cell_for(None)
        pretrained = cell_for(
            {"mode": "pretrained", "episodes": 1, "episode_duration_s": 4.0}
        )
        federated = cell_for(
            {"mode": "federated", "episodes": 1, "episode_duration_s": 4.0}
        )
        fingerprints = {c.fingerprint() for c in (cold, pretrained, federated)}
        assert len(fingerprints) == 3
        # Cosmetic differences still share a fingerprint: pinning exactly
        # the workload's own apps resolves to the same FleetSpec.
        pinned = cell_for(
            {"mode": "federated", "apps": [APP], "episodes": 1,
             "episode_duration_s": 4.0}
        )
        assert pinned.fingerprint() == federated.fingerprint()

    def test_fleet_shape_changes_the_fingerprint(self):
        base = _federated_matrix().cells()
        bigger = _federated_matrix(devices=3).cells()
        deeper = _federated_matrix(rounds=3).cells()
        federated = [c for c in base if c.federated][0]
        assert [c for c in bigger if c.federated][0].fingerprint() != federated.fingerprint()
        assert [c for c in deeper if c.federated][0].fingerprint() != federated.fingerprint()

    def test_pool_sequential_and_cache_parity(self, tmp_path):
        # The tentpole acceptance: pool == sequential == artifact-cached,
        # bit-identical across runs with the same fleet seed.
        matrix = _federated_matrix()
        sequential = run_matrix(matrix, max_workers=1)
        assert all(result.ok for result in sequential.results)
        pooled = run_matrix(matrix, max_workers=2)
        cache_dir = str(tmp_path / "cache")
        cached_cold = run_matrix(matrix, max_workers=1, cache_dir=cache_dir)
        served_runner = SweepRunner(max_workers=1, cache_dir=cache_dir)
        served = served_runner.run(matrix)
        assert served.cached_count == len(matrix)
        assert served_runner.fleets.trained_count == 0
        for sweep in (pooled, cached_cold, served):
            assert [r.summary for r in sweep.results] == [
                r.summary for r in sequential.results
            ]

    def test_rerun_with_same_fleet_seed_is_bit_identical(self):
        matrix = _federated_matrix()
        first = run_matrix(matrix, max_workers=1)
        second = run_matrix(matrix, max_workers=1)
        assert [r.summary for r in first.results] == [
            r.summary for r in second.results
        ]
        assert [r.cell.fingerprint() for r in first.results] == [
            r.cell.fingerprint() for r in second.results
        ]

    def test_standalone_execute_cell_trains_inline(self, tmp_path):
        matrix = _federated_matrix()
        cell = next(c for c in matrix.cells() if c.federated)
        inline = execute_cell(cell)
        assert inline.ok
        # Inline training and the runner's store-resolved fleet agree.
        runner = SweepRunner(max_workers=1, artifact_dir=str(tmp_path))
        sweep = runner.run(matrix)
        assert sweep.result_for(cell).summary == inline.summary

    def test_fleet_training_failure_fails_only_federated_cells(self, monkeypatch):
        import repro.experiments.federated as federated_module

        def crash(spec, agent_config=None):
            raise RuntimeError("fleet boom")

        monkeypatch.setattr(federated_module, "train_artifact", crash)
        sweep = run_matrix(_federated_matrix(), max_workers=1)
        federated = [r for r in sweep.results if r.cell.federated]
        others = [r for r in sweep.results if not r.cell.federated]
        assert all(not r.ok and "fleet boom" in r.error for r in federated)
        assert all(r.ok for r in others)

    def test_marginal_savings_by_training_mode(self):
        sweep = run_matrix(_federated_matrix(), max_workers=1)
        by_mode = marginal_savings(
            sweep.results, axis="training_mode", metric="average_power_w"
        )
        assert set(by_mode) == {"cold", "federated"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestFederatedCli:
    @staticmethod
    def _spec_file(tmp_path):
        path = tmp_path / "fed.json"
        path.write_text(json.dumps({
            "name": "cli-fed",
            "governors": ["schedutil", "next"],
            "workloads": [APP],
            "platforms": ["generic-two-cluster"],
            "duration_s": 4.0,
            "training": [
                {"key": "cold", "mode": "cold"},
                {
                    "key": "federated", "mode": "federated", "episodes": 1,
                    "episode_duration_s": 4.0, "devices": 2, "rounds": 2,
                    "seed": 3,
                },
            ],
        }))
        return str(path)

    def test_federated_sweep_reports_convergence(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["--spec", self._spec_file(tmp_path), "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fleets: 1 trained, 0 reused, 0 resumed" in out
        assert "per-round convergence" in out

    def test_fleet_flags_override_the_variant(self, tmp_path):
        from repro.experiments.cli import build_parser, _resolve_matrix

        args = build_parser().parse_args(
            ["--spec", self._spec_file(tmp_path),
             "--devices", "5", "--rounds", "4", "--fleet-seed", "11"]
        )
        matrix = _resolve_matrix(args)
        federated = [v for v in matrix.training if v.federated]
        assert len(federated) == 1
        assert (federated[0].devices, federated[0].rounds, federated[0].seed) == (
            5, 4, 11,
        )
        cold = [v for v in matrix.training if not v.trains]
        assert cold and cold[0].devices == 4  # non-federated variants untouched

    def test_fleet_flags_need_a_federated_variant(self, capsys):
        from repro.experiments.cli import main

        assert main(["smoke", "--devices", "3"]) == 2
        assert "federated training variant" in capsys.readouterr().err

    def test_list_artifacts_shows_fleets(self, tmp_path, capsys):
        from repro.experiments.cli import main

        store = FleetStore(str(tmp_path))
        store.ensure([tiny_fleet_spec()])
        assert main(["--list-artifacts", "--artifact-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"fleet apps={APP}" in out
        assert "devices=2 rounds=2" in out
