"""Batched device-population kernel: bit-identity with the scalar engine.

The struct-of-arrays :class:`~repro.sim.batch.BatchSimulation` steps N
independent devices per tick in one process.  Its load-bearing contract is
the same one the compiled hot loop (PR 4) carries: *bit-identity*.  Every
device lane of a batched run must produce exactly the sample stream the
scalar :class:`~repro.sim.engine.Simulation` produces for that device --
pinned through ``sample_stream_hash``, the canonical SHA-256 of the full
recorded stream -- across platforms, governors (including the
observation-free fast path and the stateful slow path), device counts
(including the degenerate N=1), interrupted/resumed stepping and the
federated round scheduling built on top.  Golden hashes for one batched
fleet cell live in ``tests/data/golden_hashes.json`` next to the scalar
pins, so a drift in either kernel (or only one of them) fails loudly.
"""

from __future__ import annotations

import json
import os

import pytest

pytest.importorskip("numpy")  # the batch kernel is NumPy-backed

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.batch import BatchSimulation
from repro.sim.config import SimulationConfig
from repro.sim.engine import SessionWorkload, Simulation
from repro.sim.experiment import GOVERNOR_FACTORIES, make_governor
from repro.sim.recorder import sample_stream_hash
from repro.soc.platform import make_platform
from repro.workloads.session import FIGURE1_SESSION

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hashes.json")

PLATFORMS = ("exynos9810", "generic-two-cluster")


def batch_device_hashes(platform_name, governor_name, n_devices, seed, duration_s):
    """Per-device stream hashes of one batched run."""
    platform = make_platform(platform_name)
    configs = [
        SimulationConfig(
            refresh_hz=platform.display_refresh_hz,
            duration_s=duration_s,
            seed=seed + device,
        )
        for device in range(n_devices)
    ]
    governors = [make_governor(governor_name) for _ in range(n_devices)]
    batch = BatchSimulation(platform, governors, configs)
    batch.run(
        [
            SessionWorkload(FIGURE1_SESSION.segments, seed=seed + device)
            for device in range(n_devices)
        ],
        duration_s=duration_s,
    )
    return [
        sample_stream_hash(batch.device_recorder(device).samples)
        for device in range(n_devices)
    ]


def scalar_device_hash(platform_name, governor_name, device, seed, duration_s):
    """The scalar reference stream hash of one device of that fleet."""
    platform = make_platform(platform_name)
    config = SimulationConfig(
        refresh_hz=platform.display_refresh_hz,
        duration_s=duration_s,
        seed=seed + device,
    )
    simulation = Simulation(platform, make_governor(governor_name), config)
    simulation.run(SessionWorkload(FIGURE1_SESSION.segments, seed=seed + device))
    return sample_stream_hash(simulation.recorder.samples)


class TestBatchScalarParity:
    """batched == sequential, per device, bit for bit."""

    @given(
        platform_name=st.sampled_from(PLATFORMS),
        governor_name=st.sampled_from(sorted(GOVERNOR_FACTORIES)),
        n_devices=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=12, deadline=None)
    def test_every_device_lane_matches_its_scalar_run(
        self, platform_name, governor_name, n_devices, seed
    ):
        duration_s = 2.0
        batched = batch_device_hashes(
            platform_name, governor_name, n_devices, seed, duration_s
        )
        for device in range(n_devices):
            assert batched[device] == scalar_device_hash(
                platform_name, governor_name, device, seed, duration_s
            ), f"lane {device} diverged ({platform_name}/{governor_name}/seed {seed})"

    def test_single_device_fleet_equals_scalar(self):
        """N=1 is the degenerate fleet: no vector shortcut may change it."""
        batched = batch_device_hashes("exynos9810", "schedutil", 1, 7, 3.0)
        assert batched[0] == scalar_device_hash("exynos9810", "schedutil", 0, 7, 3.0)

    def test_observation_free_and_slow_paths_agree_with_scalar(self):
        """The governor fast path (schedutil et al. skip sensor sampling
        entirely) and the stateful slow path (conservative reads its
        observation) both reduce to the scalar streams."""
        for governor_name in ("schedutil", "conservative"):
            batched = batch_device_hashes("exynos9810", governor_name, 2, 3, 2.0)
            for device in range(2):
                assert batched[device] == scalar_device_hash(
                    "exynos9810", governor_name, device, 3, 2.0
                )


class TestMidRunAggregation:
    """Fleet schedulers pause a batch mid-run (to aggregate) and resume it."""

    def test_split_run_equals_scalar_split_run(self):
        platform = make_platform("exynos9810")
        n_devices = 3
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=4.0, seed=device
            )
            for device in range(n_devices)
        ]
        batch = BatchSimulation(
            platform,
            [make_governor("schedutil") for _ in range(n_devices)],
            configs,
        )
        workloads = [
            SessionWorkload(FIGURE1_SESSION.segments, seed=device)
            for device in range(n_devices)
        ]
        # Two half-duration run() calls: state (thermal, governor, pipeline,
        # recorder) persists across the boundary, as a federated scheduler
        # needs when it aggregates between episodes.
        batch.run(workloads, duration_s=2.0)
        assert batch.tick_count == 120
        batch.run(workloads, duration_s=2.0)
        for device in range(n_devices):
            simulation = Simulation(
                platform, make_governor("schedutil"), configs[device]
            )
            workload = SessionWorkload(FIGURE1_SESSION.segments, seed=device)
            simulation.run(workload, duration_s=2.0)
            simulation.run(workload, duration_s=2.0)
            assert sample_stream_hash(
                batch.device_recorder(device).samples
            ) == sample_stream_hash(simulation.recorder.samples)


class TestBatchedFederatedRound:
    """The batched round scheduler returns exactly the scalar states."""

    def test_batched_device_round_states_match_scalar(self):
        from repro.core.agent import AgentConfig, NextAgent
        from repro.experiments.federated import (
            train_device_round,
            train_device_rounds_batched,
        )

        jobs = []
        for device in range(3):
            agent = NextAgent(config=AgentConfig(), seed=100 + device)
            jobs.append(
                (
                    json.loads(json.dumps(agent.to_dict())),
                    ("facebook",),
                    "exynos9810",
                    2,
                    2.0,
                    17 + device * 31,
                    (),
                )
            )
        batched = train_device_rounds_batched(jobs)
        scalar = [train_device_round(*job) for job in jobs]
        assert batched == scalar

    def test_heterogeneous_jobs_rejected(self):
        from repro.core.agent import AgentConfig, NextAgent
        from repro.experiments.federated import train_device_rounds_batched

        state = json.loads(
            json.dumps(NextAgent(config=AgentConfig(), seed=0).to_dict())
        )
        jobs = [
            (state, ("facebook",), "exynos9810", 2, 2.0, 0, ()),
            (state, ("facebook",), "generic-two-cluster", 2, 2.0, 1, ()),
        ]
        with pytest.raises(ValueError, match="share platform"):
            train_device_rounds_batched(jobs)


class TestBatchedFleetGolden:
    """One batched fleet cell pinned against committed golden hashes.

    The hashes were captured from the *scalar* kernel, so this test fails if
    either kernel drifts -- including a batch-only change that silently
    breaks parity on exactly this configuration.
    """

    def test_batched_fleet_cell_streams_are_bit_identical_to_seed(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            expected = json.load(handle)["batched_fleet"]
        hashes = batch_device_hashes(
            expected["platform"],
            expected["governor"],
            expected["devices"],
            expected["seed"],
            expected["duration_s"],
        )
        assert hashes == expected["hashes"]


class TestBatchConstruction:
    def test_mismatched_config_axes_rejected(self):
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=2.0, seed=0
            ),
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=2.0,
                seed=1,
                record_every_n_ticks=2,
            ),
        ]
        with pytest.raises(ValueError):
            BatchSimulation(
                platform, [make_governor("schedutil") for _ in range(2)], configs
            )

    def test_governor_count_must_match_config_count(self):
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=2.0, seed=0
            )
        ]
        with pytest.raises(ValueError):
            BatchSimulation(
                platform, [make_governor("schedutil") for _ in range(2)], configs
            )
