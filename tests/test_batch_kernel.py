"""Batched device-population kernel: bit-identity with the scalar engine.

The struct-of-arrays :class:`~repro.sim.batch.BatchSimulation` steps N
independent devices per tick in one process.  Its load-bearing contract is
the same one the compiled hot loop (PR 4) carries: *bit-identity*.  Every
device lane of a batched run must produce exactly the sample stream the
scalar :class:`~repro.sim.engine.Simulation` produces for that device --
pinned through ``sample_stream_hash``, the canonical SHA-256 of the full
recorded stream -- across platforms, governors (including the
observation-free fast path and the stateful slow path), device counts
(including the degenerate N=1), interrupted/resumed stepping and the
federated round scheduling built on top.  Golden hashes for one batched
fleet cell live in ``tests/data/golden_hashes.json`` next to the scalar
pins, so a drift in either kernel (or only one of them) fails loudly.
"""

from __future__ import annotations

import json
import os

import pytest

pytest.importorskip("numpy")  # the batch kernel is NumPy-backed

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.batch import BatchSimulation
from repro.sim.config import SimulationConfig
from repro.sim.engine import SessionWorkload, Simulation
from repro.sim.experiment import GOVERNOR_FACTORIES, make_governor
from repro.sim.recorder import sample_stream_hash
from repro.soc.platform import make_platform
from repro.workloads.apps import make_app
from repro.workloads.session import FIGURE1_SESSION

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_hashes.json")

PLATFORMS = ("exynos9810", "generic-two-cluster")


def batch_device_hashes(platform_name, governor_name, n_devices, seed, duration_s):
    """Per-device stream hashes of one batched run."""
    platform = make_platform(platform_name)
    configs = [
        SimulationConfig(
            refresh_hz=platform.display_refresh_hz,
            duration_s=duration_s,
            seed=seed + device,
        )
        for device in range(n_devices)
    ]
    governors = [make_governor(governor_name) for _ in range(n_devices)]
    batch = BatchSimulation(platform, governors, configs)
    batch.run(
        [
            SessionWorkload(FIGURE1_SESSION.segments, seed=seed + device)
            for device in range(n_devices)
        ],
        duration_s=duration_s,
    )
    return [
        sample_stream_hash(batch.device_recorder(device).samples)
        for device in range(n_devices)
    ]


def scalar_device_hash(platform_name, governor_name, device, seed, duration_s):
    """The scalar reference stream hash of one device of that fleet."""
    platform = make_platform(platform_name)
    config = SimulationConfig(
        refresh_hz=platform.display_refresh_hz,
        duration_s=duration_s,
        seed=seed + device,
    )
    simulation = Simulation(platform, make_governor(governor_name), config)
    simulation.run(SessionWorkload(FIGURE1_SESSION.segments, seed=seed + device))
    return sample_stream_hash(simulation.recorder.samples)


class TestBatchScalarParity:
    """batched == sequential, per device, bit for bit."""

    @given(
        platform_name=st.sampled_from(PLATFORMS),
        governor_name=st.sampled_from(sorted(GOVERNOR_FACTORIES)),
        n_devices=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=12, deadline=None)
    def test_every_device_lane_matches_its_scalar_run(
        self, platform_name, governor_name, n_devices, seed
    ):
        duration_s = 2.0
        batched = batch_device_hashes(
            platform_name, governor_name, n_devices, seed, duration_s
        )
        for device in range(n_devices):
            assert batched[device] == scalar_device_hash(
                platform_name, governor_name, device, seed, duration_s
            ), f"lane {device} diverged ({platform_name}/{governor_name}/seed {seed})"

    def test_single_device_fleet_equals_scalar(self):
        """N=1 is the degenerate fleet: no vector shortcut may change it."""
        batched = batch_device_hashes("exynos9810", "schedutil", 1, 7, 3.0)
        assert batched[0] == scalar_device_hash("exynos9810", "schedutil", 0, 7, 3.0)

    def test_observation_free_and_slow_paths_agree_with_scalar(self):
        """The governor fast path (schedutil et al. skip sensor sampling
        entirely) and the stateful slow path (conservative reads its
        observation) both reduce to the scalar streams."""
        for governor_name in ("schedutil", "conservative"):
            batched = batch_device_hashes("exynos9810", governor_name, 2, 3, 2.0)
            for device in range(2):
                assert batched[device] == scalar_device_hash(
                    "exynos9810", governor_name, device, 3, 2.0
                )


class TestMidRunAggregation:
    """Fleet schedulers pause a batch mid-run (to aggregate) and resume it."""

    def test_split_run_equals_scalar_split_run(self):
        platform = make_platform("exynos9810")
        n_devices = 3
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=4.0, seed=device
            )
            for device in range(n_devices)
        ]
        batch = BatchSimulation(
            platform,
            [make_governor("schedutil") for _ in range(n_devices)],
            configs,
        )
        workloads = [
            SessionWorkload(FIGURE1_SESSION.segments, seed=device)
            for device in range(n_devices)
        ]
        # Two half-duration run() calls: state (thermal, governor, pipeline,
        # recorder) persists across the boundary, as a federated scheduler
        # needs when it aggregates between episodes.
        batch.run(workloads, duration_s=2.0)
        assert batch.tick_count == 120
        batch.run(workloads, duration_s=2.0)
        for device in range(n_devices):
            simulation = Simulation(
                platform, make_governor("schedutil"), configs[device]
            )
            workload = SessionWorkload(FIGURE1_SESSION.segments, seed=device)
            simulation.run(workload, duration_s=2.0)
            simulation.run(workload, duration_s=2.0)
            assert sample_stream_hash(
                batch.device_recorder(device).samples
            ) == sample_stream_hash(simulation.recorder.samples)


class TestBatchedFederatedRound:
    """The batched round scheduler returns exactly the scalar states."""

    def test_batched_device_round_states_match_scalar(self):
        from repro.core.agent import AgentConfig, NextAgent
        from repro.experiments.federated import (
            train_device_round,
            train_device_rounds_batched,
        )

        jobs = []
        for device in range(3):
            agent = NextAgent(config=AgentConfig(), seed=100 + device)
            jobs.append(
                (
                    json.loads(json.dumps(agent.to_dict())),
                    ("facebook",),
                    "exynos9810",
                    2,
                    2.0,
                    17 + device * 31,
                    (),
                )
            )
        batched = train_device_rounds_batched(jobs)
        scalar = [train_device_round(*job) for job in jobs]
        assert batched == scalar

    def test_heterogeneous_jobs_rejected(self):
        from repro.core.agent import AgentConfig, NextAgent
        from repro.experiments.federated import train_device_rounds_batched

        state = json.loads(
            json.dumps(NextAgent(config=AgentConfig(), seed=0).to_dict())
        )
        jobs = [
            (state, ("facebook",), "exynos9810", 2, 2.0, 0, ()),
            (state, ("facebook",), "generic-two-cluster", 2, 2.0, 1, ()),
        ]
        with pytest.raises(ValueError, match="share platform"):
            train_device_rounds_batched(jobs)


class TestBatchedFleetGolden:
    """One batched fleet cell pinned against committed golden hashes.

    The hashes were captured from the *scalar* kernel, so this test fails if
    either kernel drifts -- including a batch-only change that silently
    breaks parity on exactly this configuration.
    """

    def test_batched_fleet_cell_streams_are_bit_identical_to_seed(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            expected = json.load(handle)["batched_fleet"]
        hashes = batch_device_hashes(
            expected["platform"],
            expected["governor"],
            expected["devices"],
            expected["seed"],
            expected["duration_s"],
        )
        assert hashes == expected["hashes"]


class TestBatchConstruction:
    def test_mismatched_config_axes_rejected(self):
        """Axes that change the physics of a shared tick stay homogeneous."""
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=2.0, seed=0
            ),
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=2.0,
                seed=1,
                warm_start_temperature_c=55.0,
            ),
        ]
        with pytest.raises(ValueError, match="warm start"):
            BatchSimulation(
                platform, [make_governor("schedutil") for _ in range(2)], configs
            )

    def test_mixed_recording_cadence_accepted(self):
        """Per-lane ``record_every_n_ticks`` is a lane axis, not a batch axis."""
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=2.0,
                seed=device,
                record_every_n_ticks=device + 1,
            )
            for device in range(2)
        ]
        BatchSimulation(
            platform, [make_governor("schedutil") for _ in range(2)], configs
        )

    def test_governor_count_must_match_config_count(self):
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz, duration_s=2.0, seed=0
            )
        ]
        with pytest.raises(ValueError):
            BatchSimulation(
                platform, [make_governor("schedutil") for _ in range(2)], configs
            )


# -- heterogeneous lanes: the masked multi-config path -------------------------

#: Apps with distinct interaction profiles (bursty scroll / passive audio /
#: continuous game), so mixed-lane fuzzing exercises genuinely different
#: frame-demand streams per lane.
HETERO_APPS = ("facebook", "spotify", "lineage")


def hetero_batch_hashes(platform_name, governor_name, lanes):
    """Per-device stream hashes of one heterogeneous (masked) batched run."""
    platform = make_platform(platform_name)
    configs = [
        SimulationConfig(
            refresh_hz=platform.display_refresh_hz,
            duration_s=lane["duration_s"],
            seed=lane["seed"],
            record_every_n_ticks=lane["record_every"],
        )
        for lane in lanes
    ]
    governors = [make_governor(governor_name) for _ in lanes]
    batch = BatchSimulation(platform, governors, configs)
    batch.run(
        [
            make_app(lane["app"], seed=lane["seed"], intensity=lane["intensity"])
            for lane in lanes
        ],
        duration_s=[lane["duration_s"] for lane in lanes],
    )
    return [
        sample_stream_hash(batch.device_recorder(device).samples)
        for device in range(len(lanes))
    ]


def hetero_scalar_hash(platform_name, governor_name, lane):
    """The scalar reference stream hash of one heterogeneous lane."""
    platform = make_platform(platform_name)
    config = SimulationConfig(
        refresh_hz=platform.display_refresh_hz,
        duration_s=lane["duration_s"],
        seed=lane["seed"],
        record_every_n_ticks=lane["record_every"],
    )
    simulation = Simulation(platform, make_governor(governor_name), config)
    simulation.run(
        make_app(lane["app"], seed=lane["seed"], intensity=lane["intensity"])
    )
    return sample_stream_hash(simulation.recorder.samples)


#: One lane of a heterogeneous fleet: every axis a masked batch lets differ.
lane_strategy = st.fixed_dictionaries(
    {
        "app": st.sampled_from(HETERO_APPS),
        "duration_s": st.sampled_from((1.0, 2.0, 3.0)),
        "record_every": st.sampled_from((1, 2, 3)),
        "intensity": st.sampled_from((0.5, 1.0, 2.0)),
        "seed": st.integers(min_value=0, max_value=500),
    }
)


class TestHeterogeneousLanes:
    """Differential fuzz harness: masked batched lanes == scalar runs.

    Lanes differ in duration (so lanes *finish* at different global ticks),
    recording cadence (so lanes *record* at different ticks) and interaction
    intensity (so non-IID fleets feed genuinely different streams through
    the shared loop).  Every lane must still reproduce the scalar kernel's
    sample stream bit for bit -- the mask may only ever *exclude* a dead
    lane, never perturb a live one.
    """

    @given(
        lanes=st.lists(lane_strategy, min_size=1, max_size=4),
        governor_name=st.sampled_from(("schedutil", "conservative")),
    )
    @settings(max_examples=10, deadline=None)
    def test_masked_lanes_match_scalar(self, lanes, governor_name):
        batched = hetero_batch_hashes("exynos9810", governor_name, lanes)
        for device, lane in enumerate(lanes):
            assert batched[device] == hetero_scalar_hash(
                "exynos9810", governor_name, lane
            ), f"lane {device} diverged ({lane!r})"

    def test_all_lanes_finished_but_one(self):
        """The survivor lane runs segments alone; its stream may not move."""
        lanes = [
            {"app": "facebook", "duration_s": 1.0, "record_every": 1,
             "intensity": 1.0, "seed": 11},
            {"app": "spotify", "duration_s": 1.0, "record_every": 1,
             "intensity": 1.0, "seed": 22},
            {"app": "lineage", "duration_s": 4.0, "record_every": 1,
             "intensity": 1.0, "seed": 33},
        ]
        batched = hetero_batch_hashes("exynos9810", "schedutil", lanes)
        for device, lane in enumerate(lanes):
            assert batched[device] == hetero_scalar_hash(
                "exynos9810", "schedutil", lane
            )

    def test_single_lane_through_masked_path_matches_scalar(self):
        """N=1 via the masked loop itself (``run()`` would fast-path it)."""
        platform = make_platform("exynos9810")
        config = SimulationConfig(
            refresh_hz=platform.display_refresh_hz, duration_s=2.0, seed=5
        )
        batch = BatchSimulation(platform, [make_governor("schedutil")], [config])
        workload = SessionWorkload(FIGURE1_SESSION.segments, seed=5)
        batch._run_ticks_masked([workload], [batch._ref.clock.ticks_for(2.0)])
        assert sample_stream_hash(
            batch.device_recorder(0).samples
        ) == scalar_device_hash("exynos9810", "schedutil", 0, 5, 2.0)

    def test_heterogeneous_run_consumes_the_batch(self):
        """Lanes end at different local ticks, so a second run is rejected."""
        lanes = [
            {"app": "facebook", "duration_s": 1.0, "record_every": 1,
             "intensity": 1.0, "seed": 1},
            {"app": "spotify", "duration_s": 2.0, "record_every": 1,
             "intensity": 1.0, "seed": 2},
        ]
        platform = make_platform("exynos9810")
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=lane["duration_s"],
                seed=lane["seed"],
            )
            for lane in lanes
        ]
        batch = BatchSimulation(
            platform, [make_governor("schedutil") for _ in lanes], configs
        )
        workloads = [make_app(lane["app"], seed=lane["seed"]) for lane in lanes]
        batch.run(workloads, duration_s=[1.0, 2.0])
        with pytest.raises(ValueError, match="consumes the batch"):
            batch.run(workloads, duration_s=1.0)


#: The pinned non-IID fleet cell: mixed durations, cadences and intensities.
#: Golden hashes were captured from the *scalar* kernel (see
#: ``TestBatchedFleetGolden`` for the rationale).
NIID_LANES = [
    {"app": "facebook", "duration_s": 4.0, "record_every": 1,
     "intensity": 1.0, "seed": 2020},
    {"app": "spotify", "duration_s": 2.0, "record_every": 2,
     "intensity": 2.0, "seed": 2021},
    {"app": "lineage", "duration_s": 3.0, "record_every": 1,
     "intensity": 0.5, "seed": 2022},
]


class TestNonIIDFleetGolden:
    """The heterogeneous fleet cell pinned against committed golden hashes."""

    def test_niid_fleet_cell_streams_are_bit_identical_to_seed(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            expected = json.load(handle)["niid_fleet"]
        assert expected["lanes"] == NIID_LANES, (
            "golden lane spec drifted; re-pin tests/data/golden_hashes.json"
        )
        hashes = hetero_batch_hashes(
            expected["platform"], expected["governor"], NIID_LANES
        )
        assert hashes == expected["hashes"]
