"""Self-test for the ``repro-lint`` determinism rule pack.

Three layers:

* **fixture corpus** -- minimal positive/negative snippets per rule,
  linted in memory under pretend repo-relative paths so the committed
  scope policies are exercised exactly as on real files,
* **machinery** -- inline suppressions (justified vs bare), the baseline
  ratchet (subtract / stale / deterministic writes), config parsing
  (including the 3.9/3.10 minimal-TOML fallback), and the CLI surface
  (exit codes, formats), and
* **meta** -- ``repro-lint check`` over this repository is clean modulo
  the committed baseline, so the bit-identity contract stays
  lint-enforced on every tree that passes CI.
"""

import json
import subprocess
import sys
from pathlib import Path
from textwrap import dedent

import pytest

from repro.lint import baseline as baseline_module
from repro.lint.cli import main as lint_main
from repro.lint.config import LintConfig, _parse_toml_minimal, load_config
from repro.lint.engine import lint_source, parse_suppressions, resolve_rules
from repro.lint.rules import ALL_RULES, RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Rules resolved with their built-in default scopes (the committed
#: pyproject policy mirrors these; the meta-test covers the committed one).
RESOLVED = resolve_rules(ALL_RULES)

#: A path inside every deterministic-scope rule's default include set.
CORE = "src/repro/core/example.py"


def rule_ids(snippet, rel_path=CORE, resolved=RESOLVED):
    return [f.rule_id for f in lint_source(dedent(snippet), rel_path, resolved)]


# ---------------------------------------------------------------------------
# REP001 / REP007: randomness
# ---------------------------------------------------------------------------

class TestRandomnessRules:
    def test_global_stdlib_random_fires(self):
        snippet = """
            import random
            x = random.random()
        """
        assert rule_ids(snippet) == ["REP001"]

    def test_from_import_resolves(self):
        snippet = """
            from random import randint
            x = randint(0, 5)
        """
        assert rule_ids(snippet) == ["REP001"]

    def test_numpy_global_state_fires(self):
        snippet = """
            import numpy as np
            np.random.seed(0)
            x = np.random.randint(5)
        """
        assert rule_ids(snippet) == ["REP001", "REP001"]

    def test_unseeded_constructors_fire_seeded_do_not(self):
        assert rule_ids("import random\nr = random.Random()\n") == ["REP001"]
        assert rule_ids("import random\nr = random.Random(0)\n") == []
        assert rule_ids("import numpy as np\nr = np.random.default_rng()\n") == [
            "REP001"
        ]
        assert rule_ids("import numpy as np\nr = np.random.default_rng(7)\n") == []

    def test_system_random_always_fires(self):
        assert rule_ids("import random\nr = random.SystemRandom(3)\n") == ["REP001"]

    def test_instance_methods_are_fine(self):
        snippet = """
            import random
            rng = random.Random(3)
            x = rng.random() + rng.randint(0, 5)
        """
        assert rule_ids(snippet) == []

    def test_scope_policy_excludes_benchmarks(self):
        snippet = "import random\nx = random.random()\n"
        assert rule_ids(snippet, "benchmarks/bench_example.py") == []
        assert rule_ids(snippet, "src/repro/workloads/example.py") == ["REP001"]
        assert rule_ids(snippet, "src/repro/analysis/example.py") == []

    def test_salted_hash_fires_in_scope_only(self):
        snippet = "seed = hash(name) & 0xFFFF\n"
        assert rule_ids(snippet) == ["REP007"]
        assert rule_ids(snippet, "benchmarks/bench_example.py") == []


# ---------------------------------------------------------------------------
# REP002: wall clock
# ---------------------------------------------------------------------------

class TestWallClockRule:
    def test_time_and_datetime_reads_fire(self):
        snippet = """
            import time
            from datetime import datetime
            a = time.time()
            b = time.perf_counter()
            c = datetime.now()
        """
        assert rule_ids(snippet, "src/repro/sim/example.py") == ["REP002"] * 3

    def test_from_import_alias_resolves(self):
        snippet = """
            from time import perf_counter as pc
            started = pc()
        """
        assert rule_ids(snippet, "src/repro/sim/example.py") == ["REP002"]

    def test_simulated_clock_is_fine(self):
        snippet = """
            def step(clock):
                return clock.now_s + clock.dt_s
        """
        assert rule_ids(snippet, "src/repro/sim/example.py") == []

    def test_allow_sites_exempt_by_function_not_file(self):
        resolved = resolve_rules(
            ALL_RULES,
            {"REP002": {"allow_sites": ["src/repro/x.py::execute_cell"]}},
        )
        allowed = """
            import time
            def execute_cell():
                return time.perf_counter()
        """
        elsewhere = """
            import time
            def other():
                return time.perf_counter()
        """
        assert rule_ids(allowed, "src/repro/x.py", resolved) == []
        assert rule_ids(elsewhere, "src/repro/x.py", resolved) == ["REP002"]

    def test_committed_runner_sites_are_allowlisted(self):
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        resolved = resolve_rules(ALL_RULES, config.rule_overrides)
        snippet = """
            import time
            def execute_cell():
                return time.perf_counter()
        """
        assert rule_ids(snippet, "src/repro/experiments/runner.py", resolved) == []


# ---------------------------------------------------------------------------
# REP003: filesystem enumeration
# ---------------------------------------------------------------------------

class TestUnsortedEnumerationRule:
    def test_bare_listdir_fires(self):
        snippet = """
            import os
            for name in os.listdir(path):
                load(name)
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == ["REP003"]

    def test_sorted_listdir_is_fine(self):
        snippet = """
            import os
            for name in sorted(os.listdir(path)):
                load(name)
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == []

    def test_sorted_comprehension_is_fine(self):
        snippet = """
            import os
            paths = sorted(n for n in os.listdir(path) if n.endswith(".json"))
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == []

    def test_order_insensitive_consumers_are_fine(self):
        snippet = """
            import os
            count = len(os.listdir(path))
            names = set(os.listdir(path))
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == []

    def test_lambda_body_is_not_sanctioned_by_outer_sorted(self):
        snippet = """
            import os
            pick = sorted(roots, key=lambda r: os.listdir(r))
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == ["REP003"]

    def test_path_glob_methods_fire_and_apply_in_tests_scope(self):
        snippet = "victim = next(cache_dir.glob('*.json'))\n"
        assert rule_ids(snippet, "tests/test_example.py") == ["REP003"]
        assert rule_ids("x = sorted(cache_dir.glob('*.json'))[0]\n",
                        "tests/test_example.py") == []


# ---------------------------------------------------------------------------
# REP004: non-atomic persistence
# ---------------------------------------------------------------------------

class TestNonAtomicPersistenceRule:
    def test_bare_json_dump_fires(self):
        snippet = """
            import json
            def save(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == ["REP004"]

    def test_seam_function_is_sanctioned(self):
        snippet = """
            import json, os
            def atomic_write_json(path, payload):
                tmp = path + ".tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, path)
        """
        assert rule_ids(snippet, "src/repro/core/store.py") == []

    def test_json_dumps_is_fine(self):
        snippet = "import json\ntext = json.dumps({'a': 1})\n"
        assert rule_ids(snippet, "src/repro/core/store.py") == []


# ---------------------------------------------------------------------------
# REP005: batch-kernel reductions
# ---------------------------------------------------------------------------

class TestLaneCrossingReductionRule:
    BATCH = "src/repro/sim/batch.py"
    RECORDER = "src/repro/sim/recorder.py"

    def test_numpy_reductions_fire_in_batch_kernel(self):
        snippet = """
            import numpy as np
            total = np.sum(power, axis=1)
            avg = power.mean()
            dotted = np.einsum("ij,ij->i", a, b)
        """
        assert rule_ids(snippet, self.BATCH) == ["REP005"] * 3

    def test_matmul_operator_fires(self):
        assert rule_ids("c = a @ b\n", self.BATCH) == ["REP005"]

    def test_masked_cross_lane_reductions_still_fire(self):
        # Masking selects lanes; the reduction over the survivors still
        # reassociates.  Every masked spelling must be flagged exactly like
        # its unmasked counterpart.
        snippet = """
            import numpy as np
            survivors = np.sum(power[active_mask])
            gated = np.where(active_mask, power, 0.0).sum()
            compressed = power.compress(active_mask).mean()
        """
        assert rule_ids(snippet, self.BATCH) == ["REP005"] * 3

    def test_mask_bookkeeping_is_fine(self):
        # The masked loop's own machinery -- boolean combination, any(),
        # nonzero(), isnan(), row-zeroing -- never reassociates float ops.
        snippet = """
            import numpy as np
            record_mask = active_mask & (tick % cadence == 0)
            will_record = bool(record_mask.any())
            recorded = np.nonzero(record_mask)[0].tolist()
            due = np.isnan(last) | ((now - last) >= period)
            demanded[~active_mask] = 0.0
        """
        assert rule_ids(snippet, self.BATCH) == []

    def test_elementwise_and_builtin_sum_are_fine(self):
        snippet = """
            import numpy as np
            c = a + b * 2.0
            clamped = np.minimum(1.0, np.maximum(0.0, c))
            folded = sum(values)
        """
        assert rule_ids(snippet, self.BATCH) == []

    def test_scoped_to_masked_update_paths_only(self):
        snippet = "import numpy as np\nt = np.sum(x)\n"
        assert rule_ids(snippet, "src/repro/analysis/metrics.py") == []
        assert rule_ids(snippet, self.RECORDER) == ["REP005"]

    def test_current_batch_kernel_is_clean(self):
        text = (REPO_ROOT / "src/repro/sim/batch.py").read_text()
        assert [
            f.rule_id for f in lint_source(text, self.BATCH, RESOLVED)
        ] == []

    def test_current_batch_recorder_is_clean(self):
        text = (REPO_ROOT / "src/repro/sim/recorder.py").read_text()
        assert [
            f.rule_id for f in lint_source(text, self.RECORDER, RESOLVED)
        ] == []


# ---------------------------------------------------------------------------
# REP006: pool callables
# ---------------------------------------------------------------------------

class TestUnpicklablePoolCallableRule:
    RUNNER = "src/repro/experiments/example.py"

    def test_lambda_submit_fires(self):
        snippet = """
            def run(pool, cells):
                return [pool.submit(lambda c: c.run(), cell) for cell in cells]
        """
        assert rule_ids(snippet, self.RUNNER) == ["REP006"]

    def test_nested_def_by_name_fires(self):
        snippet = """
            def run(pool, cells):
                def work(cell):
                    return cell.run()
                return pool.map(work, cells)
        """
        assert rule_ids(snippet, self.RUNNER) == ["REP006"]

    def test_module_level_function_is_fine(self):
        snippet = """
            def work(cell):
                return cell.run()

            def run(pool, cells):
                return [pool.submit(work, cell) for cell in cells]
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_builtin_map_is_fine(self):
        snippet = "out = list(map(lambda x: x + 1, xs))\n"
        assert rule_ids(snippet, self.RUNNER) == []


# ---------------------------------------------------------------------------
# REP008: swallowed exceptions
# ---------------------------------------------------------------------------

class TestSwallowedExceptionRule:
    RUNNER = "src/repro/experiments/runner.py"

    def test_bare_except_with_pass_fires(self):
        snippet = """
            try:
                work()
            except:
                pass
        """
        assert rule_ids(snippet, self.RUNNER) == ["REP008"]

    def test_broad_exception_fires(self):
        snippet = """
            try:
                work()
            except Exception:
                result = None
        """
        assert rule_ids(snippet, self.RUNNER) == ["REP008"]

    def test_base_exception_and_tuple_member_fire(self):
        snippet = """
            try:
                work()
            except BaseException:
                result = None
            try:
                work()
            except (ValueError, Exception):
                result = None
        """
        assert rule_ids(snippet, self.RUNNER) == ["REP008", "REP008"]

    def test_specific_types_are_fine(self):
        snippet = """
            try:
                work()
            except (OSError, ValueError, KeyError):
                result = None
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_reraise_is_fine(self):
        snippet = """
            try:
                work()
            except Exception:
                cleanup()
                raise
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_recorded_traceback_is_fine(self):
        snippet = """
            import traceback
            try:
                work()
            except Exception:
                errors[key] = traceback.format_exc()
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_exc_info_handoff_is_fine(self):
        snippet = """
            import sys
            try:
                work()
            except Exception:
                report(sys.exc_info())
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_nested_raise_in_conditional_is_fine(self):
        snippet = """
            try:
                work()
            except Exception as exc:
                if fatal(exc):
                    raise
                result = None
        """
        assert rule_ids(snippet, self.RUNNER) == []

    def test_scoped_to_experiments_layer(self):
        snippet = """
            try:
                work()
            except Exception:
                pass
        """
        assert rule_ids(snippet, "src/repro/sim/example.py") == []

    def test_justified_suppression_on_except_line_silences(self):
        snippet = (
            "try:\n"
            "    work()\n"
            "except Exception:  # repro-lint: disable=REP008 -- fallback re-runs and records\n"
            "    result = None\n"
        )
        assert rule_ids(snippet, self.RUNNER) == []

    def test_committed_experiments_layer_is_clean(self):
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        resolved = resolve_rules(ALL_RULES, config.rule_overrides)
        root = REPO_ROOT / "src" / "repro" / "experiments"
        for path in sorted(root.glob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            findings = [
                f
                for f in lint_source(path.read_text(), rel, resolved)
                if f.rule_id == "REP008"
            ]
            assert findings == [], f"{rel}: {findings}"


# ---------------------------------------------------------------------------
# REP009: print() outside the CLI / harness surfaces
# ---------------------------------------------------------------------------

class TestPrintCallRule:
    def test_print_in_library_code_fires(self):
        snippet = """
            def deliver(result):
                print("done", result)
        """
        assert rule_ids(snippet, "src/repro/experiments/runner.py") == ["REP009"]

    def test_every_print_fires_once(self):
        snippet = """
            print("one")
            print("two")
        """
        assert rule_ids(snippet, CORE) == ["REP009", "REP009"]

    def test_method_named_print_is_fine(self):
        snippet = """
            def render(doc):
                doc.print()
        """
        assert rule_ids(snippet, CORE) == []

    def test_stderr_logging_helpers_are_out_of_scope(self):
        snippet = """
            import sys
            def warn(message):
                sys.stderr.write(message)
        """
        assert rule_ids(snippet, CORE) == []

    def test_tests_and_benchmarks_are_out_of_scope(self):
        snippet = "print('bench result')\n"
        assert rule_ids(snippet, "tests/test_example.py") == []
        assert rule_ids(snippet, "benchmarks/bench_example.py") == []

    def test_justified_suppression_silences(self):
        snippet = (
            "print('banner')  # repro-lint: disable=REP009 -- startup banner\n"
        )
        assert rule_ids(snippet, CORE) == []

    def test_committed_excludes_cover_the_cli_surfaces(self):
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        resolved = resolve_rules(ALL_RULES, config.rule_overrides)
        snippet = "print('progress line')\n"
        for surface in (
            "src/repro/experiments/cli.py",
            "src/repro/lint/cli.py",
            "src/repro/reliability/chaos.py",
        ):
            assert rule_ids(snippet, surface, resolved) == [], surface

    def test_committed_tree_is_print_clean(self):
        """No library module print()s: stdout belongs to the CLI layer."""
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        resolved = resolve_rules(ALL_RULES, config.rule_overrides)
        root = REPO_ROOT / "src"
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            findings = [
                f
                for f in lint_source(path.read_text(), rel, resolved)
                if f.rule_id == "REP009"
            ]
            assert findings == [], f"{rel}: {findings}"


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_justified_suppression_silences(self):
        snippet = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=REP001 -- demo corpus value\n"
        )
        assert rule_ids(snippet) == []

    def test_bare_suppression_is_ignored_and_annotated(self):
        snippet = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=REP001\n"
        )
        findings = lint_source(snippet, CORE, RESOLVED)
        assert [f.rule_id for f in findings] == ["REP001"]
        assert "suppression ignored" in findings[0].message

    def test_suppression_only_covers_named_rules(self):
        snippet = (
            "import random\n"
            "x = random.random()  # repro-lint: disable=REP002 -- wrong rule\n"
        )
        assert rule_ids(snippet) == ["REP001"]

    def test_parse_multiple_rules_and_justification(self):
        parsed = parse_suppressions(
            "a = 1  # repro-lint: disable=REP001, REP003 -- fixture\n"
        )
        assert parsed[1].rule_ids == ("REP001", "REP003")
        assert parsed[1].justified


# ---------------------------------------------------------------------------
# baseline ratchet
# ---------------------------------------------------------------------------

class TestBaseline:
    SNIPPET = "import random\nx = random.random()\n"

    def findings(self):
        return lint_source(self.SNIPPET, CORE, RESOLVED)

    def test_partition_subtracts_and_reports_stale(self):
        findings = self.findings()
        entries = [
            {"rule": "REP001", "path": CORE, "line": 2},
            {"rule": "REP001", "path": "src/repro/core/gone.py", "line": 9},
        ]
        new, baselined, stale = baseline_module.partition_findings(findings, entries)
        assert new == []
        assert [f.rule_id for f in baselined] == ["REP001"]
        assert [entry["path"] for entry in stale] == ["src/repro/core/gone.py"]

    def test_write_is_deterministic_and_schema_versioned(self, tmp_path):
        findings = self.findings()
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        baseline_module.write_baseline(str(path_a), findings)
        baseline_module.write_baseline(str(path_b), list(reversed(findings)))
        assert path_a.read_bytes() == path_b.read_bytes()
        data = json.loads(path_a.read_text())
        assert data["schema_version"] == baseline_module.BASELINE_SCHEMA_VERSION
        assert [e["rule"] for e in data["entries"]] == ["REP001"]

    def test_wrong_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 999, "entries": []}))
        with pytest.raises(ValueError, match="schema version"):
            baseline_module.load_baseline(str(path))

    def test_missing_baseline_is_empty(self, tmp_path):
        assert baseline_module.load_baseline(str(tmp_path / "nope.json")) == []


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------

class TestConfig:
    def test_committed_config_loads(self):
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        assert config.paths == ("src", "tests", "benchmarks")
        assert config.baseline == ".repro-lint-baseline.json"
        assert "REP002" in config.rule_overrides
        assert any(
            site.endswith("::execute_cell")
            for site in config.rule_overrides["REP002"]["allow_sites"]
        )

    def test_missing_file_gives_defaults(self, tmp_path):
        assert load_config(str(tmp_path / "nope.toml")) == LintConfig()

    def test_minimal_toml_fallback_parses_committed_subset(self):
        # The 3.9/3.10 fallback must agree with tomllib on our config.
        text = (REPO_ROOT / "pyproject.toml").read_text()
        parsed = _parse_toml_minimal(text)
        table = parsed["tool"]["repro-lint"]
        assert table["paths"] == ["src", "tests", "benchmarks"]
        assert table["REP005"]["include"] == [
            "src/repro/sim/batch.py",
            "src/repro/sim/recorder.py",
        ]
        assert table["REP002"]["allow_sites"] == [
            "src/repro/experiments/runner.py::execute_cell",
            "src/repro/experiments/runner.py::execute_cells_batched",
            "src/repro/reliability/clock.py::wall_now",
            "src/repro/reliability/clock.py::monotonic_now",
            "src/repro/obs/profile.py::timed",
        ]
        assert table["REP009"]["exclude"] == [
            "src/repro/experiments/cli.py",
            "src/repro/lint/cli.py",
            "src/repro/reliability/chaos.py",
        ]

    def test_rule_override_changes_scope(self):
        resolved = resolve_rules(
            ALL_RULES, {"REP001": {"include": ["benchmarks/"]}}
        )
        snippet = "import random\nx = random.random()\n"
        assert rule_ids(snippet, "benchmarks/bench_example.py", resolved) == [
            "REP001"
        ]
        assert rule_ids(snippet, CORE, resolved) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def write_tree(self, root):
        pkg = root / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import random\nx = random.random()\n")
        (root / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = ["src"]\n'
        )
        return root

    def test_check_reports_exact_location_and_exits_nonzero(self, tmp_path, capsys):
        self.write_tree(tmp_path)
        status = lint_main(["--root", str(tmp_path), "check"])
        out = capsys.readouterr().out
        assert status == 1
        assert "src/repro/core/bad.py:2:5: REP001" in out

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        self.write_tree(tmp_path)
        status = lint_main(["--root", str(tmp_path), "check", "--format", "github"])
        out = capsys.readouterr().out
        assert status == 1
        assert "::error file=src/repro/core/bad.py,line=2," in out
        assert "title=repro-lint REP001" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        self.write_tree(tmp_path)
        status = lint_main(["--root", str(tmp_path), "check", "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert status == 1
        assert report["findings"][0]["rule"] == "REP001"
        assert report["findings"][0]["path"] == "src/repro/core/bad.py"

    def test_baseline_roundtrip_then_fix_reports_stale(self, tmp_path, capsys):
        root = self.write_tree(tmp_path)
        assert lint_main(["--root", str(root), "baseline"]) == 0
        capsys.readouterr()
        # Baselined: check is clean.
        assert lint_main(["--root", str(root), "check"]) == 0
        capsys.readouterr()
        # Fix the hazard: check stays clean but points at the stale entry.
        (root / "src" / "repro" / "core" / "bad.py").write_text(
            "import random\nrng = random.Random(0)\nx = rng.random()\n"
        )
        assert lint_main(["--root", str(root), "check"]) == 0
        out = capsys.readouterr().out
        assert "stale baseline" in out

    def test_explain_unknown_rule_fails(self, capsys):
        assert lint_main(["explain", "REP999"]) == 2

    def test_explain_all_covers_every_rule(self, capsys):
        assert lint_main(["explain", "all"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES_BY_ID:
            assert rule_id in out


# ---------------------------------------------------------------------------
# meta: this repository is clean
# ---------------------------------------------------------------------------

class TestRepositoryIsClean:
    def test_repo_tree_is_clean_modulo_committed_baseline(self, capsys):
        status = lint_main(
            ["--root", str(REPO_ROOT), "check", "src", "tests", "benchmarks"]
        )
        out = capsys.readouterr().out
        assert status == 0, f"repro-lint found new hazards:\n{out}"

    def test_console_entry_point_runs(self):
        # `python -m repro.lint` mirrors the installed repro-lint script.
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "explain", "REP001"],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert result.returncode == 0
        assert "REP001" in result.stdout