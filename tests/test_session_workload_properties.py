"""Property tests for ``SessionWorkload`` segment boundaries.

The scenario-matrix harness replays multi-segment sessions through
:class:`repro.sim.engine.SessionWorkload`; these properties guarantee that a
session's demand stream is well-formed however the segments are sliced:
time is monotonically increasing across segment boundaries, no tick is lost
or duplicated when one app hands over to the next, and a drained session
degrades to the documented idle workload.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SessionWorkload
from repro.workloads.session import SessionSegment

DT_S = 1.0 / 60.0

APP_CHOICES = ("home", "facebook", "spotify", "web_browser")

# Segment plans: 1-3 distinct apps, each playing an exact number of ticks.
segment_plans = st.lists(
    st.sampled_from(APP_CHOICES), min_size=1, max_size=3, unique=True
).flatmap(
    lambda apps: st.tuples(
        st.just(apps),
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(apps),
            max_size=len(apps),
        ),
    )
)


def _build(apps, tick_counts, seed=0):
    segments = [
        SessionSegment(app, ticks * DT_S) for app, ticks in zip(apps, tick_counts)
    ]
    return SessionWorkload(segments, seed=seed)


@settings(max_examples=40, deadline=None)
@given(plan=segment_plans)
def test_time_is_strictly_monotonic_across_segments(plan):
    apps, tick_counts = plan
    workload = _build(apps, tick_counts)
    times = []
    while not workload.exhausted:
        times.append(workload.tick(DT_S).time_s)
    assert all(later > earlier for earlier, later in zip(times, times[1:]))
    # ...and the step size never deviates from one VSync period.
    for earlier, later in zip(times, times[1:]):
        assert later - earlier == pytest.approx(DT_S)


@settings(max_examples=40, deadline=None)
@given(plan=segment_plans)
def test_no_tick_lost_or_duplicated_at_boundaries(plan):
    apps, tick_counts = plan
    workload = _build(apps, tick_counts)
    emitted = []
    while not workload.exhausted:
        emitted.append(workload.tick(DT_S).app_name)
    assert len(emitted) == sum(tick_counts)
    # Every segment contributes exactly its tick budget, in order.
    expected = [app for app, ticks in zip(apps, tick_counts) for _ in range(ticks)]
    assert emitted == expected


@settings(max_examples=40, deadline=None)
@given(plan=segment_plans)
def test_post_exhausted_tick_is_documented_idle_workload(plan):
    apps, tick_counts = plan
    workload = _build(apps, tick_counts)
    while not workload.exhausted:
        last_time = workload.tick(DT_S).time_s
    for _ in range(3):  # stays idle however often it is ticked
        idle = workload.tick(DT_S)
        assert idle.app_name == "idle"
        assert idle.phase_name == "exhausted"
        assert idle.frames == []
        assert idle.background_work_mwu == {}
        assert idle.interaction_activity == 0.0
        assert idle.time_s > last_time


def test_fractional_segment_duration_rounds_up_to_whole_ticks():
    # A segment of 2.5 ticks still plays whole VSync periods: 3 of them.
    workload = SessionWorkload([SessionSegment("home", 2.5 * DT_S)], seed=1)
    count = 0
    while not workload.exhausted:
        workload.tick(DT_S)
        count += 1
    assert count == 3


def test_empty_segments_rejected():
    with pytest.raises(ValueError):
        SessionWorkload([])


# ---------------------------------------------------------------------------
# Long sessions: boundaries must be exact past the 10-minute mark.
#
# The pre-kernel implementation accumulated ``dt_s`` in floats and compared
# against ``duration_s - 1e-9``; over tens of thousands of ticks the rounding
# error can cross that epsilon and a segment gains or loses a tick.  Segment
# boundaries are now integer tick counts derived once per segment, so the
# budget is exact at any session length.
# ---------------------------------------------------------------------------


def test_long_session_boundaries_are_exact_past_ten_minutes():
    # 610 s (past the paper's 10-minute "long session" class) + 75.3 s.
    plan = [("home", 36_600), ("spotify", 4_519)]
    segments = [SessionSegment(app, ticks * DT_S) for app, ticks in plan]
    workload = SessionWorkload(segments, seed=3)
    emitted = {"home": 0, "spotify": 0}
    while not workload.exhausted:
        emitted[workload.tick(DT_S).app_name] += 1
    assert emitted == {app: ticks for app, ticks in plan}


def test_very_long_single_segment_has_exact_tick_budget():
    ticks = 72_001  # 20 minutes and one tick
    workload = SessionWorkload([SessionSegment("home", ticks * DT_S)], seed=5)
    count = 0
    while not workload.exhausted:
        workload.tick(DT_S)
        count += 1
    assert count == ticks


@settings(max_examples=15, deadline=None)
@given(
    plan=st.lists(
        st.sampled_from(APP_CHOICES), min_size=1, max_size=3, unique=True
    ).flatmap(
        lambda apps: st.tuples(
            st.just(apps),
            st.lists(
                st.integers(min_value=1, max_value=2_000),
                min_size=len(apps),
                max_size=len(apps),
            ),
        )
    )
)
def test_no_tick_lost_or_duplicated_on_larger_segments(plan):
    apps, tick_counts = plan
    workload = _build(apps, tick_counts)
    emitted = []
    while not workload.exhausted:
        emitted.append(workload.tick(DT_S).app_name)
    expected = [app for app, ticks in zip(apps, tick_counts) for _ in range(ticks)]
    assert emitted == expected
