"""Unit tests for the PPDW metric, the reward and the frame window."""

import pytest

from repro.core.frame_window import (
    FrameWindowConfig,
    FrameWindowMonitor,
    dequantise_fps,
    quantise_fps,
)
from repro.core.ppdw import (
    MIN_DELTA_T_C,
    PpdwBounds,
    RewardConfig,
    compute_ppdw,
    compute_reward,
)


# ---------------------------------------------------------------------------
# PPDW (Eq. 1 / Eq. 2)
# ---------------------------------------------------------------------------

class TestComputePpdw:
    def test_matches_equation_one(self):
        # PPDW = FPS / ((T - Ta) * P)
        assert compute_ppdw(60.0, 2.0, 41.0, 21.0) == pytest.approx(60.0 / (20.0 * 2.0))

    def test_zero_fps_gives_zero(self):
        assert compute_ppdw(0.0, 5.0, 60.0, 21.0) == 0.0

    def test_negative_fps_rejected(self):
        with pytest.raises(ValueError):
            compute_ppdw(-1.0, 5.0, 60.0, 21.0)

    def test_guard_when_at_ambient(self):
        value = compute_ppdw(30.0, 2.0, 21.0, 21.0)
        assert value == pytest.approx(30.0 / (MIN_DELTA_T_C * 2.0))

    def test_higher_power_lowers_ppdw(self):
        low = compute_ppdw(60.0, 2.0, 50.0, 21.0)
        high = compute_ppdw(60.0, 6.0, 50.0, 21.0)
        assert high < low

    def test_higher_temperature_lowers_ppdw(self):
        cool = compute_ppdw(60.0, 3.0, 40.0, 21.0)
        hot = compute_ppdw(60.0, 3.0, 80.0, 21.0)
        assert hot < cool

    def test_paper_figure4_trend_best_values_increase_with_fps(self):
        # Fig. 4: at matched (power, temperature) the PPDW grows with FPS.
        values = [compute_ppdw(fps, 5.0, 70.0, 21.0) for fps in (10, 20, 30, 40, 50, 60)]
        assert values == sorted(values)


class TestPpdwBounds:
    def test_from_platform_limits_ordering(self):
        bounds = PpdwBounds.from_platform_limits(
            fps_max=60.0,
            fps_least=1.0,
            power_max_w=15.0,
            power_least_w=1.0,
            temperature_max_c=95.0,
            temperature_least_c=25.0,
            ambient_c=21.0,
        )
        assert bounds.best > bounds.worst

    def test_normalise_clamps(self):
        bounds = PpdwBounds(worst=0.1, best=1.1)
        assert bounds.normalise(0.05) == 0.0
        assert bounds.normalise(2.0) == 1.0
        assert 0.0 < bounds.normalise(0.6) < 1.0

    def test_contains_matches_equation_two(self):
        bounds = PpdwBounds(worst=0.1, best=1.0)
        assert bounds.contains(0.5)
        assert bounds.contains(1.0)
        assert not bounds.contains(0.1)   # strict lower bound
        assert not bounds.contains(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PpdwBounds(worst=1.0, best=0.5)
        with pytest.raises(ValueError):
            PpdwBounds(worst=-0.1, best=1.0)


class TestReward:
    def test_meeting_target_at_lower_power_pays_more(self):
        at_high_power = compute_reward(60.0, 60.0, 6.0, 70.0, 21.0)
        at_low_power = compute_reward(60.0, 60.0, 2.5, 45.0, 21.0)
        assert at_low_power > at_high_power

    def test_fps_shortfall_penalised(self):
        met = compute_reward(60.0, 60.0, 3.0, 50.0, 21.0)
        missed = compute_reward(30.0, 60.0, 3.0, 50.0, 21.0)
        assert missed < met

    def test_frame_drops_penalised(self):
        clean = compute_reward(40.0, 40.0, 3.0, 50.0, 21.0, dropped_frames=0, demanded_frames=24)
        dropped = compute_reward(40.0, 40.0, 3.0, 50.0, 21.0, dropped_frames=12, demanded_frames=24)
        assert dropped < clean

    def test_zero_weights_reduce_to_pure_ppdw(self):
        config = RewardConfig(fps_shortfall_weight=0.0, frame_drop_weight=0.0, ppdw_scale=1.0)
        reward = compute_reward(30.0, 60.0, 3.0, 50.0, 21.0, config=config,
                                dropped_frames=10, demanded_frames=20)
        assert reward == pytest.approx(compute_ppdw(30.0, 3.0, 50.0, 21.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(fps_shortfall_weight=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(frame_drop_weight=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(ppdw_scale=0.0)


# ---------------------------------------------------------------------------
# FPS quantisation
# ---------------------------------------------------------------------------

class TestQuantisation:
    def test_sixty_levels_is_identity_on_integers(self):
        for fps in range(0, 61):
            assert quantise_fps(float(fps), levels=60) == fps

    def test_thirty_levels_halves_resolution(self):
        assert quantise_fps(60.0, levels=30) == 30
        assert quantise_fps(30.0, levels=30) == 15
        assert quantise_fps(1.0, levels=30) in (0, 1)

    def test_clamping(self):
        assert quantise_fps(1000.0, levels=30) == 30
        assert quantise_fps(-5.0, levels=30) == 0

    def test_dequantise_round_trip_within_bin(self):
        for fps in (0.0, 12.0, 30.0, 45.0, 60.0):
            level = quantise_fps(fps, levels=30)
            assert dequantise_fps(level, levels=30) == pytest.approx(fps, abs=1.0)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            quantise_fps(30.0, levels=0)
        with pytest.raises(ValueError):
            dequantise_fps(1, levels=0)


# ---------------------------------------------------------------------------
# Frame window
# ---------------------------------------------------------------------------

class TestFrameWindowConfig:
    def test_paper_defaults(self):
        config = FrameWindowConfig()
        assert config.sample_period_s == pytest.approx(0.025)
        assert config.window_s == pytest.approx(4.0)
        # 4 s at 25 ms sampling = 160 samples, as stated in Section IV-A.
        assert config.samples_per_window == 160
        assert config.quantisation_levels == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameWindowConfig(sample_period_s=0.0)
        with pytest.raises(ValueError):
            FrameWindowConfig(window_s=0.01)
        with pytest.raises(ValueError):
            FrameWindowConfig(quantisation_levels=0)


class TestFrameWindowMonitor:
    def test_respects_25ms_cadence(self):
        monitor = FrameWindowMonitor()
        assert monitor.observe(0.000, 60.0) is True
        assert monitor.observe(0.010, 60.0) is False   # too soon
        assert monitor.observe(0.025, 60.0) is True
        assert monitor.sample_count == 2

    def test_clock_restart_resets_the_cadence(self):
        # A new training episode (or an agent restored from an artifact)
        # restarts the session clock at zero; the monitor must keep sampling
        # instead of rejecting everything until the new clock catches up
        # with the old one.
        monitor = FrameWindowMonitor()
        assert monitor.observe(59.975, 60.0) is True
        assert monitor.observe(0.000, 30.0) is True   # clock went backwards
        assert monitor.observe(0.010, 30.0) is False  # cadence restarted here
        assert monitor.observe(0.025, 30.0) is True
        assert monitor.sample_count == 3

    def test_mode_of_constant_signal(self):
        monitor = FrameWindowMonitor()
        for i in range(200):
            monitor.observe(i * 0.025, 58.0)
        assert monitor.is_full
        assert monitor.target_fps() == pytest.approx(58.0, abs=2.0)

    def test_mode_picks_dominant_plateau(self):
        monitor = FrameWindowMonitor()
        t = 0.0
        # 70 % of the window at ~12 FPS (reading), 30 % at ~58 FPS (scrolling).
        for i in range(112):
            monitor.observe(t, 12.0)
            t += 0.025
        for i in range(48):
            monitor.observe(t, 58.0)
            t += 0.025
        assert monitor.target_fps() == pytest.approx(12.0, abs=2.0)

    def test_tie_breaks_towards_higher_fps(self):
        monitor = FrameWindowMonitor(FrameWindowConfig(window_s=1.0, sample_period_s=0.025))
        t = 0.0
        for _ in range(20):
            monitor.observe(t, 10.0)
            t += 0.025
        for _ in range(20):
            monitor.observe(t, 50.0)
            t += 0.025
        assert monitor.target_fps() >= 48.0

    def test_sliding_window_forgets_old_behaviour(self):
        monitor = FrameWindowMonitor()
        t = 0.0
        for _ in range(160):
            monitor.observe(t, 58.0)
            t += 0.025
        for _ in range(160):
            monitor.observe(t, 2.0)
            t += 0.025
        assert monitor.target_fps() < 10.0

    def test_empty_window_targets_zero(self):
        assert FrameWindowMonitor().target_fps() == 0.0

    def test_histogram_and_reset(self):
        monitor = FrameWindowMonitor()
        for i in range(10):
            monitor.observe(i * 0.025, 30.0)
        assert monitor.histogram()
        assert monitor.last_fps == 30.0
        monitor.reset()
        assert monitor.sample_count == 0
        assert monitor.last_fps == 0.0
