"""SimulationClock: tick accounting and the exact-multiple duration contract.

``ticks_for`` converts a duration to a whole number of ticks.  The sharp
edge is an exact multiple of the tick length: at 60 Hz the product
``k * (1 / 60)`` lands a few ulp below or above ``k / 60`` for many ``k``,
so the naive ``int(duration / dt)`` truncation silently drops a whole tick
(``k = 7`` is the smallest 60 Hz failure).  Dropping a tick shifts every
recorded stream by one sample and breaks golden-hash parity between a
duration-driven run and a tick-driven one, so the rounding contract is
pinned here as a property across large ``k``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import SimulationClock


REFRESH_RATES_HZ = (60.0, 90.0, 120.0, 144.0)


class TestTicksFor:
    @given(
        k=st.integers(min_value=0, max_value=10**9),
        refresh_hz=st.sampled_from(REFRESH_RATES_HZ),
    )
    @settings(max_examples=400)
    def test_exact_multiples_round_trip(self, k: int, refresh_hz: float) -> None:
        """``ticks_for(k * dt_s) == k`` for any whole number of ticks ``k``.

        This is the contract every duration-driven entry point leans on:
        ``run(duration_s=trace.duration_s)`` must execute exactly
        ``trace.ticks`` ticks, or replaying a recorded trace diverges from
        the session that produced it.
        """
        clock = SimulationClock(dt_s=1.0 / refresh_hz)
        assert clock.ticks_for(k * clock.dt_s) == k

    @given(k=st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=200)
    def test_truncation_would_fail_where_rounding_holds(self, k: int) -> None:
        """Document *why* rounding: truncating drops ticks rounding keeps.

        Not every ``k`` misbehaves, so the property asserts the implication:
        whenever the float quotient lands below ``k`` (where ``int()`` would
        lose a tick), ``ticks_for`` still lands exactly on ``k``.
        """
        dt_s = 1.0 / 60.0
        clock = SimulationClock(dt_s=dt_s)
        quotient = (k * dt_s) / dt_s
        if int(quotient) != k:  # the truncation bug's trigger condition
            assert clock.ticks_for(k * dt_s) == k

    def test_known_60hz_truncation_trigger(self) -> None:
        """k = 31 at 60 Hz: the smallest case where int() truncation fails."""
        clock = SimulationClock(dt_s=1.0 / 60.0)
        duration = 31 * clock.dt_s
        assert int(duration / clock.dt_s) == 30  # the bug this API avoids
        assert clock.ticks_for(duration) == 31

    def test_fractional_durations_round_to_nearest_tick(self) -> None:
        clock = SimulationClock(dt_s=0.1)
        assert clock.ticks_for(0.0) == 0
        assert clock.ticks_for(0.24) == 2
        assert clock.ticks_for(0.26) == 3

    def test_negative_duration_rejected(self) -> None:
        with pytest.raises(ValueError):
            SimulationClock(dt_s=0.1).ticks_for(-1.0)

    def test_numpy_scalar_durations_return_python_int(self) -> None:
        """NumPy float64 durations (batch paths) still yield a plain int."""
        np = pytest.importorskip("numpy")
        clock = SimulationClock(dt_s=1.0 / 60.0)
        ticks = clock.ticks_for(np.float64(7 * clock.dt_s))
        assert ticks == 7
        assert type(ticks) is int


class TestClockBasics:
    def test_advance_and_reset(self) -> None:
        clock = SimulationClock(dt_s=0.5)
        assert clock.now_s == 0.0
        assert clock.advance() == 0.5
        assert clock.advance() == 1.0
        assert clock.ticks == 2
        clock.reset()
        assert clock.ticks == 0
        assert clock.now_s == 0.0

    def test_nonpositive_dt_rejected(self) -> None:
        with pytest.raises(ValueError):
            SimulationClock(dt_s=0.0)
