"""Unit tests for state discretisation and the 9-action space."""

import pytest

from repro.core.actions import Action, ActionDirection, ActionSpace
from repro.core.state import NextState, StateDiscretiser, StateDiscretiserConfig
from repro.governors.base import GovernorObservation
from repro.soc.platform import exynos9810


@pytest.fixture
def clusters():
    return exynos9810().build_clusters()


def observation(clusters, fps=30.0, power=3.0, t_big=45.0, t_dev=30.0):
    return GovernorObservation(
        time_s=1.0,
        dt_s=0.1,
        fps=fps,
        utilisations={name: 0.5 for name in clusters},
        frequencies_mhz={n: c.current_frequency_mhz for n, c in clusters.items()},
        max_limits_mhz={n: c.max_limit_frequency_mhz for n, c in clusters.items()},
        power_w=power,
        temperature_big_c=t_big,
        temperature_device_c=t_dev,
    )


# ---------------------------------------------------------------------------
# Action space
# ---------------------------------------------------------------------------

class TestActionSpace:
    def test_paper_has_nine_actions_for_three_clusters(self):
        space = ActionSpace(["big", "little", "gpu"])
        assert len(space) == 9
        labels = space.labels()
        assert "big_frequency_up" in labels
        assert "gpu_frequency_down" in labels
        assert "little_frequency_hold" in labels

    def test_three_actions_per_cluster(self):
        space = ActionSpace(["cpu"])
        assert len(space) == 3

    def test_duplicate_clusters_rejected(self):
        with pytest.raises(ValueError):
            ActionSpace(["big", "big"])
        with pytest.raises(ValueError):
            ActionSpace([])

    def test_apply_down_moves_maxfreq_one_step(self, clusters):
        space = ActionSpace(["big", "little", "gpu"])
        start = clusters["big"].max_limit_index
        index = space.index_of(Action("big", ActionDirection.DOWN))
        applied = space.apply(index, clusters)
        assert applied.cluster_name == "big"
        assert clusters["big"].max_limit_index == start - 1

    def test_apply_up_clamps_at_top(self, clusters):
        space = ActionSpace(["big", "little", "gpu"])
        index = space.index_of(Action("gpu", ActionDirection.UP))
        space.apply(index, clusters)
        assert clusters["gpu"].max_limit_index == len(clusters["gpu"].opp_table) - 1

    def test_apply_hold_changes_nothing(self, clusters):
        space = ActionSpace(["big", "little", "gpu"])
        before = {n: c.max_limit_index for n, c in clusters.items()}
        for hold_index in space.hold_indices():
            space.apply(hold_index, clusters)
        after = {n: c.max_limit_index for n, c in clusters.items()}
        assert before == after

    def test_apply_missing_cluster_is_noop(self, clusters):
        space = ActionSpace(["big", "little", "gpu", "npu"])
        index = space.index_of(Action("npu", ActionDirection.DOWN))
        space.apply(index, clusters)  # must not raise

    def test_apply_out_of_range_index(self, clusters):
        space = ActionSpace(["big"])
        with pytest.raises(IndexError):
            space.apply(99, clusters)

    def test_only_one_cluster_changes_per_action(self, clusters):
        space = ActionSpace(["big", "little", "gpu"])
        index = space.index_of(Action("little", ActionDirection.DOWN))
        before = {n: c.max_limit_index for n, c in clusters.items()}
        space.apply(index, clusters)
        changed = [n for n, c in clusters.items() if c.max_limit_index != before[n]]
        assert changed == ["little"]

    def test_direction_steps(self):
        assert ActionDirection.UP.step == 1
        assert ActionDirection.DOWN.step == -1
        assert ActionDirection.HOLD.step == 0


# ---------------------------------------------------------------------------
# State discretisation
# ---------------------------------------------------------------------------

class TestStateDiscretiserConfig:
    def test_state_space_size(self):
        config = StateDiscretiserConfig(
            cluster_order=("a", "b"),
            frequency_bins=3,
            fps_bins=4,
            target_fps_bins=4,
            power_bins=2,
            temperature_bins=2,
            device_temperature_bins=1,
        )
        assert config.state_space_size == 3 * 3 * 5 * 5 * 2 * 2 * 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StateDiscretiserConfig(frequency_bins=0)
        with pytest.raises(ValueError):
            StateDiscretiserConfig(cluster_order=())
        with pytest.raises(ValueError):
            StateDiscretiserConfig(max_temperature_c=10.0, ambient_c=21.0)


class TestStateDiscretiser:
    def test_state_is_hashable_and_stable(self, clusters):
        discretiser = StateDiscretiser()
        state_a = discretiser.discretise(observation(clusters), clusters, target_fps=30.0)
        state_b = discretiser.discretise(observation(clusters), clusters, target_fps=30.0)
        assert state_a == state_b
        assert hash(state_a) == hash(state_b)
        assert isinstance(state_a, NextState)
        assert len(state_a.as_tuple()) == 3 + 5

    def test_frequency_bin_tracks_operating_point(self, clusters):
        discretiser = StateDiscretiser()
        clusters["big"].set_frequency_index(0)
        low = discretiser.frequency_bin(clusters["big"])
        clusters["big"].set_frequency_index(17)
        high = discretiser.frequency_bin(clusters["big"])
        assert low == 0
        assert high == discretiser.config.frequency_bins - 1

    def test_fps_and_target_bins_change_state(self, clusters):
        discretiser = StateDiscretiser()
        slow = discretiser.discretise(observation(clusters, fps=5.0), clusters, target_fps=5.0)
        fast = discretiser.discretise(observation(clusters, fps=58.0), clusters, target_fps=58.0)
        assert slow != fast
        assert fast.fps_bin > slow.fps_bin
        assert fast.target_fps_bin > slow.target_fps_bin

    def test_power_and_temperature_bins(self, clusters):
        discretiser = StateDiscretiser()
        cold = discretiser.discretise(
            observation(clusters, power=1.0, t_big=25.0), clusters, target_fps=30.0
        )
        hot = discretiser.discretise(
            observation(clusters, power=11.0, t_big=90.0), clusters, target_fps=30.0
        )
        assert hot.power_bin >= cold.power_bin
        assert hot.temperature_big_bin >= cold.temperature_big_bin

    def test_values_out_of_range_are_clamped(self, clusters):
        discretiser = StateDiscretiser()
        state = discretiser.discretise(
            observation(clusters, power=1000.0, t_big=500.0, fps=500.0),
            clusters,
            target_fps=500.0,
        )
        cfg = discretiser.config
        assert state.power_bin == cfg.power_bins - 1
        assert state.temperature_big_bin == cfg.temperature_bins - 1
        assert state.fps_bin <= cfg.fps_bins

    def test_missing_cluster_maps_to_zero_bin(self, clusters):
        config = StateDiscretiserConfig(cluster_order=("big", "npu"))
        discretiser = StateDiscretiser(config)
        state = discretiser.discretise(observation(clusters), clusters, target_fps=30.0)
        assert state.frequency_bins[1] == 0

    def test_single_bin_axes_collapse(self, clusters):
        config = StateDiscretiserConfig(
            power_bins=1, temperature_bins=1, device_temperature_bins=1
        )
        discretiser = StateDiscretiser(config)
        a = discretiser.discretise(observation(clusters, power=1.0, t_big=25.0), clusters, 30.0)
        b = discretiser.discretise(observation(clusters, power=11.0, t_big=90.0), clusters, 30.0)
        assert a.power_bin == b.power_bin == 0
        assert a.temperature_big_bin == b.temperature_big_bin == 0
