"""Trained-agent artifact pipeline: serialisation, store, train-once.

The pipeline's contract has three layers, each pinned here:

* a :class:`NextAgent` round-trips through JSON with *all* mutable state
  (Q-tables, per-app learner epsilons/updates, RNG, frame window, step
  accounting), so a restored agent evaluates bit-identically,
* an :class:`AgentArtifact` freezes a trained agent under a content
  fingerprint derived from its :class:`TrainingSpec` plus agent config, and
* the :class:`ArtifactStore` trains each distinct spec exactly once and
  serves every later request from the stored artifact.
"""

import json

import pytest

import repro.experiments.artifacts as artifacts_module
from repro.core.agent import AgentConfig, NextAgent
from repro.core.artifact import ARTIFACT_SCHEMA_VERSION, AgentArtifact, TrainingSpec
from repro.core.governor import NextGovernor
from repro.core.qlearning import QLearningConfig
from repro.experiments.artifacts import ArtifactStore, train_artifact
from repro.sim.experiment import pretrained_next_governor, run_app_session
from repro.soc.platform import generic_two_cluster_soc

APP = "home"


@pytest.fixture(scope="module")
def platform():
    return generic_two_cluster_soc()


@pytest.fixture(scope="module")
def trained_agent(platform):
    governor = pretrained_next_governor(
        (APP,), platform=platform, episodes=1, episode_duration_s=4.0, seed=5
    )
    return governor.agent


@pytest.fixture(scope="module")
def tiny_spec():
    return TrainingSpec(
        apps=(APP,),
        platform="generic-two-cluster",
        episodes=1,
        episode_duration_s=4.0,
        seed=5,
    )


# ---------------------------------------------------------------------------
# NextAgent serialisation
# ---------------------------------------------------------------------------

class TestAgentSerialisation:
    def test_round_trip_is_json_stable(self, trained_agent):
        data = json.loads(json.dumps(trained_agent.to_dict()))
        restored = NextAgent.from_dict(data)
        assert restored.to_dict() == data

    def test_learner_state_survives(self, trained_agent):
        restored = NextAgent.from_dict(trained_agent.to_dict())
        original = trained_agent._learners[APP]
        rebuilt = restored._learners[APP]
        assert rebuilt.epsilon == original.epsilon
        assert rebuilt.update_count == original.update_count
        assert rebuilt.exploring == original.exploring
        assert restored.steps_for(APP) == trained_agent.steps_for(APP)
        assert restored.training_time_s(APP) == trained_agent.training_time_s(APP)
        assert restored.cumulative_reward == trained_agent.cumulative_reward
        assert restored.recent_td_error() == trained_agent.recent_td_error()
        assert restored.qtable_size(APP) == trained_agent.qtable_size(APP)
        assert restored.training == trained_agent.training

    def test_greedy_evaluation_is_bit_identical(self, platform, trained_agent):
        # The acceptance criterion: trained -> saved -> loaded evaluates
        # exactly like the original agent, sample for sample.
        original = NextAgent.from_dict(trained_agent.to_dict())
        restored = NextAgent.from_dict(
            json.loads(json.dumps(trained_agent.to_dict()))
        )
        results = [
            run_app_session(
                APP,
                NextGovernor(agent=agent, training=False),
                duration_s=4.0,
                platform=platform,
                seed=9,
            )
            for agent in (original, restored)
        ]
        assert results[0].recorder.samples == results[1].recorder.samples

    def test_config_round_trip(self):
        config = AgentConfig(
            cluster_order=("big", "little"),
            qlearning=QLearningConfig(learning_rate=0.5, epsilon_start=0.3),
            ambient_c=25.0,
        )
        rebuilt = AgentConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.discretiser.cluster_order == ("big", "little")


# ---------------------------------------------------------------------------
# TrainingSpec
# ---------------------------------------------------------------------------

class TestTrainingSpec:
    def test_dict_round_trip(self, tiny_spec):
        assert TrainingSpec.from_dict(tiny_spec.to_dict()) == tiny_spec

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingSpec(apps=())
        with pytest.raises(ValueError):
            TrainingSpec(apps=("a", "a"))
        with pytest.raises(ValueError):
            TrainingSpec(apps=("a",), episodes=0)
        with pytest.raises(ValueError):
            TrainingSpec(apps=("a",), episode_duration_s=0.0)

    def test_fingerprint_sensitivity(self, tiny_spec):
        from dataclasses import replace

        base = tiny_spec.fingerprint()
        assert tiny_spec.fingerprint() == base  # stable
        for change in (
            {"apps": (APP, "facebook")},
            {"platform": "exynos9810"},
            {"episodes": 2},
            {"episode_duration_s": 5.0},
            {"seed": 6},
            {"config_overrides": (("warm_start_temperature_c", 30.0),)},
        ):
            assert replace(tiny_spec, **change).fingerprint() != base
        # the agent configuration is part of the artifact's identity
        assert tiny_spec.fingerprint(AgentConfig(ambient_c=30.0)) != base

    def test_config_overrides_round_trip_and_training(self, tiny_spec):
        from dataclasses import replace

        spec = replace(
            tiny_spec, config_overrides=(("warm_start_temperature_c", 40.0),)
        )
        assert TrainingSpec.from_dict(spec.to_dict()) == spec
        # Training under the override actually changes the learned policy
        # environment: the artifact differs from the override-free one.
        assert train_artifact(spec).agent_state != train_artifact(tiny_spec).agent_state


# ---------------------------------------------------------------------------
# AgentArtifact
# ---------------------------------------------------------------------------

class TestAgentArtifact:
    def test_capture_save_load_round_trip(self, trained_agent, tiny_spec, tmp_path):
        artifact = AgentArtifact.capture(tiny_spec, trained_agent)
        path = artifact.save(str(tmp_path / "agent.json"))
        loaded = AgentArtifact.load(path)
        assert loaded.to_dict() == artifact.to_dict()
        assert loaded.fingerprint == tiny_spec.fingerprint(trained_agent.config)

    def test_load_rejects_tampered_content(self, trained_agent, tiny_spec, tmp_path):
        artifact = AgentArtifact.capture(tiny_spec, trained_agent)
        path = tmp_path / "agent.json"
        data = artifact.to_dict()
        data["spec"]["episodes"] += 1  # content no longer matches fingerprint
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="fingerprint"):
            AgentArtifact.load(str(path))

    def test_load_rejects_wrong_schema_version(self, trained_agent, tiny_spec, tmp_path):
        artifact = AgentArtifact.capture(tiny_spec, trained_agent)
        data = artifact.to_dict()
        data["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        path = tmp_path / "agent.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            AgentArtifact.load(str(path))

    def test_build_governor_is_frozen_greedy(self, trained_agent, tiny_spec):
        artifact = AgentArtifact.capture(tiny_spec, trained_agent)
        governor = artifact.build_governor()
        assert governor.training is False
        assert governor.agent is not trained_agent  # a fresh instance
        assert governor.agent.qtable_size(APP) == trained_agent.qtable_size(APP)

    def test_restored_agent_frame_window_keeps_sampling(self, platform):
        # Regression: the serialised cadence clock points at the end of the
        # last training episode (~10 s here); an evaluation session
        # restarting at t=0 must still record frame samples (live target
        # FPS), not freeze the window at the training-era mode until the new
        # clock catches up with the old one.
        spec = TrainingSpec(
            apps=(APP,),
            platform="generic-two-cluster",
            episodes=1,
            episode_duration_s=10.0,
            seed=5,
        )
        governor = train_artifact(spec).build_governor()
        stale_clock = governor.agent.frame_window.state_dict()["last_sample_time_s"]
        assert stale_clock > 9.0  # the artifact carries the training-era clock
        run_app_session(APP, governor, duration_s=4.0, platform=platform, seed=9)
        fresh_clock = governor.agent.frame_window.state_dict()["last_sample_time_s"]
        assert fresh_clock < 5.0  # sampling resumed on the evaluation clock


# ---------------------------------------------------------------------------
# train_artifact / ArtifactStore
# ---------------------------------------------------------------------------

class TestTrainArtifact:
    def test_training_is_deterministic(self, tiny_spec):
        first = train_artifact(tiny_spec)
        second = train_artifact(tiny_spec)
        assert first.to_dict() == second.to_dict()
        assert first.training_results and first.training_results[0]["app_name"] == APP

    def test_artifact_equals_in_memory_capture(self, tiny_spec):
        # The JSON normalisation in capture() guarantees a freshly trained
        # artifact is byte-for-byte what a store would serve back.
        artifact = train_artifact(tiny_spec)
        assert (
            json.loads(json.dumps(artifact.to_dict())) == artifact.to_dict()
        )


class TestArtifactStore:
    def test_trains_each_spec_exactly_once(self, tiny_spec, tmp_path):
        store = ArtifactStore(str(tmp_path))
        artifacts, errors = store.ensure([tiny_spec, tiny_spec])
        assert errors == {}
        assert store.trained_count == 1 and store.reused_count == 0
        assert set(artifacts) == {tiny_spec.fingerprint()}
        # A second resolution (same store) reuses the memory copy.
        _, errors = store.ensure([tiny_spec])
        assert errors == {}
        assert store.trained_count == 1 and store.reused_count == 1

    def test_disk_persistence_across_store_instances(self, tiny_spec, tmp_path):
        first = ArtifactStore(str(tmp_path))
        first.ensure([tiny_spec])
        assert first.trained_count == 1
        second = ArtifactStore(str(tmp_path))
        artifacts, errors = second.ensure([tiny_spec])
        assert errors == {}
        assert second.trained_count == 0 and second.reused_count == 1
        fingerprint = tiny_spec.fingerprint()
        assert artifacts[fingerprint].to_dict() == first.load(tiny_spec).to_dict()

    def test_corrupt_artifact_file_is_retrained(self, tiny_spec, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        path = tmp_path / f"{tiny_spec.fingerprint()}.agent.json"
        path.write_text("{not json")
        fresh = ArtifactStore(str(tmp_path))
        fresh.ensure([tiny_spec])
        assert fresh.trained_count == 1  # corrupt entry treated as a miss
        assert AgentArtifact.load(str(path)).fingerprint == tiny_spec.fingerprint()

    def test_memory_only_store_deduplicates(self, tiny_spec):
        store = ArtifactStore(None)
        store.ensure([tiny_spec])
        store.ensure([tiny_spec])
        assert store.trained_count == 1 and store.reused_count == 1

    def test_training_failure_is_isolated(self, tiny_spec, monkeypatch):
        bad_spec = TrainingSpec(
            apps=("facebook",),
            platform="generic-two-cluster",
            episodes=1,
            episode_duration_s=4.0,
        )

        real = artifacts_module.train_artifact

        def crash_on_facebook(spec, agent_config=None):
            if "facebook" in spec.apps:
                raise RuntimeError("boom")
            return real(spec, agent_config)

        monkeypatch.setattr(artifacts_module, "train_artifact", crash_on_facebook)
        store = ArtifactStore(None)
        artifacts, errors = store.ensure([tiny_spec, bad_spec])
        assert tiny_spec.fingerprint() in artifacts
        assert "boom" in errors[bad_spec.fingerprint()]
        assert store.trained_count == 1

    def test_entries_lists_stored_artifacts(self, tiny_spec, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        listed = ArtifactStore(str(tmp_path)).entries()
        assert [entry.fingerprint for entry in listed] == [tiny_spec.fingerprint()]


class TestArtifactStoreSharedDirectory:
    """Two sweep runners sharing one ``--artifact-dir`` must stay consistent.

    The store's crash-safety contract is write-then-rename: a reader either
    sees a complete artifact or none, a torn/truncated file is treated as a
    miss and retrained, and a second runner reuses (never corrupts, never
    double-trains within reach of) what the first one persisted.
    """

    def test_second_runner_reuses_instead_of_retraining(self, tiny_spec, tmp_path):
        # Two independent store instances over one directory model two
        # runner processes sharing --artifact-dir sequentially.
        calls = []
        real = artifacts_module.train_artifact

        def counting(spec, agent_config=None):
            calls.append(spec.fingerprint(agent_config))
            return real(spec, agent_config)

        first = ArtifactStore(str(tmp_path))
        second = ArtifactStore(str(tmp_path))
        try:
            artifacts_module.train_artifact = counting
            a, errors_a = first.ensure([tiny_spec])
            b, errors_b = second.ensure([tiny_spec])
        finally:
            artifacts_module.train_artifact = real
        assert errors_a == errors_b == {}
        assert calls == [tiny_spec.fingerprint()]  # trained exactly once
        fingerprint = tiny_spec.fingerprint()
        assert a[fingerprint].to_dict() == b[fingerprint].to_dict()

    def test_truncated_artifact_json_is_detected_and_retrained(
        self, tiny_spec, tmp_path
    ):
        # A valid JSON *prefix* (torn non-atomic write) must be a miss, not
        # a crash -- and the sweep retrains and heals the file.
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        path = tmp_path / f"{tiny_spec.fingerprint()}.agent.json"
        path.write_text(path.read_text()[:200])
        fresh = ArtifactStore(str(tmp_path))
        artifacts, errors = fresh.ensure([tiny_spec])
        assert errors == {}
        assert fresh.trained_count == 1
        assert AgentArtifact.load(str(path)).fingerprint == tiny_spec.fingerprint()
        assert tiny_spec.fingerprint() in artifacts

    def test_interrupted_write_leaves_previous_artifact_intact(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        # Crash mid-save: the staging file dies, the published artifact
        # survives byte-for-byte (the write-then-rename guarantee).
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        path = tmp_path / f"{tiny_spec.fingerprint()}.agent.json"
        published = path.read_text()

        import repro.core.persistence as persistence_module

        def crash_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(persistence_module.os, "replace", crash_replace)
        artifact = store.load(tiny_spec)
        with pytest.raises(OSError):
            artifact.save(str(path))
        monkeypatch.undo()
        assert path.read_text() == published
        reader = ArtifactStore(str(tmp_path))
        assert reader.load(tiny_spec).to_dict() == artifact.to_dict()

    def test_interrupted_qtable_save_leaves_previous_files_intact(
        self, trained_agent, tmp_path, monkeypatch
    ):
        # QTableStore.save persists through the same write-then-rename seam
        # (it used to json.dump into a bare open(path, "w"), so a crash
        # mid-write left a truncated table that later loads raised on).
        store = trained_agent.store
        directory = tmp_path / "qtables"
        paths = store.save(str(directory))
        assert paths
        published = {path: open(path, encoding="utf-8").read() for path in paths}

        import repro.core.persistence as persistence_module

        def crash_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(persistence_module.os, "replace", crash_replace)
        with pytest.raises(OSError):
            store.save(str(directory))
        monkeypatch.undo()
        for path, text in published.items():
            assert open(path, encoding="utf-8").read() == text
        from repro.core.qtable import QTableStore

        reloaded = QTableStore.load(
            str(directory), store.action_count, initial_q=store.initial_q
        )
        assert reloaded.to_dict() == store.to_dict()

    def test_leftover_staging_files_are_ignored(self, tiny_spec, tmp_path):
        # A crashed writer's .tmp.<pid> debris must confuse neither load()
        # nor entries().
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        debris = tmp_path / f"{tiny_spec.fingerprint()}.agent.json.tmp.12345"
        debris.write_text("{torn")
        listed = ArtifactStore(str(tmp_path)).entries()
        assert [entry.fingerprint for entry in listed] == [tiny_spec.fingerprint()]
        assert ArtifactStore(str(tmp_path)).load(tiny_spec) is not None

    def test_concurrent_writers_cannot_clobber_each_other(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        # Two processes saving the same fingerprint stage under different
        # PID-suffixed names; whichever rename lands last, the published
        # file is one writer's complete document.
        store = ArtifactStore(str(tmp_path))
        store.ensure([tiny_spec])
        artifact = store.load(tiny_spec)
        path = tmp_path / f"{tiny_spec.fingerprint()}.agent.json"

        import repro.core.persistence as persistence_module

        real_replace = persistence_module.os.replace

        def racing_replace(src, dst):
            # The "other runner" publishes between our write and rename.
            # Restore the real rename so its publish completes, and give it
            # its own PID so its staging file cannot collide with ours.
            monkeypatch.setattr(persistence_module.os, "replace", real_replace)
            monkeypatch.setattr(persistence_module.os, "getpid", lambda: 99999)
            other = ArtifactStore(str(tmp_path))
            other.store(artifact)
            return real_replace(src, dst)

        monkeypatch.setattr(persistence_module.os, "replace", racing_replace)
        artifact.save(str(path))
        assert AgentArtifact.load(str(path)).to_dict() == artifact.to_dict()
        assert not any(tmp_path.glob("*.tmp.*"))  # no staging debris left
