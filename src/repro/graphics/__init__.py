"""Display pipeline substrate: VSync, buffering, frame rendering and FPS.

The paper's QoS signal is the frame rate produced by Android's display
pipeline: applications render into two back buffers, the panel scans out the
front buffer at every VSync (16.67 ms on the 60 Hz Note 9 panel), and a frame
that misses its VSync is a dropped frame the user perceives as stutter.

This package models that pipeline at frame granularity:

* :class:`~repro.graphics.vsync.VsyncClock` produces VSync edges,
* :class:`~repro.graphics.vsync.BufferQueue` tracks the front/back buffers,
* :class:`~repro.graphics.pipeline.FramePipeline` renders frames through a
  CPU stage and a GPU stage whose speed follows the cluster frequencies, and
* :class:`~repro.graphics.display.Display` accounts displayed frames into the
  per-second FPS numbers the agent observes.
"""

from repro.graphics.vsync import BufferQueue, VsyncClock
from repro.graphics.pipeline import FramePipeline, FrameSpec, PipelineConfig, TickResult
from repro.graphics.display import Display, FpsCounter

__all__ = [
    "VsyncClock",
    "BufferQueue",
    "FrameSpec",
    "PipelineConfig",
    "FramePipeline",
    "TickResult",
    "Display",
    "FpsCounter",
]
