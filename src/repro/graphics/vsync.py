"""VSync generation and triple-buffer bookkeeping.

Android synchronises rendering and scan-out through VSync.  With a 60 Hz
panel a VSync pulse arrives every 16.67 ms; the compositor latches whichever
back buffer holds a completed frame into the front buffer on that edge.  If
no back buffer completed since the previous edge the panel re-scans the old
front buffer and the frame is counted as dropped (the "lag or stutter" the
paper describes).

The classes here are deliberately small: the heavy lifting (how long a frame
takes to render, given cluster frequencies) lives in
:mod:`repro.graphics.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class VsyncClock:
    """Generates VSync edge times for a fixed refresh rate.

    Attributes
    ----------
    refresh_hz:
        Panel refresh rate; 60 Hz on the paper's device.
    """

    refresh_hz: float = 60.0

    def __post_init__(self) -> None:
        if self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")
        self._next_edge_s = self.period_s

    @property
    def period_s(self) -> float:
        """VSync period in seconds (16.67 ms at 60 Hz)."""
        return 1.0 / self.refresh_hz

    @property
    def next_edge_s(self) -> float:
        """Time of the next VSync edge in seconds."""
        return self._next_edge_s

    def edges_until(self, time_s: float) -> List[float]:
        """Return (and consume) all VSync edges at or before ``time_s``."""
        edges: List[float] = []
        while self._next_edge_s <= time_s + 1e-12:
            edges.append(self._next_edge_s)
            self._next_edge_s += self.period_s
        return edges

    def reset(self) -> None:
        """Restart the edge generator from time zero."""
        self._next_edge_s = self.period_s


@dataclass
class BufferQueue:
    """Triple-buffer model: one front buffer plus ``back_buffer_count`` back buffers.

    The queue only tracks *counts*: how many completed frames wait in back
    buffers and how many frames the application may still enqueue before the
    producer blocks (which is what throttles a renderer that outruns the
    panel).
    """

    back_buffer_count: int = 2

    def __post_init__(self) -> None:
        if self.back_buffer_count < 1:
            raise ValueError("at least one back buffer is required")
        self._ready_frames = 0
        self._front_valid = False

    @property
    def ready_frames(self) -> int:
        """Completed frames waiting in back buffers."""
        return self._ready_frames

    @property
    def front_valid(self) -> bool:
        """Whether the front buffer has ever been filled."""
        return self._front_valid

    @property
    def can_queue(self) -> bool:
        """Whether the renderer may start another frame without blocking."""
        return self._ready_frames < self.back_buffer_count

    def queue_frame(self) -> bool:
        """Add a completed frame to a back buffer.

        Returns ``True`` on success, ``False`` when all back buffers are full
        (the frame is then considered stalled and retried at the next edge by
        the caller).
        """
        if not self.can_queue:
            return False
        self._ready_frames += 1
        return True

    def latch(self) -> bool:
        """Consume one ready frame on a VSync edge.

        Returns ``True`` if a new frame was latched into the front buffer and
        ``False`` if the panel had to re-display the previous front buffer
        (i.e. a dropped/repeated frame).
        """
        if self._ready_frames > 0:
            self._ready_frames -= 1
            self._front_valid = True
            return True
        return False

    def reset(self) -> None:
        """Clear all buffers."""
        self._ready_frames = 0
        self._front_valid = False
