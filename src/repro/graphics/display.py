"""Display and frame-rate accounting.

The agent and the experiments talk about *FPS*: the number of distinct frames
the panel showed during the last second.  :class:`FpsCounter` turns the
per-tick "frames displayed" counts coming from the pipeline into that number
using a sliding one-second window, and :class:`Display` wraps the counter
together with the panel's refresh rate (the upper bound of achievable FPS).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple


class FpsCounter:
    """Sliding-window frame counter.

    Records ``(time, frames_displayed)`` events and reports the number of
    frames displayed during the trailing window (1 s by default), which is
    the everyday definition of FPS.
    """

    def __init__(self, window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._events: Deque[Tuple[float, int]] = deque()
        self._total_in_window = 0

    def record(self, time_s: float, frames_displayed: int) -> None:
        """Record that ``frames_displayed`` frames were shown at ``time_s``."""
        if frames_displayed < 0:
            raise ValueError("frames_displayed must be non-negative")
        self._events.append((time_s, frames_displayed))
        self._total_in_window += frames_displayed
        self._expire(time_s)

    def _expire(self, now_s: float) -> None:
        cutoff = now_s - self.window_s
        while self._events and self._events[0][0] <= cutoff:
            _, count = self._events.popleft()
            self._total_in_window -= count

    def fps(self, now_s: float) -> float:
        """Frames displayed during the window ending at ``now_s``, scaled to 1 s."""
        self._expire(now_s)
        return self._total_in_window / self.window_s

    def reset(self) -> None:
        """Clear the window."""
        self._events.clear()
        self._total_in_window = 0


@dataclass
class Display:
    """Panel abstraction: refresh rate plus FPS accounting."""

    refresh_hz: float = 60.0
    fps_window_s: float = 1.0

    def __post_init__(self) -> None:
        if self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")
        self._counter = FpsCounter(window_s=self.fps_window_s)
        self._total_frames = 0
        self._total_drops = 0

    @property
    def max_fps(self) -> float:
        """Highest achievable FPS (equal to the refresh rate)."""
        return self.refresh_hz

    @property
    def total_frames(self) -> int:
        """Total frames displayed since the last reset."""
        return self._total_frames

    @property
    def total_drops(self) -> int:
        """Total dropped frames since the last reset."""
        return self._total_drops

    def record_tick(self, time_s: float, frames_displayed: int, frames_dropped: int = 0) -> None:
        """Account one simulation tick worth of display activity."""
        self._counter.record(time_s, frames_displayed)
        self._total_frames += frames_displayed
        self._total_drops += frames_dropped

    def current_fps(self, now_s: float) -> float:
        """FPS over the trailing window ending at ``now_s``."""
        return min(self.refresh_hz, self._counter.fps(now_s))

    def record_tick_fps(
        self, time_s: float, frames_displayed: int, frames_dropped: int
    ) -> float:
        """Fused :meth:`record_tick` + :meth:`current_fps` (hot loop).

        One call per simulation tick with the sliding-window bookkeeping
        inlined; returns the same FPS the two-call sequence would.
        """
        if frames_displayed < 0:
            raise ValueError("frames_displayed must be non-negative")
        self._total_frames += frames_displayed
        self._total_drops += frames_dropped
        counter = self._counter
        events = counter._events
        events.append((time_s, frames_displayed))
        total = counter._total_in_window + frames_displayed
        cutoff = time_s - counter.window_s
        while events and events[0][0] <= cutoff:
            total -= events.popleft()[1]
        counter._total_in_window = total
        fps = total / counter.window_s
        refresh = self.refresh_hz
        return fps if fps < refresh else refresh

    def reset(self) -> None:
        """Clear all accounting."""
        self._counter.reset()
        self._total_frames = 0
        self._total_drops = 0
