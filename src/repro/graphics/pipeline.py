"""Frame rendering pipeline whose speed follows the cluster frequencies.

A frame on Android goes through a CPU stage (input handling, view traversal,
display-list building, driver work) and a GPU stage (rasterisation and
composition).  Both stages speed up with the frequency of the cluster that
executes them, which is precisely the lever DVFS gives a governor: lower the
frequency too far and frames miss their VSync deadline; keep it needlessly
high and power is wasted on frames that would have met the deadline anyway.

Work is expressed in *mega work units* (Mwu): one Mwu is the work one big
(Mongoose M3 class) core completes in one mega-cycle.  The conversion to
seconds is therefore ``work / (frequency_mhz * perf_per_mhz * cores)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.soc.cluster import Cluster
from repro.graphics.vsync import BufferQueue, VsyncClock


@dataclass(frozen=True)
class FrameSpec:
    """Work content of one frame.

    Attributes
    ----------
    cpu_work_mwu:
        CPU-stage work in mega work units (big-core-cycle equivalents).
    gpu_work_mwu:
        GPU-stage work in mega work units (GPU-core-cycle equivalents).
    """

    cpu_work_mwu: float
    gpu_work_mwu: float

    def __post_init__(self) -> None:
        if self.cpu_work_mwu < 0 or self.gpu_work_mwu < 0:
            raise ValueError("frame work must be non-negative")


@dataclass
class PipelineConfig:
    """Static configuration of the rendering pipeline.

    Attributes
    ----------
    big_cluster:
        Name of the big CPU cluster (UI and render threads prefer it).
    little_cluster:
        Name of the LITTLE CPU cluster (helper threads).
    gpu_cluster:
        Name of the GPU cluster.
    ui_big_cores:
        Equivalent number of big cores the UI/render threads can use.
    ui_little_cores:
        Equivalent number of LITTLE cores contributing to the CPU stage.
    gpu_core_fraction:
        Fraction of GPU cores available to the foreground app.
    max_pending_frames:
        Demanded-but-not-started frames kept before new demands are rejected
        (the app itself skips producing them, as Choreographer does).
    """

    big_cluster: str = "big"
    little_cluster: str = "little"
    gpu_cluster: str = "gpu"
    ui_big_cores: float = 1.6
    ui_little_cores: float = 1.0
    gpu_core_fraction: float = 1.0
    max_pending_frames: int = 2

    def __post_init__(self) -> None:
        if self.ui_big_cores < 0 or self.ui_little_cores < 0:
            raise ValueError("core shares must be non-negative")
        if self.ui_big_cores == 0 and self.ui_little_cores == 0:
            raise ValueError("the CPU stage needs at least some core share")
        if not 0 < self.gpu_core_fraction <= 1.0:
            raise ValueError("gpu_core_fraction must be in (0, 1]")
        if self.max_pending_frames < 1:
            raise ValueError("max_pending_frames must be at least 1")


@dataclass
class TickResult:
    """Outcome of advancing the pipeline by one simulation tick.

    Attributes
    ----------
    frames_displayed:
        Frames latched to the panel during this tick.
    frames_dropped:
        Demanded frames that the pipeline could not accept because it was
        saturated (its pending queue was full).  These frames will never be
        rendered -- they are the stutter the user perceives, and the QoS
        signal the Next agent's reward penalises.
    frames_completed:
        Frames that finished rendering (entered a back buffer) this tick.
    vsync_misses:
        VSync edges during this tick at which the panel had to repeat the
        previous front buffer although frames were in flight.  This is
        informational: at demand rates below the refresh rate repeats are
        normal and do not indicate a QoS problem.
    utilisations:
        Resulting utilisation per cluster (work processed / capacity).
    work_done_mwu:
        Work processed per cluster this tick, in mega work units.
    """

    frames_displayed: int
    frames_dropped: int
    frames_completed: int
    vsync_misses: int
    utilisations: Mapping[str, float]
    work_done_mwu: Mapping[str, float]

    @property
    def frames_rejected(self) -> int:
        """Alias of :attr:`frames_dropped` (kept for clarity at call sites)."""
        return self.frames_dropped


#: Shared empty mapping for ticks without background work (read-only use).
_NO_BACKGROUND: Mapping[str, float] = {}


class FramePipeline:
    """CPU-stage / GPU-stage frame renderer with triple buffering."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        refresh_hz: float = 60.0,
        back_buffer_count: int = 2,
    ) -> None:
        self.config = config or PipelineConfig()
        self.vsync = VsyncClock(refresh_hz=refresh_hz)
        self.buffers = BufferQueue(back_buffer_count=back_buffer_count)
        self._pending: Deque[FrameSpec] = deque()
        self._cpu_stage: Optional[List[float]] = None  # [remaining cpu work]
        self._cpu_stage_frame: Optional[FrameSpec] = None
        self._gpu_stage_remaining: Optional[float] = None
        self._completed_waiting_buffer = 0
        self._time_s = 0.0
        # Compiled rate helpers: the cluster mapping handed to tick() is the
        # same object every tick, so the big/little/gpu lookups and core-share
        # clamps are resolved once and reused (hot loop).
        self._compiled_for: Optional[Mapping[str, Cluster]] = None
        self._rate_big: Optional[Tuple[Cluster, float, float]] = None
        self._rate_little: Optional[Tuple[Cluster, float, float]] = None
        self._rate_gpu: Optional[Tuple[Cluster, float, float]] = None
        self._cluster_items: List[Tuple[str, Cluster]] = []
        self._util_items: List[Tuple[str, Cluster, Tuple[float, ...], float, int]] = []

    # -- configuration helpers ----------------------------------------------------

    @property
    def refresh_hz(self) -> float:
        """Panel refresh rate driving the VSync clock."""
        return self.vsync.refresh_hz

    @property
    def time_s(self) -> float:
        """Internal pipeline time (advanced by :meth:`tick`)."""
        return self._time_s

    @property
    def frames_in_flight(self) -> int:
        """Frames demanded or being rendered but not yet displayed."""
        in_stages = int(self._cpu_stage_frame is not None) + int(
            self._gpu_stage_remaining is not None
        )
        return (
            len(self._pending)
            + in_stages
            + self._completed_waiting_buffer
            + self.buffers.ready_frames
        )

    def reset(self) -> None:
        """Reset all pipeline state (buffers, stages, VSync phase)."""
        self.vsync.reset()
        self.buffers.reset()
        self._pending.clear()
        self._cpu_stage = None
        self._cpu_stage_frame = None
        self._gpu_stage_remaining = None
        self._completed_waiting_buffer = 0
        self._time_s = 0.0

    # -- rates ----------------------------------------------------------------------

    def _compile_rates(self, clusters: Mapping[str, Cluster]) -> None:
        """Resolve cluster references and core shares for this cluster mapping."""
        cfg = self.config
        self._rate_big = None
        self._rate_little = None
        self._rate_gpu = None
        if cfg.big_cluster in clusters:
            big = clusters[cfg.big_cluster]
            cores = min(cfg.ui_big_cores, big.spec.core_count)
            self._rate_big = (big, big.spec.perf_per_mhz, cores)
        if cfg.little_cluster in clusters:
            little = clusters[cfg.little_cluster]
            cores = min(cfg.ui_little_cores, little.spec.core_count)
            self._rate_little = (little, little.spec.perf_per_mhz, cores)
        if cfg.gpu_cluster in clusters:
            gpu = clusters[cfg.gpu_cluster]
            cores = gpu.spec.core_count * cfg.gpu_core_fraction
            self._rate_gpu = (gpu, gpu.spec.perf_per_mhz, cores)
        self._cluster_items = list(clusters.items())
        #: Per-cluster records for the utilisation loop:
        #: ``(name, cluster, frequencies, perf_per_mhz, core_count)``.
        self._util_items = [
            (name, c, c._freqs, c.spec.perf_per_mhz, c.spec.core_count)
            for name, c in clusters.items()
        ]
        self._compiled_for = clusters

    def _cpu_rate_mwu_per_s(self, clusters: Mapping[str, Cluster]) -> Tuple[float, float, float]:
        """CPU-stage processing rate and the big/little split of that rate."""
        if clusters is not self._compiled_for:
            self._compile_rates(clusters)
        big_rate = 0.0
        little_rate = 0.0
        if self._rate_big is not None:
            big, perf, cores = self._rate_big
            big_rate = big._freqs[big._current_index] * perf * cores
        if self._rate_little is not None:
            little, perf, cores = self._rate_little
            little_rate = little._freqs[little._current_index] * perf * cores
        return big_rate + little_rate, big_rate, little_rate

    def _gpu_rate_mwu_per_s(self, clusters: Mapping[str, Cluster]) -> float:
        """GPU-stage processing rate."""
        if clusters is not self._compiled_for:
            self._compile_rates(clusters)
        if self._rate_gpu is None:
            return 0.0
        gpu, perf, cores = self._rate_gpu
        return gpu._freqs[gpu._current_index] * perf * cores

    # -- main step --------------------------------------------------------------------

    def tick(
        self,
        dt_s: float,
        clusters: Mapping[str, Cluster],
        frame_demands: List[FrameSpec],
        background_work_mwu: Optional[Mapping[str, float]] = None,
    ) -> TickResult:
        """Advance the pipeline by ``dt_s`` seconds.

        Parameters
        ----------
        dt_s:
            Tick length in seconds (typically one VSync period).
        clusters:
            Live cluster objects; their *current* frequencies determine the
            processing rates during this tick.
        frame_demands:
            Frames the application wants rendered this tick (in order).
        background_work_mwu:
            Non-frame work demanded per cluster this tick (audio decode,
            networking, loading...), in mega work units.

        Returns
        -------
        TickResult
            Frame accounting plus the utilisation of every cluster.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if background_work_mwu is None:
            background_work_mwu = _NO_BACKGROUND
        cfg = self.config
        pending = self._pending

        rejected = 0
        if frame_demands:
            max_pending = cfg.max_pending_frames
            for frame in frame_demands:
                if len(pending) >= max_pending:
                    rejected += 1
                    continue
                pending.append(frame)

        # Inlined _cpu_rate_mwu_per_s / _gpu_rate_mwu_per_s (hot loop).
        if clusters is not self._compiled_for:
            self._compile_rates(clusters)
        big_rate = 0.0
        little_rate = 0.0
        rate = self._rate_big
        if rate is not None:
            cluster, perf, cores = rate
            big_rate = cluster._freqs[cluster._current_index] * perf * cores
        rate = self._rate_little
        if rate is not None:
            cluster, perf, cores = rate
            little_rate = cluster._freqs[cluster._current_index] * perf * cores
        cpu_rate = big_rate + little_rate
        rate = self._rate_gpu
        if rate is not None:
            cluster, perf, cores = rate
            gpu_rate = cluster._freqs[cluster._current_index] * perf * cores
        else:
            gpu_rate = 0.0

        cpu_budget = cpu_rate * dt_s
        gpu_budget = gpu_rate * dt_s
        cpu_frame_work_done = 0.0
        gpu_frame_work_done = 0.0
        completed = 0

        # Try to push any frame that already finished both stages but found the
        # buffer queue full on a previous tick.
        while self._completed_waiting_buffer > 0 and self.buffers.can_queue:
            self.buffers.queue_frame()
            self._completed_waiting_buffer -= 1

        # Drain the two stages; they pipeline (CPU of frame N+1 overlaps GPU of
        # frame N) because both budgets refer to the same wall-clock interval.
        progress = True
        while progress:
            progress = False

            # GPU stage.
            if self._gpu_stage_remaining is not None and gpu_budget > 1e-12:
                done = min(self._gpu_stage_remaining, gpu_budget)
                self._gpu_stage_remaining -= done
                gpu_budget -= done
                gpu_frame_work_done += done
                if self._gpu_stage_remaining <= 1e-9:
                    self._gpu_stage_remaining = None
                    completed += 1
                    if self.buffers.can_queue:
                        self.buffers.queue_frame()
                    else:
                        self._completed_waiting_buffer += 1
                    progress = True

            # CPU stage.
            if self._cpu_stage_frame is None and self._pending:
                self._cpu_stage_frame = self._pending.popleft()
                self._cpu_stage = [self._cpu_stage_frame.cpu_work_mwu]
                progress = True
            if (
                self._cpu_stage_frame is not None
                and self._cpu_stage is not None
                and cpu_budget > 1e-12
            ):
                done = min(self._cpu_stage[0], cpu_budget)
                self._cpu_stage[0] -= done
                cpu_budget -= done
                cpu_frame_work_done += done
                if self._cpu_stage[0] <= 1e-9 and self._gpu_stage_remaining is None:
                    self._gpu_stage_remaining = self._cpu_stage_frame.gpu_work_mwu
                    if self._gpu_stage_remaining <= 1e-9:
                        self._gpu_stage_remaining = None
                        completed += 1
                        if self.buffers.can_queue:
                            self.buffers.queue_frame()
                        else:
                            self._completed_waiting_buffer += 1
                    self._cpu_stage_frame = None
                    self._cpu_stage = None
                    progress = True

        # Attribute frame CPU work to the two CPU clusters in proportion to the
        # rate they contributed, then add background work up to spare capacity.
        work_done: Dict[str, float] = {name: 0.0 for name, _ in self._cluster_items}
        if cpu_rate > 0:
            if cfg.big_cluster in work_done:
                work_done[cfg.big_cluster] += cpu_frame_work_done * (big_rate / cpu_rate)
            if cfg.little_cluster in work_done:
                work_done[cfg.little_cluster] += cpu_frame_work_done * (
                    little_rate / cpu_rate
                )
        if cfg.gpu_cluster in work_done:
            work_done[cfg.gpu_cluster] += gpu_frame_work_done

        utilisations: Dict[str, float] = {}
        background_get = background_work_mwu.get
        for name, cluster, freqs, perf, cores in self._util_items:
            capacity = (freqs[cluster._current_index] * perf * cores) * dt_s
            background = background_get(name, 0.0)
            done = work_done[name]
            if capacity <= 0:
                utilisations[name] = 1.0 if (background > 0 or done > 0) else 0.0
                continue
            spare = capacity - done
            if spare < 0.0:
                spare = 0.0
            background_done = background if background < spare else spare
            done += background_done
            work_done[name] = done
            ratio = done / capacity
            utilisations[name] = ratio if ratio < 1.0 else 1.0

        # VSync edges that fall inside this tick latch frames to the panel.
        # (Inlined VsyncClock.edges_until / BufferQueue.latch: one VSync edge
        # per tick at the standard dt, every tick of the simulation.)
        displayed = 0
        misses = 0
        end_time = self._time_s + dt_s
        vsync = self.vsync
        buffers = self.buffers
        next_edge = vsync._next_edge_s
        period = vsync.period_s
        deadline = end_time + 1e-12
        while next_edge <= deadline:
            if buffers._ready_frames > 0:
                buffers._ready_frames -= 1
                buffers._front_valid = True
                displayed += 1
            else:
                # Inlined frames_in_flight (ready_frames is 0 in this branch).
                in_flight = (
                    len(pending)
                    + (self._cpu_stage_frame is not None)
                    + (self._gpu_stage_remaining is not None)
                    + self._completed_waiting_buffer
                )
                if in_flight > 0 or frame_demands:
                    misses += 1
            next_edge += period
        vsync._next_edge_s = next_edge
        self._time_s = end_time

        return TickResult(
            frames_displayed=displayed,
            frames_dropped=rejected,
            frames_completed=completed,
            vsync_misses=misses,
            utilisations=utilisations,
            work_done_mwu=work_done,
        )


class BatchFramePipeline:
    """:class:`FramePipeline` widened by a device axis.

    One instance steps the render pipelines of N independent devices that
    share a platform (same cluster layout, refresh rate and tick length).
    Frame queues and stage state are inherently ragged per device, so they
    stay per-device Python objects; the VSync clock is purely time-driven and
    therefore shared -- every device sees the same edge times, so the edge
    count per tick is computed once (:meth:`advance_time`).

    :meth:`tick_device_work` replicates :meth:`FramePipeline.tick` operation
    for operation (intake, stage drain, work attribution, utilisation, VSync
    latch) so each lane's utilisations and frame counts are bit-identical to
    a scalar pipeline run; it skips only outputs the simulation engine never
    records (``vsync_misses``, ``work_done_mwu``, ``frames_completed``).
    """

    def __init__(
        self,
        config: PipelineConfig,
        refresh_hz: float,
        clusters: Mapping[str, Cluster],
        n_devices: int,
        back_buffer_count: int = 2,
    ) -> None:
        self.config = config
        cfg = config
        names = list(clusters)
        index = {name: k for k, name in enumerate(names)}
        self._n_clusters = len(names)
        #: ``(cluster_index, frequencies, perf_per_mhz, core_share)`` for the
        #: big / little / gpu stage rates (same clamping as _compile_rates).
        self._rate_big = None
        self._rate_little = None
        self._rate_gpu = None
        if cfg.big_cluster in clusters:
            big = clusters[cfg.big_cluster]
            cores = min(cfg.ui_big_cores, big.spec.core_count)
            self._rate_big = (index[cfg.big_cluster], big._freqs, big.spec.perf_per_mhz, cores)
        if cfg.little_cluster in clusters:
            little = clusters[cfg.little_cluster]
            cores = min(cfg.ui_little_cores, little.spec.core_count)
            self._rate_little = (
                index[cfg.little_cluster], little._freqs, little.spec.perf_per_mhz, cores
            )
        if cfg.gpu_cluster in clusters:
            gpu = clusters[cfg.gpu_cluster]
            cores = gpu.spec.core_count * cfg.gpu_core_fraction
            self._rate_gpu = (index[cfg.gpu_cluster], gpu._freqs, gpu.spec.perf_per_mhz, cores)
        #: Per-cluster ``(name, frequencies, perf_per_mhz, core_count)`` for
        #: the utilisation loop, in compiled cluster order.
        self._util_records = [
            (name, c._freqs, c.spec.perf_per_mhz, c.spec.core_count)
            for name, c in clusters.items()
        ]
        self._max_pending = cfg.max_pending_frames
        self._back_buffer_count = back_buffer_count
        # Shared VSync clock (first edge one period in, as VsyncClock does).
        self._period_s = 1.0 / refresh_hz
        self._next_edge_s = self._period_s
        self._time_s = 0.0
        # Per-device ragged state, parallel lists indexed by device.
        self._pending: List[Deque[FrameSpec]] = [deque() for _ in range(n_devices)]
        self._cpu_frame: List[Optional[FrameSpec]] = [None] * n_devices
        self._cpu_rem: List[float] = [0.0] * n_devices
        self._gpu_rem: List[Optional[float]] = [None] * n_devices
        self._waiting: List[int] = [0] * n_devices
        self._ready: List[int] = [0] * n_devices
        self._work_scratch: List[float] = [0.0] * self._n_clusters

    def advance_time(self, dt_s: float) -> int:
        """Advance the shared VSync clock by ``dt_s``; return the edge count.

        Call once per tick after every :meth:`tick_device_work` call; the
        loop is the same edge accumulation :meth:`FramePipeline.tick` runs
        inline.
        """
        end_time = self._time_s + dt_s
        deadline = end_time + 1e-12
        next_edge = self._next_edge_s
        period = self._period_s
        count = 0
        while next_edge <= deadline:
            count += 1
            next_edge += period
        self._next_edge_s = next_edge
        self._time_s = end_time
        return count

    def _batch_tables(self):
        """Lazily compiled NumPy frequency tables for the batched methods."""
        import numpy as np

        tables = getattr(self, "_np_tables", None)
        if tables is None:
            def freq_array(record):
                if record is None:
                    return None
                return np.array(record[1], dtype=np.float64)

            tables = {
                "big": freq_array(self._rate_big),
                "little": freq_array(self._rate_little),
                "gpu": freq_array(self._rate_gpu),
                "util": [
                    np.array(freqs, dtype=np.float64)
                    for _name, freqs, _perf, _cores in self._util_records
                ],
            }
            self._np_tables = tables
        return tables

    def batch_rates(self, current_rows):
        """Per-device stage rates for the current OPP indices.

        ``current_rows`` is the ``(clusters, devices)`` index array; returns
        ``(big_rate, little_rate, cpu_rate, gpu_rate)`` as ``(devices,)``
        arrays.  Each lane multiplies in the same order as the scalar
        pipeline (``freqs[index] * perf_per_mhz * cores``), so the rates --
        and the budgets derived from them -- are bit-identical per device.
        """
        import numpy as np

        tables = self._batch_tables()
        n = current_rows.shape[1]
        zero = np.zeros(n, dtype=np.float64)
        big_rate = zero
        little_rate = zero
        gpu_rate = zero
        rate = self._rate_big
        if rate is not None:
            k, _freqs, perf, cores = rate
            big_rate = tables["big"][current_rows[k]] * perf * cores
        rate = self._rate_little
        if rate is not None:
            k, _freqs, perf, cores = rate
            little_rate = tables["little"][current_rows[k]] * perf * cores
        rate = self._rate_gpu
        if rate is not None:
            k, _freqs, perf, cores = rate
            gpu_rate = tables["gpu"][current_rows[k]] * perf * cores
        cpu_rate = big_rate + little_rate
        return big_rate, little_rate, cpu_rate, gpu_rate

    def tick_device_work(
        self,
        device: int,
        frame_demands: List[FrameSpec],
        cpu_budget: float,
        gpu_budget: float,
        edge_count: int,
    ) -> Tuple[int, int, float, float]:
        """Advance one device's frame queues by one tick.

        ``cpu_budget``/``gpu_budget`` are this device's per-tick work budgets
        (``rate * dt_s``, from :meth:`batch_rates`); ``edge_count`` is the
        shared VSync edge count from :meth:`advance_time`.  Runs the scalar
        pipeline's intake, stage-drain and latch logic operation for
        operation and returns ``(frames_displayed, frames_rejected,
        cpu_work_done, gpu_work_done)``; work attribution and utilisation are
        computed across all devices afterwards by :meth:`batch_finish`.
        """
        pending = self._pending[device]
        cpu_frame = self._cpu_frame[device]
        gpu_rem = self._gpu_rem[device]
        waiting = self._waiting[device]
        ready = self._ready[device]
        if (
            not frame_demands
            and cpu_frame is None
            and gpu_rem is None
            and not pending
            and not waiting
            and not ready
        ):
            # Idle lane: no queued, in-flight or demanded work anywhere.
            return 0, 0, 0.0, 0.0

        rejected = 0
        if frame_demands:
            max_pending = self._max_pending
            for frame in frame_demands:
                if len(pending) >= max_pending:
                    rejected += 1
                    continue
                pending.append(frame)

        back_buffers = self._back_buffer_count
        while waiting > 0 and ready < back_buffers:
            ready += 1
            waiting -= 1

        cpu_rem = self._cpu_rem[device]
        cpu_frame_work_done = 0.0
        gpu_frame_work_done = 0.0

        progress = True
        while progress:
            progress = False

            # GPU stage.
            if gpu_rem is not None and gpu_budget > 1e-12:
                done = gpu_rem if gpu_rem < gpu_budget else gpu_budget
                gpu_rem -= done
                gpu_budget -= done
                gpu_frame_work_done += done
                if gpu_rem <= 1e-9:
                    gpu_rem = None
                    if ready < back_buffers:
                        ready += 1
                    else:
                        waiting += 1
                    progress = True

            # CPU stage.
            if cpu_frame is None and pending:
                cpu_frame = pending.popleft()
                cpu_rem = cpu_frame.cpu_work_mwu
                progress = True
            if cpu_frame is not None and cpu_budget > 1e-12:
                done = cpu_rem if cpu_rem < cpu_budget else cpu_budget
                cpu_rem -= done
                cpu_budget -= done
                cpu_frame_work_done += done
                if cpu_rem <= 1e-9 and gpu_rem is None:
                    gpu_rem = cpu_frame.gpu_work_mwu
                    if gpu_rem <= 1e-9:
                        gpu_rem = None
                        if ready < back_buffers:
                            ready += 1
                        else:
                            waiting += 1
                    cpu_frame = None
                    progress = True

        displayed = ready if ready < edge_count else edge_count
        ready -= displayed

        self._ready[device] = ready
        self._waiting[device] = waiting
        self._cpu_frame[device] = cpu_frame
        self._cpu_rem[device] = cpu_rem
        self._gpu_rem[device] = gpu_rem
        return displayed, rejected, cpu_frame_work_done, gpu_frame_work_done

    def batch_finish(
        self,
        current_rows,
        cpu_done,
        gpu_done,
        big_rate,
        little_rate,
        cpu_rate,
        gpu_rate,
        background_rows,
        dt_s: float,
        util_out,
    ) -> None:
        """Work attribution and utilisation, vectorised over devices.

        ``cpu_done``/``gpu_done`` are ``(devices,)`` arrays of per-stage work
        completed this tick; ``background_rows`` is the ``(clusters,
        devices)`` background demand.  Writes utilisations into ``util_out``
        (``(clusters, devices)``).  Per lane the float sequence is exactly
        the scalar pipeline's: attribution splits CPU work by
        ``rate / cpu_rate``, then utilisation is
        ``(done + min(background, spare)) / capacity`` clamped to ``[0, 1]``
        with the capacity-zero special case.
        """
        import numpy as np

        tables = self._batch_tables()
        n_clusters = self._n_clusters
        work = np.zeros((n_clusters, current_rows.shape[1]), dtype=np.float64)
        cpu_positive = cpu_rate > 0
        if self._rate_big is not None:
            share = np.divide(
                big_rate, cpu_rate, out=np.zeros_like(cpu_rate), where=cpu_positive
            )
            work[self._rate_big[0]] += cpu_done * share
        if self._rate_little is not None:
            share = np.divide(
                little_rate, cpu_rate, out=np.zeros_like(cpu_rate), where=cpu_positive
            )
            work[self._rate_little[0]] += cpu_done * share
        if self._rate_gpu is not None:
            work[self._rate_gpu[0]] += gpu_done

        util_tables = tables["util"]
        for k in range(n_clusters):
            _name, _freqs, perf, cores = self._util_records[k]
            capacity = (util_tables[k][current_rows[k]] * perf * cores) * dt_s
            background = background_rows[k]
            done = work[k]
            positive = capacity > 0
            spare = capacity - done
            spare = np.where(spare < 0.0, 0.0, spare)
            background_done = np.where(background < spare, background, spare)
            total = done + background_done
            ratio = np.divide(
                total, capacity, out=np.zeros_like(capacity), where=positive
            )
            clamped = np.where(ratio < 1.0, ratio, 1.0)
            saturated = np.where((background > 0) | (done > 0), 1.0, 0.0)
            util_out[k] = np.where(positive, clamped, saturated)
