"""Crash-safe JSON persistence primitives shared by every on-disk store.

Every artifact store in the project (sweep result cache, agent artifacts,
fleet artifacts, shard manifests, per-app Q-table files) persists JSON
documents into directories that may be shared by several runner processes
and scanned by later sessions.  Three invariants make that safe and
deterministic, and all live here so the static-analysis pass
(:mod:`repro.lint`) can enforce that nothing bypasses them:

* **Atomic publication** (:func:`atomic_write_json`): a write is staged in
  the target directory under a PID-suffixed temporary name and published
  with ``os.replace``, so readers observe either the complete previous
  document or the complete new one -- never a truncated intermediate
  (lint rule REP004).
* **Deterministic enumeration** (:func:`list_entry_paths`): directory
  scans are sorted by filename, so load order -- and therefore any
  insertion-order-dependent downstream serialisation -- never depends on
  filesystem enumeration order (lint rule REP003).
* **Quarantine, never raise** (:func:`quarantine_entry`): a store that
  finds an unparseable entry (a torn copy, a filled disk on a non-atomic
  filesystem) moves it aside as ``<path>.bad`` and recomputes, instead of
  letting one bad file abort a whole sweep.

The write path is also a named fault-injection seam
(:mod:`repro.reliability.faults`): a seeded chaos plan can tear a write
(truncated document at the final path) or crash it after staging (temp
debris, destination untouched), which is how the crash-safety of every
consumer -- result cache, shard status files, artifact stores -- is tested
deterministically.
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Mapping, Optional

from repro.reliability.faults import (
    KIND_TORN_WRITE,
    SITE_ATOMIC_WRITE,
    SITE_ATOMIC_WRITE_STAGED,
    fault_point,
)


def list_entry_paths(directory: Optional[str], suffix: str) -> List[str]:
    """Paths of every store entry file under ``directory``, sorted by name.

    The shared directory-scan of every fingerprint-keyed store (result
    cache, agent artifacts, fleets): entries are regular files with the
    store's suffix; quarantined (``.bad``), staging (``.tmp.<pid>``) and
    subdirectory names fall through the filter.
    """
    if directory is None or not os.path.isdir(directory):
        return []
    return [
        os.path.join(directory, filename)
        for filename in sorted(os.listdir(directory))
        if filename.endswith(suffix)
        and os.path.isfile(os.path.join(directory, filename))
    ]


def quarantine_entry(path: str) -> Optional[str]:
    """Move a corrupt store entry aside as ``<path>.bad`` (best effort).

    Renaming instead of deleting keeps the evidence for post-mortems, frees
    the canonical path so a re-run can store a fresh entry, and -- because
    every store's enumeration filters on its entry suffix -- keeps the
    quarantined file out of all later store operations.  Returns the
    quarantine path, or ``None`` when the rename failed (e.g. a racing
    runner already quarantined or replaced the entry).
    """
    bad_path = f"{path}.bad"
    try:
        os.replace(path, bad_path)
    except OSError:
        return None
    return bad_path


def atomic_write_json(
    path: str,
    payload: Mapping[str, Any],
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> str:
    """Write ``payload`` as JSON via a same-directory rename; returns ``path``.

    Readers either see the complete previous file or the complete new one,
    never a truncated intermediate -- the property that lets several sweep
    runners share one artifact directory.  The temporary name carries the
    writer's PID so concurrent writers cannot clobber each other's staging
    file.

    ``indent`` / ``sort_keys`` pass through to :func:`json.dump` for
    human-reviewed documents (e.g. the lint baseline) that must serialise
    deterministically and diff cleanly.

    Fault seams (active only under an injected
    :class:`~repro.reliability.faults.FaultPlan`, keyed by the target's
    basename): a *torn_write* publishes a truncated document at ``path``
    and returns normally -- modelling a non-atomic filesystem losing the
    tail -- so consumers must quarantine-and-recompute on their next load;
    a *crash* after staging raises before the ``os.replace``, leaving temp
    debris and the previous document intact -- modelling a process dying
    mid-write.
    """
    key = os.path.basename(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    rule = fault_point(SITE_ATOMIC_WRITE, key)
    if rule is not None and rule.kind == KIND_TORN_WRITE:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text[: max(1, len(text) // 2)])
        return path
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    fault_point(SITE_ATOMIC_WRITE_STAGED, key)  # crash seam: debris stays
    os.replace(tmp_path, path)
    return path


def atomic_write_text(path: str, text: str) -> str:
    """Publish pre-serialised text via the same stage-then-rename protocol.

    The non-JSON sibling of :func:`atomic_write_json`, used for documents
    whose serialisation is line-oriented (merged ``trace.jsonl`` files)
    rather than a single JSON value.  Shares the atomicity guarantee but
    not the fault seams: merge outputs are rebuildable from their inputs,
    so torn-write chaos coverage stays focused on the stores.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp_path, path)
    return path


def append_jsonl(path: str, payload: Mapping[str, Any]) -> str:
    """Append ``payload`` as one JSON line; the sanctioned trace appender.

    Traces are append-only event logs, so the whole-document replace of
    :func:`atomic_write_json` is the wrong shape: this writes the full
    serialised line (newline included) in a single ``write()`` on a
    handle opened in append mode, so concurrent writers -- pool workers
    sharing one ``trace.jsonl`` -- interleave whole lines.  A process
    killed mid-append leaves at most one torn final line, which trace
    readers skip by contract (:func:`repro.obs.trace.read_trace`).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    line = json.dumps(payload, sort_keys=True) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
    return path
