"""Crash-safe JSON persistence primitives shared by every on-disk store.

Every artifact store in the project (sweep result cache, agent artifacts,
fleet artifacts, shard manifests, per-app Q-table files) persists JSON
documents into directories that may be shared by several runner processes
and scanned by later sessions.  Two invariants make that safe and
deterministic, and both live here so the static-analysis pass
(:mod:`repro.lint`) can enforce that nothing bypasses them:

* **Atomic publication** (:func:`atomic_write_json`): a write is staged in
  the target directory under a PID-suffixed temporary name and published
  with ``os.replace``, so readers observe either the complete previous
  document or the complete new one -- never a truncated intermediate
  (lint rule REP004).
* **Deterministic enumeration** (:func:`list_entry_paths`): directory
  scans are sorted by filename, so load order -- and therefore any
  insertion-order-dependent downstream serialisation -- never depends on
  filesystem enumeration order (lint rule REP003).
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Mapping, Optional


def list_entry_paths(directory: Optional[str], suffix: str) -> List[str]:
    """Paths of every store entry file under ``directory``, sorted by name.

    The shared directory-scan of every fingerprint-keyed store (result
    cache, agent artifacts, fleets): entries are regular files with the
    store's suffix; quarantined (``.bad``), staging (``.tmp.<pid>``) and
    subdirectory names fall through the filter.
    """
    if directory is None or not os.path.isdir(directory):
        return []
    return [
        os.path.join(directory, filename)
        for filename in sorted(os.listdir(directory))
        if filename.endswith(suffix)
        and os.path.isfile(os.path.join(directory, filename))
    ]


def atomic_write_json(
    path: str,
    payload: Mapping[str, Any],
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> str:
    """Write ``payload`` as JSON via a same-directory rename; returns ``path``.

    Readers either see the complete previous file or the complete new one,
    never a truncated intermediate -- the property that lets several sweep
    runners share one artifact directory.  The temporary name carries the
    writer's PID so concurrent writers cannot clobber each other's staging
    file.

    ``indent`` / ``sort_keys`` pass through to :func:`json.dump` for
    human-reviewed documents (e.g. the lint baseline) that must serialise
    deterministically and diff cleanly.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
    os.replace(tmp_path, path)
    return path
