"""Offline (cloud) training and federated aggregation of Q-tables.

Section IV-C sketches two extensions to on-device training:

* *training in the cloud*: the device streams its training data to a server
  (the paper uses a 16-core Xeon E7-8860 v3), which performs the Q-learning
  updates much faster and ships the resulting action-values back, at the cost
  of up to 4 s of round-trip communication overhead, and
* *federated learning*: many devices of the same model train locally and a
  server aggregates their tables so each device benefits from the fleet's
  experience.

The reproduction cannot talk to a real cloud, so :class:`CloudTrainer` models
the wall-clock effect (a speed-up factor plus a communication overhead, the
two quantities Fig. 6 compares) while :class:`FederatedAggregator` implements
the actual table aggregation, which is pure data manipulation and therefore
fully faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.qtable import QTable


@dataclass(frozen=True)
class CloudTrainingConfig:
    """Wall-clock model of off-device training.

    Attributes
    ----------
    speedup_factor:
        How much faster the cloud performs the same number of training
        updates than the device.  The paper's Fig. 6 shows roughly a 4-10x
        gap between its online and cloud series; the default of 7 sits in
        the middle of that range.
    communication_overhead_s:
        Round-trip overhead for shipping the training data up and the learned
        action-values back (the paper reports a maximum of 4 s).
    """

    speedup_factor: float = 7.0
    communication_overhead_s: float = 4.0

    def __post_init__(self) -> None:
        if self.speedup_factor <= 0:
            raise ValueError("speedup_factor must be positive")
        if self.communication_overhead_s < 0:
            raise ValueError("communication_overhead_s must be non-negative")


class CloudTrainer:
    """Estimates cloud training time from on-device training measurements."""

    def __init__(self, config: Optional[CloudTrainingConfig] = None) -> None:
        self.config = config or CloudTrainingConfig()

    def cloud_time_s(self, device_training_time_s: float) -> float:
        """Wall-clock time the same training would take in the cloud."""
        if device_training_time_s < 0:
            raise ValueError("device_training_time_s must be non-negative")
        return (
            device_training_time_s / self.config.speedup_factor
            + self.config.communication_overhead_s
        )

    def speedup(self, device_training_time_s: float) -> float:
        """Effective speed-up including the communication overhead."""
        cloud = self.cloud_time_s(device_training_time_s)
        if cloud <= 0:
            return float("inf")
        return device_training_time_s / cloud


class FederatedAggregator:
    """Aggregates per-device Q-tables into a fleet model (FedAvg style)."""

    def __init__(self, action_count: int) -> None:
        if action_count < 1:
            raise ValueError("action_count must be at least 1")
        self.action_count = action_count

    def aggregate(self, tables: Sequence[QTable]) -> QTable:
        """Visit-weighted average of the given tables.

        States observed by several devices are averaged with weights
        proportional to how often each device updated them; states observed
        by a single device are copied as-is.  The result is a fresh table
        that can be distributed back to every device.
        """
        if not tables:
            raise ValueError("aggregate needs at least one table")
        for table in tables:
            if table.action_count != self.action_count:
                raise ValueError("all tables must share the aggregator's action count")

        result = QTable(action_count=self.action_count, initial_q=tables[0].initial_q)
        # Collect weighted sums per state.
        sums: Dict = {}
        weights: Dict = {}
        for table in tables:
            for state in table.states():
                visits = max(1, table.visits(state))
                values = table.values(state)
                if state not in sums:
                    sums[state] = [0.0] * self.action_count
                    weights[state] = 0
                for index, value in enumerate(values):
                    sums[state][index] += value * visits
                weights[state] += visits
        for state, value_sums in sums.items():
            weight = weights[state]
            for index in range(self.action_count):
                result.set(state, index, value_sums[index] / weight)
        return result

    def distribute(self, aggregate: QTable, device_count: int) -> List[QTable]:
        """Clone the aggregated table for each device in the fleet."""
        if device_count < 1:
            raise ValueError("device_count must be positive")
        return [QTable.from_dict(aggregate.to_dict()) for _ in range(device_count)]
