"""Offline (cloud) training and federated aggregation of Q-tables.

Section IV-C sketches two extensions to on-device training:

* *training in the cloud*: the device streams its training data to a server
  (the paper uses a 16-core Xeon E7-8860 v3), which performs the Q-learning
  updates much faster and ships the resulting action-values back, at the cost
  of up to 4 s of round-trip communication overhead, and
* *federated learning*: many devices of the same model train locally and a
  server aggregates their tables so each device benefits from the fleet's
  experience.

The reproduction cannot talk to a real cloud, so :class:`CloudTrainer` models
the wall-clock effect (a speed-up factor plus a communication overhead, the
two quantities Fig. 6 compares) while :class:`FederatedAggregator` implements
the actual table aggregation, which is pure data manipulation and therefore
fully faithful.

On top of those two primitives this module defines the *fleet* data model
used by the federated sweep pipeline in :mod:`repro.experiments.federated`:

* :class:`FleetSpec` pre-registers one federated training run -- N virtual
  devices, each with its own interaction mix (derived seeds and per-device
  app rotation), trained for R rounds with aggregation in between,
* :class:`RoundReport` records the per-round convergence diagnostics, and
* :class:`FleetArtifact` freezes the whole fleet -- the merged greedy agent
  plus every device's post-training state -- into a fingerprinted JSON
  document, so a federated run is shippable and resumable exactly like a
  single-agent :class:`~repro.core.artifact.AgentArtifact`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.agent import AgentConfig, NextAgent
from repro.core.artifact import TrainingSpec
from repro.core.persistence import atomic_write_json
from repro.core.governor import NextGovernor
from repro.core.qtable import QTable
from repro.core.seeding import canonical_fingerprint, derive_seed


@dataclass(frozen=True)
class CloudTrainingConfig:
    """Wall-clock model of off-device training.

    Attributes
    ----------
    speedup_factor:
        How much faster the cloud performs the same number of training
        updates than the device.  The paper's Fig. 6 shows roughly a 4-10x
        gap between its online and cloud series; the default of 7 sits in
        the middle of that range.
    communication_overhead_s:
        Round-trip overhead for shipping the training data up and the learned
        action-values back (the paper reports a maximum of 4 s).
    """

    speedup_factor: float = 7.0
    communication_overhead_s: float = 4.0

    def __post_init__(self) -> None:
        if self.speedup_factor <= 0:
            raise ValueError("speedup_factor must be positive")
        if self.communication_overhead_s < 0:
            raise ValueError("communication_overhead_s must be non-negative")


class CloudTrainer:
    """Estimates cloud training time from on-device training measurements."""

    def __init__(self, config: Optional[CloudTrainingConfig] = None) -> None:
        self.config = config or CloudTrainingConfig()

    def cloud_time_s(self, device_training_time_s: float) -> float:
        """Wall-clock time the same training would take in the cloud."""
        if device_training_time_s < 0:
            raise ValueError("device_training_time_s must be non-negative")
        return (
            device_training_time_s / self.config.speedup_factor
            + self.config.communication_overhead_s
        )

    def speedup(self, device_training_time_s: float) -> float:
        """Effective speed-up including the communication overhead."""
        cloud = self.cloud_time_s(device_training_time_s)
        if cloud <= 0:
            return float("inf")
        return device_training_time_s / cloud


class FederatedAggregator:
    """Aggregates per-device Q-tables into a fleet model (FedAvg style)."""

    def __init__(self, action_count: int) -> None:
        if action_count < 1:
            raise ValueError("action_count must be at least 1")
        self.action_count = action_count

    def aggregate(self, tables: Sequence[QTable]) -> QTable:
        """Visit-weighted average of the given tables.

        States observed by several devices are averaged with weights
        proportional to how often each device updated them; states observed
        by a single device are copied as-is.  The result is a fresh table
        that can be distributed back to every device.

        The merged table carries each state's *pooled* visit mass (the sum
        of the per-device visit counts), so aggregation composes: feeding a
        merged table into a later round weights it by the fleet experience
        it represents, not by a fresh-write count.
        """
        if not tables:
            raise ValueError("aggregate needs at least one table")
        for table in tables:
            if table.action_count != self.action_count:
                raise ValueError("all tables must share the aggregator's action count")

        result = QTable(action_count=self.action_count, initial_q=tables[0].initial_q)
        # Collect weighted sums per state.  The averaging weight floors at 1
        # so a never-updated row still contributes its values; the pooled
        # visit count sums the *actual* per-device visits.
        sums: Dict = {}
        weights: Dict = {}
        visit_totals: Dict = {}
        for table in tables:
            for state in table.states():
                visits = table.visits(state)
                weight = max(1, visits)
                values = table.values(state)
                if state not in sums:
                    sums[state] = [0.0] * self.action_count
                    weights[state] = 0
                    visit_totals[state] = 0
                for index, value in enumerate(values):
                    sums[state][index] += value * weight
                weights[state] += weight
                visit_totals[state] += visits
        for state, value_sums in sums.items():
            weight = weights[state]
            result.set_row(
                state,
                [value_sum / weight for value_sum in value_sums],
                visit_totals[state],
            )
        return result

    def distribute(self, aggregate: QTable, device_count: int) -> List[QTable]:
        """Per-device replicas of the aggregated table.

        Every replica carries the full merged *values*; each state's pooled
        visit mass is **split** across the replicas (deterministically, the
        remainder going to the lowest-indexed devices).  Handing every
        device the full mass instead would make the next round's
        visit-weighted aggregation count the fleet's prior experience
        ``device_count`` times over -- inflating stale knowledge
        ~``device_count``-fold per round and drowning out fresh local
        updates.  Splitting makes distribute/aggregate conserve visit mass,
        so multi-round federated training stays correctly weighted.
        """
        if device_count < 1:
            raise ValueError("device_count must be positive")
        replicas = []
        for device in range(device_count):
            replica = QTable(
                action_count=aggregate.action_count, initial_q=aggregate.initial_q
            )
            for state in aggregate.states():
                visits = aggregate.visits(state)
                share = visits // device_count + (
                    1 if device < visits % device_count else 0
                )
                replica.set_row(state, aggregate.values(state), share)
            replicas.append(replica)
        return replicas


# ----------------------------------------------------------------------------------
# Fleet data model
# ----------------------------------------------------------------------------------

#: Bumped whenever the fleet-artifact layout or federated training semantics
#: change, so a stale on-disk fleet can never be mistaken for a current one.
FLEET_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FleetSpec:
    """Pre-registered description of one federated device-fleet training run.

    Attributes
    ----------
    apps:
        Applications the fleet trains on.  Every device covers every app --
        heterogeneity comes from per-device seeds and app *order* (device
        ``d`` trains the list rotated by ``d``), so each device experiences
        its own interaction mix while the merged tables still cover the full
        app set.
    devices:
        Number of virtual devices in the fleet.
    rounds:
        Federated rounds.  Each round is one local-training phase on every
        device followed by a server-side aggregation; from round 1 on the
        devices continue training from the previously merged tables.
    platform:
        Platform registry name every device simulates.
    episodes / episode_duration_s:
        Per-app local training budget of one device in one round.
    fleet_seed:
        Base seed; every (device, round) training seed derives from it via
        :func:`repro.core.seeding.derive_seed`, so two fleets with the same
        spec are bit-identical and fleets with different seeds are
        decoupled.
    config_overrides:
        Extra :class:`~repro.sim.config.SimulationConfig` keyword arguments
        applied to every training episode (threaded in from the sweep's
        matrix so devices train in the evaluation environment).
    device_intensities:
        Optional per-device interaction-intensity weights (non-IID fleets).
        Empty means uniform (every device trains ``episodes`` episodes);
        otherwise entry ``d`` scales device ``d``'s per-app episode budget:
        heavier users contribute more local experience per round (see
        :meth:`device_episodes`).  Visit-weighted aggregation then weighs
        their tables accordingly.
    device_app_mix:
        Optional explicit per-device app lists (non-IID app coverage).
        Empty means every device covers every app via the rotation above;
        otherwise device ``d`` trains exactly ``device_app_mix[d]`` (each a
        non-empty subset of ``apps``, and every app must be covered by at
        least one device so the merged tables span the full app set).
    """

    apps: Tuple[str, ...]
    devices: int = 4
    rounds: int = 2
    platform: str = "exynos9810"
    episodes: int = 2
    episode_duration_s: float = 60.0
    fleet_seed: int = 0
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    device_intensities: Tuple[float, ...] = ()
    device_app_mix: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a fleet spec needs at least one app")
        if len(set(self.apps)) != len(self.apps):
            raise ValueError("fleet apps must be unique")
        if self.devices < 1:
            raise ValueError("devices must be at least 1")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if self.episodes < 1:
            raise ValueError("episodes must be at least 1")
        if self.episode_duration_s <= 0:
            raise ValueError("episode_duration_s must be positive")
        if self.device_intensities:
            if len(self.device_intensities) != self.devices:
                raise ValueError(
                    "device_intensities must list one weight per device"
                )
            for intensity in self.device_intensities:
                if not intensity > 0:
                    raise ValueError("device intensities must be positive")
        if self.device_app_mix:
            if len(self.device_app_mix) != self.devices:
                raise ValueError(
                    "device_app_mix must list one app tuple per device"
                )
            app_set = set(self.apps)
            covered = set()
            for mix in self.device_app_mix:
                if not mix:
                    raise ValueError("every device needs at least one app")
                if len(set(mix)) != len(mix):
                    raise ValueError("a device's app mix must be unique")
                unknown = set(mix) - app_set
                if unknown:
                    raise ValueError(
                        f"device app mix names apps outside the fleet: "
                        f"{sorted(unknown)}"
                    )
                covered.update(mix)
            if covered != app_set:
                raise ValueError(
                    "device_app_mix must cover every fleet app at least once"
                )

    # -- per-device derivation ----------------------------------------------------------

    def device_apps(self, device: int) -> Tuple[str, ...]:
        """Device ``device``'s training-app order.

        With an explicit ``device_app_mix`` this is the device's declared
        mix; otherwise the fleet list rotated by the device index.
        """
        if not 0 <= device < self.devices:
            raise ValueError(f"device must be in [0, {self.devices})")
        if self.device_app_mix:
            return tuple(self.device_app_mix[device])
        offset = device % len(self.apps)
        return self.apps[offset:] + self.apps[:offset]

    def device_intensity(self, device: int) -> float:
        """Device ``device``'s interaction-intensity weight (1.0 = uniform)."""
        if not 0 <= device < self.devices:
            raise ValueError(f"device must be in [0, {self.devices})")
        if not self.device_intensities:
            return 1.0
        return self.device_intensities[device]

    def device_episodes(self, device: int) -> int:
        """Per-app episode budget of one device, intensity-weighted.

        ``ceil(episodes * intensity)`` with a floor of one episode, so a
        uniform fleet reproduces the shared ``episodes`` budget exactly and
        heavier users contribute proportionally more visit mass.
        """
        intensity = self.device_intensity(device)
        if intensity == 1.0:
            return self.episodes
        return max(1, math.ceil(self.episodes * intensity - 1e-12))

    def device_seed(self, device: int, round_index: int) -> int:
        """Stable training seed of one (device, round) local-training phase."""
        return derive_seed("fleet", self.fleet_seed, device, round_index)

    def device_training_spec(self, device: int) -> TrainingSpec:
        """The round-0 :class:`TrainingSpec` of one device.

        Round 0 starts from a blank agent, so it is expressible as an
        ordinary training spec -- which is exactly what lets the federated
        pipeline reuse the artifact store: per-device initial training is
        cached by fingerprint and shared across fleets that overlap.
        """
        return TrainingSpec(
            apps=self.device_apps(device),
            platform=self.platform,
            episodes=self.device_episodes(device),
            episode_duration_s=self.episode_duration_s,
            seed=self.device_seed(device, 0),
            config_overrides=self.config_overrides,
        )

    # -- identity -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form.

        The non-IID fields are emitted only when set: a uniform fleet's
        payload is byte-identical to the pre-heterogeneity layout, so every
        existing fingerprint, lineage and stored artifact stays valid.
        """
        payload = {
            "apps": list(self.apps),
            "devices": self.devices,
            "rounds": self.rounds,
            "platform": self.platform,
            "episodes": self.episodes,
            "episode_duration_s": self.episode_duration_s,
            "fleet_seed": self.fleet_seed,
            "config_overrides": dict(self.config_overrides),
        }
        if self.device_intensities:
            payload["device_intensities"] = list(self.device_intensities)
        if self.device_app_mix:
            payload["device_app_mix"] = [list(mix) for mix in self.device_app_mix]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            apps=tuple(data["apps"]),
            devices=int(data.get("devices", 4)),
            rounds=int(data.get("rounds", 2)),
            platform=data.get("platform", "exynos9810"),
            episodes=int(data.get("episodes", 2)),
            episode_duration_s=float(data.get("episode_duration_s", 60.0)),
            fleet_seed=int(data.get("fleet_seed", 0)),
            config_overrides=tuple(
                sorted(dict(data.get("config_overrides", {})).items())
            ),
            device_intensities=tuple(
                float(value) for value in data.get("device_intensities", ())
            ),
            device_app_mix=tuple(
                tuple(mix) for mix in data.get("device_app_mix", ())
            ),
        )

    def _fingerprint_payload(
        self, agent_config: Optional[AgentConfig], with_rounds: bool
    ) -> str:
        payload = {
            "schema_version": FLEET_SCHEMA_VERSION,
            "spec": self.to_dict(),
            "agent_config": (agent_config or AgentConfig()).to_dict(),
        }
        if not with_rounds:
            payload["spec"].pop("rounds")
        return canonical_fingerprint(payload)

    def fingerprint(self, agent_config: Optional[AgentConfig] = None) -> str:
        """Content hash of (spec, agent config): the fleet-store key."""
        return self._fingerprint_payload(agent_config, with_rounds=True)

    def lineage(self, agent_config: Optional[AgentConfig] = None) -> str:
        """Content hash of everything *except* the round count.

        Two specs that differ only in ``rounds`` share a lineage: federated
        training is an incremental process, so an artifact trained for fewer
        rounds of the same lineage is a valid resume point for a deeper run.
        """
        return self._fingerprint_payload(agent_config, with_rounds=False)

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        non_iid = "/niid" if (self.device_intensities or self.device_app_mix) else ""
        return (
            f"{'+'.join(self.apps)}/{self.platform}/d{self.devices}xr{self.rounds}"
            f"/e{self.episodes}x{self.episode_duration_s:g}s/s{self.fleet_seed}"
            f"{non_iid}"
        )


@dataclass(frozen=True)
class RoundReport:
    """Convergence diagnostics of one federated round.

    Attributes
    ----------
    round_index:
        Which round this report describes (0-based).
    device_td_errors:
        Each device's mean absolute TD error over its recent update window
        at the end of the round's local training.
    merged_states:
        Total distinct states across the merged per-app tables.
    merged_visits:
        Pooled visit mass across the merged tables.
    mean_abs_delta:
        Mean absolute difference between the per-device Q-values and the
        merged values, over every (device, state, action) the devices
        visited -- the fleet's disagreement, which should shrink as rounds
        progress.
    """

    round_index: int
    device_td_errors: Tuple[float, ...]
    merged_states: int
    merged_visits: int
    mean_abs_delta: float

    @property
    def mean_td_error(self) -> float:
        """Fleet-mean TD error at the end of this round."""
        if not self.device_td_errors:
            return float("inf")
        return sum(self.device_td_errors) / len(self.device_td_errors)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "round_index": self.round_index,
            "device_td_errors": list(self.device_td_errors),
            "merged_states": self.merged_states,
            "merged_visits": self.merged_visits,
            "mean_abs_delta": self.mean_abs_delta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            round_index=int(data["round_index"]),
            device_td_errors=tuple(float(e) for e in data["device_td_errors"]),
            merged_states=int(data["merged_states"]),
            merged_visits=int(data["merged_visits"]),
            mean_abs_delta=float(data["mean_abs_delta"]),
        )


@dataclass
class FleetArtifact:
    """A fully trained device fleet, frozen into a JSON document.

    Carries the merged greedy agent (what evaluation cells run), every
    device's post-training state (what a deeper-round run resumes from) and
    the per-round convergence reports.  ``rounds_completed`` always equals
    ``spec.rounds``; resuming a lineage to more rounds produces a *new*
    artifact under the deeper spec's fingerprint.
    """

    spec: FleetSpec
    agent_state: Dict[str, Any]
    device_states: List[Dict[str, Any]] = field(default_factory=list)
    round_reports: List[RoundReport] = field(default_factory=list)
    rounds_completed: int = 0
    fingerprint: str = ""
    lineage: str = ""
    schema_version: int = FLEET_SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        spec: FleetSpec,
        agent: NextAgent,
        device_states: Sequence[Mapping[str, Any]],
        round_reports: Sequence[RoundReport],
    ) -> "FleetArtifact":
        """Snapshot a trained fleet under ``spec``.

        Normalised through one JSON round-trip immediately (exactly like
        :meth:`AgentArtifact.capture`), so in-memory and disk-served fleets
        cannot diverge.
        """
        artifact = cls(
            spec=spec,
            agent_state=agent.to_dict(),
            device_states=[dict(state) for state in device_states],
            round_reports=list(round_reports),
            rounds_completed=spec.rounds,
            fingerprint=spec.fingerprint(agent.config),
            lineage=spec.lineage(agent.config),
        )
        return cls.from_dict(json.loads(json.dumps(artifact.to_dict())))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "lineage": self.lineage,
            "rounds_completed": self.rounds_completed,
            "spec": self.spec.to_dict(),
            "agent_state": self.agent_state,
            "device_states": self.device_states,
            "round_reports": [report.to_dict() for report in self.round_reports],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetArtifact":
        """Rebuild a fleet artifact from :meth:`to_dict` output."""
        version = int(data.get("schema_version", -1))
        if version != FLEET_SCHEMA_VERSION:
            raise ValueError(
                f"fleet schema version {version} does not match the current "
                f"version {FLEET_SCHEMA_VERSION}"
            )
        return cls(
            spec=FleetSpec.from_dict(data["spec"]),
            agent_state=dict(data["agent_state"]),
            device_states=[dict(state) for state in data.get("device_states", ())],
            round_reports=[
                RoundReport.from_dict(entry) for entry in data.get("round_reports", ())
            ],
            rounds_completed=int(data.get("rounds_completed", 0)),
            fingerprint=data.get("fingerprint", ""),
            lineage=data.get("lineage", ""),
            schema_version=version,
        )

    # -- persistence --------------------------------------------------------------------

    def save(self, path: str) -> str:
        """Atomically write the fleet artifact as JSON; returns ``path``."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "FleetArtifact":
        """Load a fleet artifact written by :meth:`save`.

        Raises ``ValueError`` when the file does not round-trip to a
        schema-compatible artifact whose stored fingerprint and lineage
        match a recomputation from its own spec and agent configuration.
        """
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"fleet file {path!r} does not contain an object")
        artifact = cls.from_dict(data)
        agent_config = AgentConfig.from_dict(artifact.agent_state["config"])
        expected = artifact.spec.fingerprint(agent_config)
        expected_lineage = artifact.spec.lineage(agent_config)
        if artifact.fingerprint != expected or artifact.lineage != expected_lineage:
            raise ValueError(
                f"fleet fingerprint {artifact.fingerprint!r} does not match "
                f"its content ({expected!r})"
            )
        if artifact.rounds_completed != artifact.spec.rounds:
            raise ValueError(
                f"fleet artifact completed {artifact.rounds_completed} rounds "
                f"but its spec pre-registers {artifact.spec.rounds}"
            )
        if len(artifact.device_states) != artifact.spec.devices:
            raise ValueError(
                f"fleet artifact carries {len(artifact.device_states)} device "
                f"states but its spec pre-registers {artifact.spec.devices} devices"
            )
        return artifact

    # -- evaluation ---------------------------------------------------------------------

    def evaluation_only(self) -> "FleetArtifact":
        """A copy stripped to what an evaluator needs: the merged agent.

        The per-device states and round reports dominate the artifact's size
        (they scale with the fleet) but only matter for resumption and
        reporting; shipping a cell's artifact to a pool worker without them
        avoids serialising ``devices`` full agents the cell never reads.
        """
        return FleetArtifact(
            spec=self.spec,
            agent_state=self.agent_state,
            device_states=[],
            round_reports=[],
            rounds_completed=self.rounds_completed,
            fingerprint=self.fingerprint,
            lineage=self.lineage,
            schema_version=self.schema_version,
        )

    def build_agent(self) -> NextAgent:
        """Materialise the merged fleet agent (a fresh instance every call)."""
        return NextAgent.from_dict(self.agent_state)

    def build_device_agent(self, device: int) -> NextAgent:
        """Materialise one device's post-training agent (for resumption)."""
        return NextAgent.from_dict(self.device_states[device])

    def build_governor(self) -> NextGovernor:
        """A Next governor running the merged fleet agent greedily."""
        return NextGovernor(agent=self.build_agent(), training=False)
