"""The frame window: user-interaction analysis via the mode of the frame rate.

Section IV-A: the agent samples the frame rate every 25 ms over a 4 s
*frame window* (160 samples) and takes the statistical mode of those samples
as the target FPS -- "the most possible frame rate suitable to provide the
desirable QoS for the user during that session".  The mode, unlike a mean, is
robust to the bursty structure of interactive sessions: a window containing a
scroll burst at 58 FPS and a reading pause near 0 FPS has a mode at one of
the two plateaus rather than a meaningless value in between.

The paper also quantises the frame-rate axis to keep the Q-table small;
30 levels gave the best training-time/quality trade-off on the Note 9
(Section IV-B and Fig. 6).  :func:`quantise_fps` implements that operation
and is reused by the state discretiser.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


def quantise_fps(fps: float, levels: int, max_fps: float = 60.0) -> int:
    """Quantise a frame rate into one of ``levels`` discrete bins.

    The bins partition ``[0, max_fps]`` uniformly; the returned value is the
    bin index in ``[0, levels]`` (the top edge maps to ``levels`` so that the
    full frame rate keeps its own level, mirroring the paper's observation
    that 60 FPS needs no quantisation at 60 Hz).

    Parameters
    ----------
    fps:
        Frame rate to quantise (values above ``max_fps`` are clamped).
    levels:
        Number of quantisation levels (>= 1).
    max_fps:
        Upper end of the representable range (display refresh rate).
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    if max_fps <= 0:
        raise ValueError("max_fps must be positive")
    clamped = min(max_fps, max(0.0, fps))
    return int(round(clamped / max_fps * levels))


def dequantise_fps(level: int, levels: int, max_fps: float = 60.0) -> float:
    """Map a quantisation level back to the centre FPS value it represents."""
    if levels < 1:
        raise ValueError("levels must be at least 1")
    level = min(levels, max(0, level))
    return level / levels * max_fps


@dataclass(frozen=True)
class FrameWindowConfig:
    """Configuration of the frame window monitor.

    Attributes
    ----------
    sample_period_s:
        How often the frame rate is sampled (25 ms in the paper).
    window_s:
        Length of the frame window (4 s in the paper, i.e. 160 samples).
    quantisation_levels:
        Frame-rate quantisation applied before the mode is computed (30 in
        the paper's best configuration).
    max_fps:
        Display refresh rate bounding the frame rate.
    """

    sample_period_s: float = 0.025
    window_s: float = 4.0
    quantisation_levels: int = 30
    max_fps: float = 60.0

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.window_s <= self.sample_period_s:
            raise ValueError("window_s must exceed sample_period_s")
        if self.quantisation_levels < 1:
            raise ValueError("quantisation_levels must be at least 1")
        if self.max_fps <= 0:
            raise ValueError("max_fps must be positive")

    @property
    def samples_per_window(self) -> int:
        """Number of samples one full window holds (160 in the paper)."""
        return int(round(self.window_s / self.sample_period_s))


class FrameWindowMonitor:
    """Collects frame-rate samples and produces the target FPS (window mode)."""

    def __init__(self, config: Optional[FrameWindowConfig] = None) -> None:
        self.config = config or FrameWindowConfig()
        self._samples: Deque[int] = deque(maxlen=self.config.samples_per_window)
        self._last_sample_time_s: Optional[float] = None
        self._raw_last_fps: float = 0.0

    # -- sampling ---------------------------------------------------------------

    def observe(self, time_s: float, fps: float) -> bool:
        """Offer an FPS observation at ``time_s``.

        The monitor keeps its own 25 ms cadence: observations arriving faster
        than ``sample_period_s`` are ignored, so the caller may simply forward
        every simulation tick.  Returns ``True`` when a sample was recorded.

        Time running *backwards* means the session clock restarted (a new
        training episode, or an agent restored from an artifact entering a
        fresh evaluation run): the sample is accepted and the cadence
        restarts from the new clock, instead of rejecting every observation
        until the new clock catches up with the old one.
        """
        self._raw_last_fps = fps
        if (
            self._last_sample_time_s is not None
            and 0.0 <= time_s - self._last_sample_time_s < self.config.sample_period_s - 1e-9
        ):
            return False
        self._last_sample_time_s = time_s
        level = quantise_fps(fps, self.config.quantisation_levels, self.config.max_fps)
        self._samples.append(level)
        return True

    # -- results ----------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Samples currently held in the window."""
        return len(self._samples)

    @property
    def is_full(self) -> bool:
        """Whether the window has accumulated its full 4 s of samples."""
        return len(self._samples) == self._samples.maxlen

    @property
    def last_fps(self) -> float:
        """The most recent raw FPS observation."""
        return self._raw_last_fps

    def mode_level(self) -> int:
        """Quantised mode of the current window (0 when the window is empty).

        Ties are broken towards the *higher* level so that the agent never
        under-serves the user when two frame-rate plateaus are equally common.
        """
        if not self._samples:
            return 0
        counts = Counter(self._samples)
        best_count = max(counts.values())
        candidates = [level for level, count in counts.items() if count == best_count]
        return max(candidates)

    def target_fps(self) -> float:
        """The target FPS: the de-quantised mode of the frame window."""
        return dequantise_fps(
            self.mode_level(), self.config.quantisation_levels, self.config.max_fps
        )

    def histogram(self) -> Tuple[Tuple[int, int], ...]:
        """(level, count) pairs of the current window, sorted by level."""
        counts = Counter(self._samples)
        return tuple(sorted(counts.items()))

    def reset(self) -> None:
        """Drop all samples (used when the foreground application changes)."""
        self._samples.clear()
        self._last_sample_time_s = None
        self._raw_last_fps = 0.0

    # -- serialisation ------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable monitor state (window contents and cadence)."""
        return {
            "samples": list(self._samples),
            "last_sample_time_s": self._last_sample_time_s,
            "raw_last_fps": self._raw_last_fps,
        }

    def load_state_dict(self, data: dict) -> None:
        """Restore the monitor from :meth:`state_dict` output."""
        self._samples.clear()
        self._samples.extend(int(level) for level in data.get("samples", ()))
        last = data.get("last_sample_time_s")
        self._last_sample_time_s = None if last is None else float(last)
        self._raw_last_fps = float(data.get("raw_last_fps", 0.0))
