"""RL state definition and discretisation for the Next agent.

Section IV-B lists the state inputs used on the Exynos 9810 implementation:
the operating frequency of the big CPU, LITTLE CPU and GPU clusters, the
current FPS, the target FPS from the frame window, the current power reading
and the big-cluster and device temperatures.  A tabular Q-learner needs those
continuous quantities mapped to a (small) discrete space; the paper achieves
this by quantising the frame rate (Section IV-B / Fig. 6) and the same idea
is applied to the other axes here.

The discretisation granularity is configurable because it is the single knob
that trades training time against policy quality -- the trade-off Fig. 6 of
the paper explores for the FPS axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.frame_window import quantise_fps
from repro.governors.base import GovernorObservation
from repro.soc.cluster import Cluster


@dataclass(frozen=True)
class NextState:
    """One discretised state of the Next agent.

    The state is hashable (it is used as a Q-table key) and keeps the
    cluster-frequency components in a canonical order.
    """

    frequency_bins: Tuple[int, ...]
    fps_bin: int
    target_fps_bin: int
    power_bin: int
    temperature_big_bin: int
    temperature_device_bin: int

    def as_tuple(self) -> Tuple[int, ...]:
        """Flatten the state into a plain tuple of ints (stable order)."""
        return (
            *self.frequency_bins,
            self.fps_bin,
            self.target_fps_bin,
            self.power_bin,
            self.temperature_big_bin,
            self.temperature_device_bin,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"NextState{self.as_tuple()}"


@dataclass(frozen=True)
class StateDiscretiserConfig:
    """Granularity of each state axis.

    Attributes
    ----------
    cluster_order:
        Names of the clusters contributing frequency components, in a fixed
        order (defaults to the paper's big / LITTLE / GPU).
    frequency_bins:
        Number of bins for each cluster's frequency axis.
    fps_bins:
        Number of bins for the current-FPS axis.
    target_fps_bins:
        Number of bins for the target-FPS axis (usually equal to
        ``fps_bins``).
    power_bins:
        Number of bins for the power axis.
    temperature_bins:
        Number of bins for the big-cluster temperature axis.
    device_temperature_bins:
        Number of bins for the device temperature axis (1 disables the axis).
    max_fps:
        Display refresh rate bounding the FPS axes.
    max_power_w:
        Power reading mapped to the top power bin.
    max_temperature_c / ambient_c:
        Temperature range mapped across the temperature bins.
    """

    cluster_order: Tuple[str, ...] = ("big", "little", "gpu")
    frequency_bins: int = 4
    fps_bins: int = 6
    target_fps_bins: int = 6
    power_bins: int = 2
    temperature_bins: int = 2
    device_temperature_bins: int = 1
    max_fps: float = 60.0
    max_power_w: float = 12.0
    max_temperature_c: float = 95.0
    ambient_c: float = 21.0

    def __post_init__(self) -> None:
        if not self.cluster_order:
            raise ValueError("cluster_order must not be empty")
        for value, name in (
            (self.frequency_bins, "frequency_bins"),
            (self.fps_bins, "fps_bins"),
            (self.target_fps_bins, "target_fps_bins"),
            (self.power_bins, "power_bins"),
            (self.temperature_bins, "temperature_bins"),
            (self.device_temperature_bins, "device_temperature_bins"),
        ):
            if value < 1:
                raise ValueError(f"{name} must be at least 1")
        if self.max_fps <= 0 or self.max_power_w <= 0:
            raise ValueError("max_fps and max_power_w must be positive")
        if self.max_temperature_c <= self.ambient_c:
            raise ValueError("max_temperature_c must exceed ambient_c")

    @property
    def state_space_size(self) -> int:
        """Total number of representable states (upper bound on Q-table rows)."""
        size = 1
        for _ in self.cluster_order:
            size *= self.frequency_bins
        size *= (self.fps_bins + 1) * (self.target_fps_bins + 1)
        size *= self.power_bins * self.temperature_bins * self.device_temperature_bins
        return size


class StateDiscretiser:
    """Maps raw observations into :class:`NextState` instances."""

    def __init__(self, config: StateDiscretiserConfig = StateDiscretiserConfig()) -> None:
        self.config = config

    # -- individual axes ----------------------------------------------------------

    def _bin_linear(self, value: float, low: float, high: float, bins: int) -> int:
        if bins <= 1:
            return 0
        if high <= low:
            return 0
        x = (value - low) / (high - low)
        x = min(1.0, max(0.0, x))
        return min(bins - 1, int(x * bins))

    def frequency_bin(self, cluster: Cluster) -> int:
        """Bin of a cluster's current frequency (relative to its table)."""
        table = cluster.opp_table
        fraction = cluster.current_index / max(1, len(table) - 1)
        return self._bin_linear(fraction, 0.0, 1.0, self.config.frequency_bins)

    def fps_bin(self, fps: float) -> int:
        """Bin of the current FPS."""
        return quantise_fps(fps, self.config.fps_bins, self.config.max_fps)

    def target_fps_bin(self, target_fps: float) -> int:
        """Bin of the target FPS."""
        return quantise_fps(target_fps, self.config.target_fps_bins, self.config.max_fps)

    def power_bin(self, power_w: float) -> int:
        """Bin of the power reading."""
        return self._bin_linear(power_w, 0.0, self.config.max_power_w, self.config.power_bins)

    def temperature_bin(self, temperature_c: float) -> int:
        """Bin of the big-cluster temperature reading."""
        return self._bin_linear(
            temperature_c,
            self.config.ambient_c,
            self.config.max_temperature_c,
            self.config.temperature_bins,
        )

    def device_temperature_bin(self, temperature_c: float) -> int:
        """Bin of the device temperature reading."""
        return self._bin_linear(
            temperature_c,
            self.config.ambient_c,
            self.config.max_temperature_c,
            self.config.device_temperature_bins,
        )

    # -- full state -----------------------------------------------------------------

    def discretise(
        self,
        observation: GovernorObservation,
        clusters: Mapping[str, Cluster],
        target_fps: float,
    ) -> NextState:
        """Build the discretised state from an observation and the clusters."""
        frequency_bins = []
        for name in self.config.cluster_order:
            if name in clusters:
                frequency_bins.append(self.frequency_bin(clusters[name]))
            else:
                frequency_bins.append(0)
        return NextState(
            frequency_bins=tuple(frequency_bins),
            fps_bin=self.fps_bin(observation.fps),
            target_fps_bin=self.target_fps_bin(target_fps),
            power_bin=self.power_bin(observation.power_w),
            temperature_big_bin=self.temperature_bin(observation.temperature_big_c),
            temperature_device_bin=self.device_temperature_bin(
                observation.temperature_device_c
            ),
        )
