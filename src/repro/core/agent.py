"""The Next agent: frame window + PPDW reward + Q-learning + maxfreq actuation.

This is the object that reproduces Section IV of the paper.  Its life cycle
mirrors the on-device deployment:

* it runs continuously in the "application layer" (here: as a policy governor
  invoked by the simulation engine every 100 ms),
* it samples the frame rate every 25 ms into the frame window and takes the
  window mode as the target FPS,
* at every invocation it discretises the observation into a state, computes
  the PPDW-based reward for the *previous* action, performs the Q-learning
  update, selects the next action (epsilon-greedy while training, greedy once
  trained) and applies it by moving one cluster's ``maxfreq`` limit one OPP
  step, and
* it keeps one Q-table per application, so an application that was trained
  before is controlled greedily from its stored table on later runs.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.actions import Action, ActionSpace
from repro.core.frame_window import FrameWindowConfig, FrameWindowMonitor
from repro.core.ppdw import RewardConfig, compute_reward
from repro.core.qlearning import QLearningConfig, QLearningCore
from repro.core.qtable import QTableStore
from repro.core.state import NextState, StateDiscretiser, StateDiscretiserConfig
from repro.governors.base import GovernorObservation
from repro.soc.cluster import Cluster


@dataclass
class AgentConfig:
    """Configuration of the Next agent.

    Attributes
    ----------
    cluster_order:
        The clusters the agent controls, in state/action order.
    invocation_period_s:
        How often the agent is invoked (100 ms in the paper).
    frame_window:
        Frame-window (target FPS) configuration.
    discretiser:
        State discretisation configuration.
    qlearning:
        Q-learning hyper-parameters.
    reward:
        PPDW reward shaping.
    ambient_c:
        Ambient temperature used in the PPDW computation.
    trained_visit_threshold:
        Total Q-table visits after which an application counts as trained
        (used by :meth:`NextAgent.is_trained` and the experiment harness).
    td_error_window:
        Number of recent TD errors kept for the convergence diagnostics.
    """

    cluster_order: Tuple[str, ...] = ("big", "little", "gpu")
    invocation_period_s: float = 0.1
    frame_window: FrameWindowConfig = field(default_factory=FrameWindowConfig)
    discretiser: StateDiscretiserConfig = field(default_factory=StateDiscretiserConfig)
    qlearning: QLearningConfig = field(default_factory=QLearningConfig)
    reward: RewardConfig = field(default_factory=RewardConfig)
    ambient_c: float = 21.0
    trained_visit_threshold: int = 800
    td_error_window: int = 200

    def __post_init__(self) -> None:
        if self.invocation_period_s <= 0:
            raise ValueError("invocation_period_s must be positive")
        if self.trained_visit_threshold < 1:
            raise ValueError("trained_visit_threshold must be positive")
        if self.td_error_window < 1:
            raise ValueError("td_error_window must be positive")
        if tuple(self.discretiser.cluster_order) != tuple(self.cluster_order):
            # Keep the state axes aligned with the action axes.
            object.__setattr__(
                self,
                "discretiser",
                StateDiscretiserConfig(
                    cluster_order=tuple(self.cluster_order),
                    frequency_bins=self.discretiser.frequency_bins,
                    fps_bins=self.discretiser.fps_bins,
                    target_fps_bins=self.discretiser.target_fps_bins,
                    power_bins=self.discretiser.power_bins,
                    temperature_bins=self.discretiser.temperature_bins,
                    device_temperature_bins=self.discretiser.device_temperature_bins,
                    max_fps=self.discretiser.max_fps,
                    max_power_w=self.discretiser.max_power_w,
                    max_temperature_c=self.discretiser.max_temperature_c,
                    ambient_c=self.discretiser.ambient_c,
                ),
            )

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the full (nested) configuration."""
        return json.loads(json.dumps(asdict(self)))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AgentConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        discretiser = dict(data["discretiser"])
        discretiser["cluster_order"] = tuple(discretiser["cluster_order"])
        return cls(
            cluster_order=tuple(data["cluster_order"]),
            invocation_period_s=float(data["invocation_period_s"]),
            frame_window=FrameWindowConfig(**data["frame_window"]),
            discretiser=StateDiscretiserConfig(**discretiser),
            qlearning=QLearningConfig(**data["qlearning"]),
            reward=RewardConfig(**data["reward"]),
            ambient_c=float(data["ambient_c"]),
            trained_visit_threshold=int(data["trained_visit_threshold"]),
            td_error_window=int(data["td_error_window"]),
        )


def _encode_rng_state(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` output as JSON-safe nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _decode_rng_state(data: Sequence[Any]) -> Tuple[Any, ...]:
    """Inverse of :func:`_encode_rng_state`."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


@dataclass
class AgentStepInfo:
    """Diagnostics returned by one :meth:`NextAgent.step` call."""

    state: NextState
    action: Action
    action_index: int
    reward: Optional[float]
    target_fps: float
    exploring: bool


class NextAgent:
    """User-interaction-aware reinforcement-learning DVFS agent."""

    def __init__(
        self,
        config: Optional[AgentConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or AgentConfig()
        self._rng = random.Random(seed if seed is not None else 0)
        self.action_space = ActionSpace(self.config.cluster_order)
        self.frame_window = FrameWindowMonitor(self.config.frame_window)
        self.discretiser = StateDiscretiser(self.config.discretiser)
        self.store = QTableStore(
            action_count=len(self.action_space),
            initial_q=self.config.qlearning.initial_q,
        )
        self._learners: Dict[str, QLearningCore] = {}
        self._app_name: Optional[str] = None
        self._training = True
        self._previous: Optional[Tuple[NextState, int, float]] = None
        self._td_errors: Deque[float] = deque(maxlen=self.config.td_error_window)
        self._steps_per_app: Dict[str, int] = {}
        self._training_time_per_app: Dict[str, float] = {}
        self._cumulative_reward = 0.0

    # -- application management -------------------------------------------------------

    @property
    def app_name(self) -> Optional[str]:
        """Name of the application currently in the foreground."""
        return self._app_name

    @property
    def training(self) -> bool:
        """Whether exploration / learning is currently enabled."""
        return self._training

    def set_training(self, enabled: bool) -> None:
        """Globally enable or disable learning (exploitation-only when off)."""
        self._training = enabled
        for learner in self._learners.values():
            learner.set_exploration(enabled)

    def _learner_for(self, app_name: str) -> QLearningCore:
        learner = self._learners.get(app_name)
        if learner is None:
            learner = QLearningCore(
                action_count=len(self.action_space),
                config=self.config.qlearning,
                qtable=self.store.table_for(app_name),
                rng=self._rng,
            )
            learner.set_exploration(self._training)
            self._learners[app_name] = learner
        return learner

    def set_application(self, app_name: str) -> None:
        """Switch the foreground application; the frame window starts over."""
        if app_name != self._app_name:
            self._app_name = app_name
            self._previous = None
            self.frame_window.reset()
            self._learner_for(app_name)

    def install_table(self, app_name: str, table) -> None:
        """Install an externally supplied Q-table (e.g. a federated merge).

        The per-app learner, when one already exists, holds a direct
        reference to the table it was built with; swapping the store entry
        alone would leave it training (and acting from) the stale object, so
        the learner is re-pointed at the new table too.
        """
        self.store.set_table(app_name, table)
        learner = self._learners.get(app_name)
        if learner is not None:
            learner.qtable = table

    def is_trained(self, app_name: Optional[str] = None) -> bool:
        """Whether the (current or named) application's table looks converged."""
        name = app_name if app_name is not None else self._app_name
        if name is None:
            return False
        return self.store.is_trained(name, min_visits=self.config.trained_visit_threshold)

    # -- observation ---------------------------------------------------------------------

    def observe_frame(self, time_s: float, fps: float) -> None:
        """Feed one fast-path FPS observation into the frame window."""
        self.frame_window.observe(time_s, fps)

    @property
    def target_fps(self) -> float:
        """Current target FPS (mode of the frame window)."""
        return self.frame_window.target_fps()

    # -- decision step ---------------------------------------------------------------------

    def step(
        self,
        observation: GovernorObservation,
        clusters: Mapping[str, Cluster],
    ) -> AgentStepInfo:
        """One agent invocation: learn from the last action, pick the next one."""
        if self._app_name is None:
            self.set_application("default")
        learner = self._learner_for(self._app_name)

        target_fps = self.frame_window.target_fps()
        state = self.discretiser.discretise(observation, clusters, target_fps)
        # Q-tables are keyed by plain tuples so they serialise to JSON and can
        # round-trip through the per-app store / federated aggregation.
        state_key = state.as_tuple()

        reward: Optional[float] = None
        if self._previous is not None:
            prev_state, prev_action, prev_target = self._previous
            reward = compute_reward(
                fps=observation.fps,
                target_fps=prev_target,
                power_w=observation.power_w,
                temperature_c=observation.temperature_big_c,
                ambient_c=self.config.ambient_c,
                config=self.config.reward,
                dropped_frames=observation.frames_dropped,
                demanded_frames=observation.frames_demanded,
            )
            self._cumulative_reward += reward
            if self._training:
                before = learner.qtable.get(prev_state, prev_action)
                after = learner.update(prev_state, prev_action, reward, state_key)
                self._td_errors.append(abs(after - before))

        exploring = self._training
        action_index = (
            learner.select_action(state_key) if exploring else learner.greedy_action(state_key)
        )
        action = self.action_space.apply(action_index, clusters)

        self._previous = (state_key, action_index, target_fps)
        self._steps_per_app[self._app_name] = self._steps_per_app.get(self._app_name, 0) + 1
        if self._training:
            self._training_time_per_app[self._app_name] = (
                self._training_time_per_app.get(self._app_name, 0.0)
                + self.config.invocation_period_s
            )
        return AgentStepInfo(
            state=state,
            action=action,
            action_index=action_index,
            reward=reward,
            target_fps=target_fps,
            exploring=exploring,
        )

    # -- diagnostics --------------------------------------------------------------------------

    @property
    def cumulative_reward(self) -> float:
        """Sum of rewards received since construction."""
        return self._cumulative_reward

    def steps_for(self, app_name: str) -> int:
        """Number of agent invocations spent on ``app_name``."""
        return self._steps_per_app.get(app_name, 0)

    def training_time_s(self, app_name: str) -> float:
        """Simulated on-device time spent training on ``app_name``."""
        return self._training_time_per_app.get(app_name, 0.0)

    def recent_td_error(self) -> float:
        """Mean absolute Q-value change over the recent update window."""
        if not self._td_errors:
            return float("inf")
        return sum(self._td_errors) / len(self._td_errors)

    def has_converged(self, td_error_threshold: float = 0.02) -> bool:
        """Convergence heuristic used by the training-time experiments."""
        return (
            len(self._td_errors) == self._td_errors.maxlen
            and self.recent_td_error() < td_error_threshold
        )

    def qtable_size(self, app_name: Optional[str] = None) -> int:
        """Number of distinct states in the (current or named) app's Q-table."""
        name = app_name if app_name is not None else self._app_name
        if name is None:
            return 0
        return len(self.store.table_for(name))

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serialisable agent state.

        Beyond the per-application Q-tables this captures every piece of
        mutable state -- per-app learner epsilons and update counts, the
        shared RNG, the frame window, the in-flight transition and the
        step/training-time accounting -- so a restored agent continues (and
        in particular evaluates greedily) bit-identically to this one.
        """
        previous: Optional[List[Any]] = None
        if self._previous is not None:
            prev_state, prev_action, prev_target = self._previous
            previous = [list(prev_state), prev_action, prev_target]
        return {
            "config": self.config.to_dict(),
            "rng_state": _encode_rng_state(self._rng.getstate()),
            "training": self._training,
            "app_name": self._app_name,
            "tables": self.store.to_dict(),
            "learners": {
                app_name: learner.state_dict()
                for app_name, learner in sorted(self._learners.items())
            },
            "frame_window": self.frame_window.state_dict(),
            "previous": previous,
            "td_errors": list(self._td_errors),
            "steps_per_app": dict(sorted(self._steps_per_app.items())),
            "training_time_per_app": dict(sorted(self._training_time_per_app.items())),
            "cumulative_reward": self._cumulative_reward,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NextAgent":
        """Rebuild an agent from :meth:`to_dict` output."""
        config = AgentConfig.from_dict(data["config"])
        agent = cls(config=config)
        agent._training = bool(data["training"])
        agent.store = QTableStore.from_dict(data["tables"])
        for app_name, learner_state in data.get("learners", {}).items():
            agent._learner_for(app_name).load_state_dict(learner_state)
        # Restore the shared RNG only after learner construction so that any
        # draws made during rebuild cannot shift the evaluation-time stream.
        agent._rng.setstate(_decode_rng_state(data["rng_state"]))
        agent._app_name = data.get("app_name")
        agent.frame_window.load_state_dict(data.get("frame_window", {}))
        previous = data.get("previous")
        if previous is not None:
            prev_state, prev_action, prev_target = previous
            agent._previous = (tuple(prev_state), int(prev_action), float(prev_target))
        agent._td_errors = deque(
            (float(error) for error in data.get("td_errors", ())),
            maxlen=config.td_error_window,
        )
        agent._steps_per_app = {
            app: int(steps) for app, steps in data.get("steps_per_app", {}).items()
        }
        agent._training_time_per_app = {
            app: float(seconds)
            for app, seconds in data.get("training_time_per_app", {}).items()
        }
        agent._cumulative_reward = float(data.get("cumulative_reward", 0.0))
        return agent
