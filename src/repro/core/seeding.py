"""Deterministic seed derivation shared by the experiment layers.

Every pre-registered run in this codebase -- scenario cells, training specs,
federated fleet devices -- derives its RNG seeds by hashing its coordinates
rather than by calling Python's process-randomised ``hash`` or drawing from
global randomness.  That is what makes results reproducible across
processes, interpreter runs and machines, and what makes fingerprint-keyed
caches trustworthy: the same coordinates always denote the same run.

The helpers live in :mod:`repro.core` so both the core data model (training
specs, fleet specs) and the :mod:`repro.experiments` harness can use one
derivation scheme (:mod:`repro.experiments.matrix` re-exports ``derive_seed``
for backwards compatibility).  :func:`canonical_fingerprint` is the single
content-hashing primitive behind every fingerprint in the codebase -- cell,
training-spec, fleet and shard-manifest fingerprints all hash the same
canonical-JSON form, so identity is comparable across machines.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

_SEED_MODULUS = 2**31

#: Truncation length of every content fingerprint.  24 hex characters (96
#: bits) keep collision probability negligible at any realistic store size
#: while staying filename- and log-friendly.
FINGERPRINT_LENGTH = 24


def canonical_fingerprint(payload: Any) -> str:
    """Stable content hash of a JSON-serialisable payload.

    The payload is serialised canonically (sorted keys, no whitespace) and
    hashed with SHA-256, so two payloads share a fingerprint iff they are
    semantically equal JSON documents -- independent of dict insertion order,
    process or machine.  All fingerprint schemes in the codebase (scenario
    cells, training specs, fleets, shard manifests) funnel through here.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:FINGERPRINT_LENGTH]


def derive_seed(*parts: Any) -> int:
    """Derive a stable 31-bit seed from arbitrary coordinate parts.

    Uses SHA-256 over the stringified parts so the value is identical across
    processes, interpreter runs and machines (unlike built-in ``hash``).
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS
