"""Deterministic seed derivation shared by the experiment layers.

Every pre-registered run in this codebase -- scenario cells, training specs,
federated fleet devices -- derives its RNG seeds by hashing its coordinates
rather than by calling Python's process-randomised ``hash`` or drawing from
global randomness.  That is what makes results reproducible across
processes, interpreter runs and machines, and what makes fingerprint-keyed
caches trustworthy: the same coordinates always denote the same run.

The helper lives in :mod:`repro.core` so both the core federated-fleet data
model and the :mod:`repro.experiments` harness can use one derivation scheme
(:mod:`repro.experiments.matrix` re-exports it for backwards compatibility).
"""

from __future__ import annotations

import hashlib
from typing import Any

_SEED_MODULUS = 2**31


def derive_seed(*parts: Any) -> int:
    """Derive a stable 31-bit seed from arbitrary coordinate parts.

    Uses SHA-256 over the stringified parts so the value is identical across
    processes, interpreter runs and machines (unlike built-in ``hash``).
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS
