"""Governor adapter exposing the Next agent to the simulation engine.

The simulation engine only knows the :class:`~repro.governors.base.Governor`
interface.  :class:`NextGovernor` plugs a :class:`~repro.core.agent.NextAgent`
into it: the fast-path tick hook feeds the 25 ms frame window, the periodic
``update`` call (every 100 ms, as in the paper) runs one agent step, and the
session hooks switch the per-application Q-table.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.agent import AgentConfig, AgentStepInfo, NextAgent
from repro.governors.base import Governor, GovernorObservation
from repro.soc.cluster import Cluster


class NextGovernor(Governor):
    """``Next``: user-interaction-aware RL DVFS as a policy governor."""

    def __init__(
        self,
        agent: Optional[NextAgent] = None,
        config: Optional[AgentConfig] = None,
        seed: Optional[int] = None,
        training: bool = True,
    ) -> None:
        super().__init__(name="next")
        if agent is not None and (config is not None or seed is not None):
            # A supplied agent (e.g. one restored from an AgentArtifact)
            # carries its own config and RNG state; silently ignoring the
            # other arguments would hide a mis-wired evaluation run.
            raise ValueError("pass either a ready agent or config/seed, not both")
        self.agent = agent if agent is not None else NextAgent(config=config, seed=seed)
        self.invocation_period_s = self.agent.config.invocation_period_s
        self.agent.set_training(training)
        self.last_step: Optional[AgentStepInfo] = None

    # -- training control -------------------------------------------------------------

    @property
    def training(self) -> bool:
        """Whether the wrapped agent is currently learning."""
        return self.agent.training

    def set_training(self, enabled: bool) -> None:
        """Switch the wrapped agent between training and exploitation."""
        self.agent.set_training(enabled)

    # -- governor interface -----------------------------------------------------------

    def observe_tick(self, time_s: float, fps: float) -> None:
        """Forward every tick's FPS to the agent's 25 ms frame window."""
        self.agent.observe_frame(time_s, fps)

    def on_session_start(self, app_name: str) -> None:
        """Tell the agent which application came to the foreground."""
        self.agent.set_application(app_name)

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Run one agent decision step."""
        self.last_step = self.agent.step(observation, clusters)

    def reset(self, clusters: Dict[str, Cluster]) -> None:
        """Release limits; the learned Q-tables are deliberately kept."""
        super().reset(clusters)
        self.last_step = None
