"""Performance per degree watt (PPDW), the metric introduced by the paper.

Section III-B argues that the usual performance-per-watt metric ignores the
thermal dimension that matters on a hand-held device, and defines

.. math::

    PPDW_i = \\frac{FPS_i}{\\Delta T \\times P_i}, \\qquad \\Delta T = T_i - T_a

where :math:`FPS_i`, :math:`P_i` and :math:`T_i` are the frame rate, power
and peak temperature during period *i* and :math:`T_a` is the ambient
temperature.  The achievable range is bracketed by

* ``PPDW_worst = FPS_least / ((T_max - T_a) * P_max)`` -- the least frame
  rate produced while the chip burns maximum power at its thermal limit, and
* ``PPDW_best  = FPS_max / ((T_least - T_a) * P_least)`` -- the full frame
  rate at minimal power with negligible heating,

and the agent's reward is the PPDW value itself (Eq. 4), optionally shaped
with a penalty for missing the user's target FPS so that the two goals stated
in the paper ("achieve the target FPS" and "achieve the best PPDW for that
FPS") are both expressed in the reward signal.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Minimum temperature rise (Celsius) used in the denominator to keep the
#: metric finite when the device sits at ambient temperature.
MIN_DELTA_T_C = 0.5

#: Minimum power (watts) used in the denominator for the same reason.
MIN_POWER_W = 1e-3


def compute_ppdw(
    fps: float,
    power_w: float,
    temperature_c: float,
    ambient_c: float,
) -> float:
    """Evaluate Eq. 1 of the paper.

    Parameters
    ----------
    fps:
        Frames per second delivered during the evaluation period.
    power_w:
        Power consumption during the period, in watts.
    temperature_c:
        Peak temperature during the period, in Celsius.
    ambient_c:
        Ambient temperature, in Celsius.

    Returns
    -------
    float
        The PPDW value.  Guards keep the result finite when the temperature
        rise or the power is (numerically) zero.
    """
    if fps < 0:
        raise ValueError("fps must be non-negative")
    delta_t = max(MIN_DELTA_T_C, temperature_c - ambient_c)
    power = max(MIN_POWER_W, power_w)
    return fps / (delta_t * power)


@dataclass(frozen=True)
class PpdwBounds:
    """The achievable PPDW range of a platform (Eq. 2 of the paper).

    Attributes
    ----------
    worst:
        ``PPDW_worst``: least FPS at maximum power and maximum temperature.
    best:
        ``PPDW_best``: maximum FPS at least power with least heating.
    """

    worst: float
    best: float

    def __post_init__(self) -> None:
        if self.worst < 0 or self.best <= 0:
            raise ValueError("PPDW bounds must be non-negative (best strictly positive)")
        if self.best < self.worst:
            raise ValueError("PPDW_best must be at least PPDW_worst")

    @classmethod
    def from_platform_limits(
        cls,
        fps_max: float,
        fps_least: float,
        power_max_w: float,
        power_least_w: float,
        temperature_max_c: float,
        temperature_least_c: float,
        ambient_c: float,
    ) -> "PpdwBounds":
        """Build the bounds from the platform's extreme operating conditions."""
        worst = compute_ppdw(fps_least, power_max_w, temperature_max_c, ambient_c)
        best = compute_ppdw(fps_max, power_least_w, temperature_least_c, ambient_c)
        return cls(worst=worst, best=best)

    def normalise(self, ppdw: float) -> float:
        """Map a PPDW value into [0, 1] within the bounds (clamped)."""
        span = self.best - self.worst
        if span <= 0:
            return 1.0 if ppdw >= self.best else 0.0
        return min(1.0, max(0.0, (ppdw - self.worst) / span))

    def contains(self, ppdw: float) -> bool:
        """Whether ``ppdw`` lies inside the achievable range (Eq. 2)."""
        return self.worst < ppdw <= self.best


@dataclass(frozen=True)
class RewardConfig:
    """Shaping of the RL reward around the PPDW metric.

    Attributes
    ----------
    fps_shortfall_weight:
        Weight of the penalty applied when the delivered FPS falls short of
        the target FPS.  The penalty is
        ``weight * (target - fps) / max(target, 1)`` so it is scale-free.
        A value of 0 reproduces the bare ``reward = PPDW`` of Eq. 4; the
        default keeps the "achieve the target FPS" objective explicit.
    frame_drop_weight:
        Weight of the penalty for frames that were demanded by the
        application but missed their VSync (the "lag or stutter" the paper's
        Section I identifies as the QoS failure mode).  The penalty is
        ``weight * dropped / max(demanded, 1)``.  Frame drops are observable
        from SurfaceFlinger statistics on a stock device, so the term keeps
        the agent honest even while its own frequency caps are depressing the
        frame-window target.
    ppdw_scale:
        Multiplier applied to the PPDW term so that typical rewards are of
        order one (helps the tabular learner's fixed learning rate).
    """

    fps_shortfall_weight: float = 1.5
    frame_drop_weight: float = 2.5
    ppdw_scale: float = 2.0

    def __post_init__(self) -> None:
        if self.fps_shortfall_weight < 0:
            raise ValueError("fps_shortfall_weight must be non-negative")
        if self.frame_drop_weight < 0:
            raise ValueError("frame_drop_weight must be non-negative")
        if self.ppdw_scale <= 0:
            raise ValueError("ppdw_scale must be positive")


def compute_reward(
    fps: float,
    target_fps: float,
    power_w: float,
    temperature_c: float,
    ambient_c: float,
    config: RewardConfig = RewardConfig(),
    dropped_frames: int = 0,
    demanded_frames: int = 0,
) -> float:
    """Reward of one agent step: shaped PPDW (Eq. 4 plus QoS shaping).

    Returns the scaled PPDW value minus the (scale-free) FPS shortfall and
    frame-drop penalties.  With the default configuration the reward
    increases when the agent delivers the target FPS at lower power and
    temperature, and decreases when the cap is so aggressive that frames are
    missed or dropped.
    """
    ppdw = compute_ppdw(fps, power_w, temperature_c, ambient_c)
    reward = config.ppdw_scale * ppdw
    if target_fps > 0 and config.fps_shortfall_weight > 0:
        shortfall = max(0.0, target_fps - fps) / max(target_fps, 1.0)
        reward -= config.fps_shortfall_weight * shortfall
    if config.frame_drop_weight > 0 and dropped_frames > 0:
        drop_ratio = dropped_frames / max(1, demanded_frames)
        reward -= config.frame_drop_weight * min(1.0, drop_ratio)
    return reward
