"""Q-table storage and per-application persistence.

Section IV-B: "The training for every newly executing application is only
performed once and the Q-table (action-value) results are stored on the
memory so that later when the application is executed again the agent is able
to refer to the Q-table to set the correct frequency of different clusters."

:class:`QTable` is the value store for one application.  :class:`QTableStore`
keeps one table per application name and can persist the whole collection to
a directory of JSON files, which stands in for the on-device storage the
paper uses (and doubles as the artefact exchanged with the cloud in the
federated-training extension of Section IV-C).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple
from urllib.parse import quote, unquote

from repro.core.persistence import atomic_write_json


def escape_app_name(app_name: str) -> str:
    """Map an application name to a path-safe filename component.

    Application names come from arbitrary package identifiers, so they may
    contain ``/``, ``..``, ``%`` or other characters that would corrupt or
    collide file paths.  Percent-encoding everything outside the URL-unreserved
    set (``[A-Za-z0-9._~-]``) is injective -- ``%`` itself is always encoded --
    so :func:`unescape_app_name` recovers the exact name.
    """
    return quote(app_name, safe="")


def unescape_app_name(escaped: str) -> str:
    """Inverse of :func:`escape_app_name`."""
    return unquote(escaped)


def _encode_state(state: Hashable) -> str:
    """Serialise a state key into a JSON-safe string."""
    if isinstance(state, tuple):
        return json.dumps(list(state))
    return json.dumps(state)


def _decode_state(text: str) -> Hashable:
    """Inverse of :func:`_encode_state` (lists become tuples)."""
    value = json.loads(text)
    if isinstance(value, list):
        return tuple(value)
    return value


class QTable:
    """Action-value table: maps a hashable state to a list of Q-values."""

    def __init__(self, action_count: int, initial_q: float = 0.0) -> None:
        if action_count < 1:
            raise ValueError("action_count must be at least 1")
        self.action_count = action_count
        self.initial_q = initial_q
        self._values: Dict[Hashable, List[float]] = {}
        self._visits: Dict[Hashable, int] = {}

    # -- access ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, state: Hashable) -> bool:
        return state in self._values

    def states(self) -> Iterator[Hashable]:
        """Iterate over all states with a row in the table."""
        return iter(self._values)

    def values(self, state: Hashable) -> List[float]:
        """Q-values of every action in ``state`` (creates the row lazily)."""
        row = self._values.get(state)
        if row is None:
            row = [self.initial_q] * self.action_count
            self._values[state] = row
            self._visits[state] = 0
        return row

    def get(self, state: Hashable, action: int) -> float:
        """Q-value of one (state, action) pair."""
        return self.values(state)[action]

    def set(self, state: Hashable, action: int, value: float) -> None:
        """Set the Q-value of one (state, action) pair and count the visit."""
        row = self.values(state)
        row[action] = value
        self._visits[state] = self._visits.get(state, 0) + 1

    def set_row(self, state: Hashable, values: Iterable[float], visits: int) -> None:
        """Install a whole row -- values *and* visit count -- in one call.

        Unlike :meth:`set`, this does not count the write as a fresh update:
        the caller supplies the visit mass explicitly.  Federated aggregation
        needs this to carry the pooled per-device visit counts into a merged
        table; writing the averaged values through :meth:`set` would reset
        every state's weight to the action count and distort any later
        visit-weighted round.
        """
        row = [float(value) for value in values]
        if len(row) != self.action_count:
            raise ValueError(
                f"row has {len(row)} values but the table has "
                f"{self.action_count} actions"
            )
        if visits < 0:
            raise ValueError("visits must be non-negative")
        self._values[state] = row
        self._visits[state] = int(visits)

    def visits(self, state: Hashable) -> int:
        """Number of updates performed on ``state``."""
        return self._visits.get(state, 0)

    def total_visits(self) -> int:
        """Total updates performed on the table."""
        return sum(self._visits.values())

    # -- maintenance ------------------------------------------------------------------

    def merge(self, other: "QTable", weight: float = 0.5) -> None:
        """Blend another table into this one (used by federated aggregation).

        For states present in both tables the values are combined as
        ``(1 - weight) * ours + weight * theirs``; states only present in the
        other table are copied.
        """
        if other.action_count != self.action_count:
            raise ValueError("cannot merge Q-tables with different action counts")
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        for state in other.states():
            theirs = other.values(state)
            if state in self._values:
                ours = self._values[state]
                self._values[state] = [
                    (1.0 - weight) * o + weight * t for o, t in zip(ours, theirs)
                ]
            else:
                self._values[state] = list(theirs)
            self._visits[state] = self._visits.get(state, 0) + other.visits(state)

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable representation of the table."""
        return {
            "action_count": self.action_count,
            "initial_q": self.initial_q,
            "values": {_encode_state(s): v for s, v in self._values.items()},
            "visits": {_encode_state(s): v for s, v in self._visits.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "QTable":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(action_count=data["action_count"], initial_q=data.get("initial_q", 0.0))
        for key, values in data.get("values", {}).items():
            table._values[_decode_state(key)] = list(values)
        for key, visits in data.get("visits", {}).items():
            table._visits[_decode_state(key)] = int(visits)
        return table


class QTableStore:
    """Per-application collection of Q-tables with directory persistence."""

    def __init__(self, action_count: int, initial_q: float = 0.0) -> None:
        self.action_count = action_count
        self.initial_q = initial_q
        self._tables: Dict[str, QTable] = {}

    # -- access -----------------------------------------------------------------------

    def __contains__(self, app_name: str) -> bool:
        return app_name in self._tables

    def app_names(self) -> List[str]:
        """Applications that already have a (possibly partially) trained table."""
        return sorted(self._tables)

    def table_for(self, app_name: str) -> QTable:
        """Return the Q-table for ``app_name``, creating an empty one if needed."""
        table = self._tables.get(app_name)
        if table is None:
            table = QTable(action_count=self.action_count, initial_q=self.initial_q)
            self._tables[app_name] = table
        return table

    def set_table(self, app_name: str, table: QTable) -> None:
        """Install a table for ``app_name`` (e.g. one received from the cloud)."""
        if table.action_count != self.action_count:
            raise ValueError("table action count does not match the store")
        self._tables[app_name] = table

    def is_trained(self, app_name: str, min_visits: int = 100) -> bool:
        """Heuristic: an app counts as trained once its table has enough visits."""
        table = self._tables.get(app_name)
        return table is not None and table.total_visits() >= min_visits

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable representation of every application's table."""
        return {
            "action_count": self.action_count,
            "initial_q": self.initial_q,
            "tables": {name: table.to_dict() for name, table in self._tables.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "QTableStore":
        """Rebuild a store from :meth:`to_dict` output."""
        store = cls(
            action_count=data["action_count"], initial_q=data.get("initial_q", 0.0)
        )
        for app_name, table_data in data.get("tables", {}).items():
            store.set_table(app_name, QTable.from_dict(table_data))
        return store

    # -- persistence --------------------------------------------------------------------

    def save(self, directory: str) -> List[str]:
        """Write one ``<escaped-app>.qtable.json`` file per application.

        Application names are escaped with :func:`escape_app_name`, so names
        containing ``/``, ``..`` or other path-unsafe characters neither
        escape the directory nor collide with each other, and :meth:`load`
        recovers the original names exactly.  Returns the written paths.
        """
        os.makedirs(directory, exist_ok=True)
        paths = []
        for app_name, table in self._tables.items():
            path = os.path.join(directory, f"{escape_app_name(app_name)}.qtable.json")
            atomic_write_json(path, table.to_dict())
            paths.append(path)
        return paths

    @classmethod
    def load(cls, directory: str, action_count: int, initial_q: float = 0.0) -> "QTableStore":
        """Load every ``*.qtable.json`` file from ``directory``."""
        store = cls(action_count=action_count, initial_q=initial_q)
        if not os.path.isdir(directory):
            return store
        # Sorted so store insertion order -- and any downstream
        # dict-iteration-order-dependent serialisation or merge -- never
        # depends on filesystem enumeration order.
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".qtable.json"):
                continue
            app_name = unescape_app_name(filename[: -len(".qtable.json")])
            path = os.path.join(directory, filename)
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            table = QTable.from_dict(data)
            if table.action_count == action_count:
                store._tables[app_name] = table
        return store
