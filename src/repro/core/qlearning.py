"""Tabular Q-learning core (Watkins & Dayan), as used by the Next agent.

The paper models Next after classic Q-learning: at every invocation the agent
observes state :math:`s_i`, takes action :math:`a_i`, receives reward
:math:`r_i` and updates the action-value function with

.. math::

    Q(s_i, a_i) \\leftarrow Q(s_i, a_i)
        + \\alpha \\bigl( r_i - Q(s_i, a_i) + \\gamma \\max_a Q(s_{i+1}, a) \\bigr)

(Eq. 3).  The exploration policy is epsilon-greedy with an exponentially
decaying epsilon, which is the standard choice for an on-device learner that
must stop disturbing the user once it has converged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.core.qtable import QTable


@dataclass
class QLearningConfig:
    """Hyper-parameters of the tabular learner.

    Attributes
    ----------
    learning_rate:
        The :math:`\\alpha` of Eq. 3.
    discount:
        The :math:`\\gamma` of Eq. 3 (future-reward damping).
    epsilon_start / epsilon_min:
        Initial and final exploration rates.
    epsilon_decay:
        Multiplicative decay applied to epsilon after every update.
    initial_q:
        Value new (state, action) entries start at.  A mildly optimistic
        value encourages systematic exploration of untried actions.
    exploration_hold_steps:
        When an exploratory action is drawn it is repeated for this many
        consecutive steps.  Because every action moves a ``maxfreq`` limit by
        a single OPP, held exploration lets the agent actually traverse the
        18-deep big-cluster frequency ladder instead of random-walking around
        its starting point.
    """

    learning_rate: float = 0.20
    discount: float = 0.9
    epsilon_start: float = 0.7
    epsilon_min: float = 0.02
    epsilon_decay: float = 0.9997
    initial_q: float = 1.0
    exploration_hold_steps: int = 5

    def __post_init__(self) -> None:
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 <= self.discount < 1:
            raise ValueError("discount must be in [0, 1)")
        if not 0 <= self.epsilon_min <= self.epsilon_start <= 1:
            raise ValueError("epsilons must satisfy 0 <= min <= start <= 1")
        if not 0 < self.epsilon_decay <= 1:
            raise ValueError("epsilon_decay must be in (0, 1]")
        if self.exploration_hold_steps < 1:
            raise ValueError("exploration_hold_steps must be at least 1")


class QLearningCore:
    """Epsilon-greedy tabular Q-learning over an arbitrary hashable state."""

    def __init__(
        self,
        action_count: int,
        config: Optional[QLearningConfig] = None,
        qtable: Optional[QTable] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if action_count < 1:
            raise ValueError("action_count must be at least 1")
        self.action_count = action_count
        self.config = config or QLearningConfig()
        self.qtable = qtable if qtable is not None else QTable(
            action_count=action_count, initial_q=self.config.initial_q
        )
        if self.qtable.action_count != action_count:
            raise ValueError("Q-table action count does not match the learner")
        self._rng = rng if rng is not None else random.Random(0)
        self.epsilon = self.config.epsilon_start
        self.exploring = True
        self._updates = 0
        self._held_action: Optional[int] = None
        self._hold_remaining = 0

    # -- policy --------------------------------------------------------------------

    @property
    def update_count(self) -> int:
        """Number of Q-updates performed so far."""
        return self._updates

    def set_exploration(self, enabled: bool) -> None:
        """Enable or disable exploration (disabled = pure exploitation)."""
        self.exploring = enabled

    def select_action(self, state: Hashable) -> int:
        """Pick an action for ``state`` (held epsilon-greedy while exploring)."""
        if self.exploring:
            if self._hold_remaining > 0 and self._held_action is not None:
                self._hold_remaining -= 1
                return self._held_action
            if self._rng.random() < self.epsilon:
                self._held_action = self._rng.randrange(self.action_count)
                self._hold_remaining = self.config.exploration_hold_steps - 1
                return self._held_action
        return self.greedy_action(state)

    def greedy_action(self, state: Hashable) -> int:
        """The highest-valued action for ``state`` (ties broken randomly)."""
        values = self.qtable.values(state)
        best = max(values)
        candidates = [index for index, value in enumerate(values) if value == best]
        if len(candidates) == 1:
            return candidates[0]
        return self._rng.choice(candidates)

    # -- learning -------------------------------------------------------------------

    def update(
        self,
        state: Hashable,
        action: int,
        reward: float,
        next_state: Hashable,
    ) -> float:
        """Apply Eq. 3 for one transition and return the new Q-value."""
        if not 0 <= action < self.action_count:
            raise IndexError(f"action {action} out of range")
        cfg = self.config
        current = self.qtable.get(state, action)
        bootstrap = max(self.qtable.values(next_state))
        target_error = reward - current + cfg.discount * bootstrap
        new_value = current + cfg.learning_rate * target_error
        self.qtable.set(state, action, new_value)
        self._updates += 1
        if self.exploring:
            self.epsilon = max(cfg.epsilon_min, self.epsilon * cfg.epsilon_decay)
        return new_value

    # -- serialisation ---------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serialisable learner state (the Q-table is stored separately).

        Captures everything the learner mutates while training -- the decayed
        epsilon, the update counter and the exploration-hold bookkeeping -- so
        a restored learner resumes (or evaluates) exactly where this one
        stopped.  The RNG is owned by the agent and serialised there.
        """
        return {
            "epsilon": self.epsilon,
            "exploring": self.exploring,
            "updates": self._updates,
            "held_action": self._held_action,
            "hold_remaining": self._hold_remaining,
        }

    def load_state_dict(self, data: dict) -> None:
        """Restore the mutable learner state from :meth:`state_dict` output."""
        self.epsilon = float(data["epsilon"])
        self.exploring = bool(data["exploring"])
        self._updates = int(data["updates"])
        held = data.get("held_action")
        self._held_action = None if held is None else int(held)
        self._hold_remaining = int(data.get("hold_remaining", 0))

    # -- diagnostics -----------------------------------------------------------------

    def visited_states(self) -> List[Hashable]:
        """All states that currently have a Q-table row."""
        return list(self.qtable.states())

    def policy_snapshot(self) -> dict:
        """Greedy action per visited state (for inspection and tests)."""
        return {state: self.greedy_action(state) for state in self.qtable.states()}
