"""Trained-agent artifacts: portable, fingerprinted Next agent snapshots.

Section V of the paper evaluates Next only "when it was fully trained on the
respective applications", and Section IV-B trains once per application and
stores the resulting action values.  The sweep harness reproduces that
protocol by splitting training from evaluation: a :class:`TrainingSpec`
pre-registers *how* an agent is trained (which apps, on which platform, with
which episode budget and seed), :class:`AgentArtifact` wraps the fully
serialised :class:`~repro.core.agent.NextAgent` that training produced, and
the artifact's content fingerprint -- derived from the spec plus the agent
configuration -- keys the on-disk store in
:mod:`repro.experiments.artifacts` so each distinct spec is trained exactly
once and every evaluation cell loads the same frozen policy.

This is the same artifact-exchange pattern the cloud / federated back-ends
of Section IV-C rely on: the thing that moves between trainer and evaluator
is a self-contained JSON document, never a live Python object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.agent import AgentConfig, NextAgent
from repro.core.governor import NextGovernor
from repro.core.persistence import atomic_write_json, list_entry_paths
from repro.core.seeding import canonical_fingerprint

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "AgentArtifact",
    "TrainingSpec",
    # Re-exported from repro.core.persistence for backward compatibility;
    # new code should import the seam from there.
    "atomic_write_json",
    "list_entry_paths",
]

#: Bumped whenever the artifact layout or training semantics change, so a
#: stale on-disk artifact can never be mistaken for a current one.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TrainingSpec:
    """Pre-registered description of one agent-training run.

    Attributes
    ----------
    apps:
        Applications to train on, in order (each gets its own Q-table).
    platform:
        Platform registry name the training sessions run on.
    episodes:
        Per-application episode budget.
    episode_duration_s:
        Length of one training episode.
    seed:
        Base training seed; per-app and per-episode seeds derive from it.
    config_overrides:
        Extra :class:`~repro.sim.config.SimulationConfig` keyword arguments
        applied to every training episode.  A sweep threads its matrix-wide
        overrides in here so the agent trains in the same simulated
        environment (e.g. warm-start temperature) its evaluation cells run
        in.
    """

    apps: Tuple[str, ...]
    platform: str = "exynos9810"
    episodes: int = 6
    episode_duration_s: float = 60.0
    seed: int = 0
    config_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a training spec needs at least one app")
        if len(set(self.apps)) != len(self.apps):
            raise ValueError("training apps must be unique")
        if self.episodes < 1:
            raise ValueError("episodes must be at least 1")
        if self.episode_duration_s <= 0:
            raise ValueError("episode_duration_s must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "apps": list(self.apps),
            "platform": self.platform,
            "episodes": self.episodes,
            "episode_duration_s": self.episode_duration_s,
            "seed": self.seed,
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            apps=tuple(data["apps"]),
            platform=data.get("platform", "exynos9810"),
            episodes=int(data.get("episodes", 6)),
            episode_duration_s=float(data.get("episode_duration_s", 60.0)),
            seed=int(data.get("seed", 0)),
            config_overrides=tuple(
                sorted(dict(data.get("config_overrides", {})).items())
            ),
        )

    def fingerprint(self, agent_config: Optional[AgentConfig] = None) -> str:
        """Content hash of (spec, agent config): the artifact-store key.

        Two specs that would train a byte-identical agent share a
        fingerprint; anything that changes the trained policy -- app list or
        order, platform, episode budget, training seed, simulation-config
        overrides, or any agent hyper-parameter -- changes it.
        """
        payload = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "spec": self.to_dict(),
            "agent_config": (agent_config or AgentConfig()).to_dict(),
        }
        return canonical_fingerprint(payload)

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        return (
            f"{'+'.join(self.apps)}/{self.platform}"
            f"/e{self.episodes}x{self.episode_duration_s:g}s/s{self.seed}"
        )


@dataclass
class AgentArtifact:
    """A fully trained agent, frozen into a JSON-round-trippable document."""

    spec: TrainingSpec
    agent_state: Dict[str, Any]
    training_results: List[Dict[str, Any]] = field(default_factory=list)
    fingerprint: str = ""
    schema_version: int = ARTIFACT_SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        spec: TrainingSpec,
        agent: NextAgent,
        training_results: Sequence[Mapping[str, Any]] = (),
    ) -> "AgentArtifact":
        """Snapshot a trained agent under ``spec``.

        The snapshot is normalised through one JSON round-trip immediately,
        so an artifact held in memory is byte-for-byte the artifact a store
        would serve back from disk -- in-memory and cached evaluation paths
        cannot diverge.
        """
        artifact = cls(
            spec=spec,
            agent_state=agent.to_dict(),
            training_results=[dict(result) for result in training_results],
            fingerprint=spec.fingerprint(agent.config),
        )
        return cls.from_dict(json.loads(json.dumps(artifact.to_dict())))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "spec": self.spec.to_dict(),
            "agent_state": self.agent_state,
            "training_results": self.training_results,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AgentArtifact":
        """Rebuild an artifact from :meth:`to_dict` output."""
        version = int(data.get("schema_version", -1))
        if version != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema version {version} does not match the current "
                f"version {ARTIFACT_SCHEMA_VERSION}"
            )
        return cls(
            spec=TrainingSpec.from_dict(data["spec"]),
            agent_state=dict(data["agent_state"]),
            training_results=[dict(entry) for entry in data.get("training_results", ())],
            fingerprint=data.get("fingerprint", ""),
            schema_version=version,
        )

    # -- persistence --------------------------------------------------------------------

    def save(self, path: str) -> str:
        """Atomically write the artifact as JSON; returns ``path``."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "AgentArtifact":
        """Load an artifact written by :meth:`save`.

        Raises ``ValueError`` when the file does not round-trip to a
        schema-compatible artifact whose stored fingerprint matches a
        recomputation from its own spec and agent configuration (i.e. the
        content was edited or belongs to an older scheme).
        """
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"artifact file {path!r} does not contain an object")
        artifact = cls.from_dict(data)
        expected = artifact.spec.fingerprint(
            AgentConfig.from_dict(artifact.agent_state["config"])
        )
        if artifact.fingerprint != expected:
            raise ValueError(
                f"artifact fingerprint {artifact.fingerprint!r} does not match "
                f"its content ({expected!r})"
            )
        return artifact

    # -- evaluation ---------------------------------------------------------------------

    def build_agent(self) -> NextAgent:
        """Materialise the trained agent (a fresh instance on every call)."""
        return NextAgent.from_dict(self.agent_state)

    def build_governor(self) -> NextGovernor:
        """A Next governor running the trained agent greedily.

        Exploration and learning are off (``training=False``), matching the
        paper's fully-trained evaluation protocol.
        """
        return NextGovernor(agent=self.build_agent(), training=False)
