"""Action space of the Next agent.

Section IV-B: with *m* DVFS-capable clusters the agent has ``3 m`` actions --
frequency up, frequency down and "do nothing" for each cluster.  On the
Exynos 9810 (big, LITTLE, GPU) that is the nine actions the paper lists.
"Setting the operating frequency" means moving the cluster's ``maxfreq``
limit; the underlying governor remains free to run anywhere between
``minfreq`` and the new cap, which is what gives the scheme its reactive
safety margin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.soc.cluster import Cluster


class ActionDirection(enum.Enum):
    """What an action does to its cluster's ``maxfreq`` limit."""

    UP = 1
    DOWN = -1
    HOLD = 0

    @property
    def step(self) -> int:
        """OPP-index delta applied to the ``maxfreq`` limit."""
        return self.value


@dataclass(frozen=True)
class Action:
    """One action: a (cluster, direction) pair.

    Attributes
    ----------
    cluster_name:
        The cluster whose ``maxfreq`` limit the action adjusts.
    direction:
        Up, down or hold.
    """

    cluster_name: str
    direction: ActionDirection

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"big_frequency_up"``."""
        suffix = {
            ActionDirection.UP: "frequency_up",
            ActionDirection.DOWN: "frequency_down",
            ActionDirection.HOLD: "frequency_hold",
        }[self.direction]
        return f"{self.cluster_name}_{suffix}"


class ActionSpace:
    """The ordered list of actions available to the agent."""

    def __init__(self, cluster_names: Sequence[str]) -> None:
        if not cluster_names:
            raise ValueError("the action space needs at least one cluster")
        if len(set(cluster_names)) != len(cluster_names):
            raise ValueError("duplicate cluster names in action space")
        self.cluster_names: Tuple[str, ...] = tuple(cluster_names)
        self._actions: List[Action] = []
        for name in self.cluster_names:
            for direction in (ActionDirection.UP, ActionDirection.DOWN, ActionDirection.HOLD):
                self._actions.append(Action(cluster_name=name, direction=direction))

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._actions)

    def __getitem__(self, index: int) -> Action:
        return self._actions[index]

    def __iter__(self):
        return iter(self._actions)

    @property
    def actions(self) -> List[Action]:
        """All actions in index order."""
        return list(self._actions)

    def index_of(self, action: Action) -> int:
        """Index of an action within the space."""
        return self._actions.index(action)

    def labels(self) -> List[str]:
        """Human-readable labels of all actions, in index order."""
        return [action.label for action in self._actions]

    # -- actuation ----------------------------------------------------------------

    def apply(self, action_index: int, clusters: Mapping[str, Cluster]) -> Action:
        """Apply the action with ``action_index`` to the clusters.

        Moving a limit that is already at the end of the OPP table is a
        silently clamped no-op (exactly like writing an out-of-range value to
        the sysfs ``scaling_max_freq`` node).

        Returns the :class:`Action` that was applied.
        """
        if not 0 <= action_index < len(self._actions):
            raise IndexError(f"action index {action_index} out of range")
        action = self._actions[action_index]
        if action.direction is ActionDirection.HOLD:
            return action
        cluster = clusters.get(action.cluster_name)
        if cluster is None:
            return action
        new_limit = cluster.max_limit_index + action.direction.step
        cluster.set_max_limit_index(new_limit)
        return action

    def hold_indices(self) -> List[int]:
        """Indices of all "do nothing" actions (useful as a safe default)."""
        return [
            index
            for index, action in enumerate(self._actions)
            if action.direction is ActionDirection.HOLD
        ]
