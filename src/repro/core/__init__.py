"""The paper's contribution: the ``Next`` user-interaction-aware RL governor.

``Next`` (Next generation user interaction aware DVFS) is a software agent
that

1. monitors the frame rate every 25 ms over a 4 s *frame window* and takes
   the statistical mode as the target FPS the user's current interaction
   pattern requires (:mod:`repro.core.frame_window`),
2. optimises the *performance per degree watt* metric
   ``PPDW = FPS / ((T - T_ambient) * P)`` introduced in Section III-B
   (:mod:`repro.core.ppdw`),
3. runs tabular Q-learning over a state made of the cluster frequencies, the
   current and target FPS, the power reading and the two temperatures, with
   nine actions (frequency up / down / hold for each of the big, LITTLE and
   GPU clusters) that move the clusters' ``maxfreq`` limits
   (:mod:`repro.core.state`, :mod:`repro.core.actions`,
   :mod:`repro.core.qlearning`), and
4. persists one Q-table per application so training happens once per app
   (:mod:`repro.core.qtable`), optionally in the cloud or federated across
   devices (:mod:`repro.core.federated`).

:class:`repro.core.agent.NextAgent` ties the pieces together and
:class:`repro.core.governor.NextGovernor` adapts it to the governor interface
used by the simulation engine.
"""

from repro.core.ppdw import PpdwBounds, RewardConfig, compute_ppdw, compute_reward
from repro.core.frame_window import FrameWindowConfig, FrameWindowMonitor, quantise_fps
from repro.core.state import NextState, StateDiscretiser, StateDiscretiserConfig
from repro.core.actions import Action, ActionDirection, ActionSpace
from repro.core.qlearning import QLearningConfig, QLearningCore
from repro.core.qtable import QTable, QTableStore, escape_app_name, unescape_app_name
from repro.core.agent import AgentConfig, NextAgent
from repro.core.governor import NextGovernor
from repro.core.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    AgentArtifact,
    TrainingSpec,
)
from repro.core.persistence import atomic_write_json, list_entry_paths
from repro.core.federated import (
    FLEET_SCHEMA_VERSION,
    CloudTrainer,
    CloudTrainingConfig,
    FederatedAggregator,
    FleetArtifact,
    FleetSpec,
    RoundReport,
)
from repro.core.seeding import derive_seed

__all__ = [
    "compute_ppdw",
    "compute_reward",
    "PpdwBounds",
    "RewardConfig",
    "FrameWindowConfig",
    "FrameWindowMonitor",
    "quantise_fps",
    "NextState",
    "StateDiscretiser",
    "StateDiscretiserConfig",
    "Action",
    "ActionDirection",
    "ActionSpace",
    "QLearningConfig",
    "QLearningCore",
    "QTable",
    "QTableStore",
    "escape_app_name",
    "unescape_app_name",
    "AgentConfig",
    "NextAgent",
    "NextGovernor",
    "ARTIFACT_SCHEMA_VERSION",
    "AgentArtifact",
    "TrainingSpec",
    "atomic_write_json",
    "list_entry_paths",
    "derive_seed",
    "CloudTrainer",
    "CloudTrainingConfig",
    "FederatedAggregator",
    "FLEET_SCHEMA_VERSION",
    "FleetSpec",
    "FleetArtifact",
    "RoundReport",
]
