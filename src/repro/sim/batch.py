"""Batched device-population simulation kernel.

:class:`BatchSimulation` steps N independent simulated devices per tick
inside one process.  PR 4 compiled the per-device hot loop into flat
index-based buffers; this module widens every one of those buffers by a
device axis (struct-of-arrays): OPP indices, limits, utilisations, dynamic
and leakage power are ``(clusters, devices)`` NumPy arrays, temperatures and
heat ``(nodes, devices)`` arrays.  The numeric backend -- power evaluation,
thermal Euler integration, the schedutil scaler, the FPS window and the
recorder rows -- is vectorised across devices, while inherently ragged
per-device state (workloads, frame queues, governor objects, sensors) stays
plain Python and is visited once per device per tick.

Bit-identity contract
---------------------
The scalar :class:`~repro.sim.engine.Simulation` kernel is the reference:
for every device, a batched run records exactly the sample stream a scalar
run of that device records (pinned via
:func:`~repro.sim.recorder.sample_stream_hash` by the golden and hypothesis
suites).  The guarantee holds because each vectorised stage applies the same
IEEE-754 float operations in the same order per lane as the scalar kernel
(see the ``*_batch`` methods of :class:`~repro.soc.thermal.ThermalNetwork`,
:class:`~repro.soc.power.SocPowerModel` and
:class:`~repro.governors.schedutil.SchedutilScaler`), lane-crossing
reductions are never used, and every value leaving the arrays (recorder
columns, governor observations) is converted back to Python floats via
``tolist()`` -- exact for float64.

Devices in one batch must share a platform, tick length (refresh rate) and
warm start; seeds, governors, workloads, run durations and recording
cadences may differ per device.  Heterogeneous lanes run under a per-lane
active mask (:meth:`BatchSimulation._run_ticks_masked`): a lane whose tick
budget runs out is masked out of the frontend, governor, observe and
recorder stages while the surviving lanes keep stepping element-wise with
unchanged IEEE-754 op order.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence

import numpy as np

from repro.governors.base import Governor, GovernorObservation
from repro.graphics.pipeline import BatchFramePipeline
from repro.obs.metrics import metrics
from repro.obs.profile import active_profiler
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.recorder import BatchRecorder, Recorder
from repro.soc.platform import PlatformSpec

#: Unique miss marker for the per-tick background-mapping cache.
_SENTINEL = object()


class BatchSimulation:
    """Steps N independent devices of one platform in lockstep.

    Each device is constructed as a full scalar
    :class:`~repro.sim.engine.Simulation` (identical constructor sequence:
    sensor RNG, warm start, cluster state), after which the batch arrays
    become the source of truth for the hot loop; the per-device cluster
    objects are synchronised only around governor invocations.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        governors: Sequence[Governor],
        configs: Sequence[SimulationConfig],
    ) -> None:
        if not governors:
            raise ValueError("a batch needs at least one device")
        if len(governors) != len(configs):
            raise ValueError("governors and configs must be index-aligned")
        first = configs[0]
        for config in configs:
            if (
                config.refresh_hz != first.refresh_hz
                or config.warm_start_temperature_c != first.warm_start_temperature_c
            ):
                raise ValueError(
                    "batched devices must share refresh_hz and warm start "
                    "(seeds, governors, durations and recording cadence may "
                    "differ)"
                )
        self.platform = platform
        self.governors = list(governors)
        self.devices = [
            Simulation(platform, governors[d], configs[d])
            for d in range(len(governors))
        ]
        n = len(self.devices)
        self._n = n
        ref = self.devices[0]
        self._ref = ref
        soc0 = ref.soc
        self._dt = ref.config.dt_s
        self._record_every = ref.config.record_every_n_ticks
        self._record_every_arr = np.array(
            [config.record_every_n_ticks for config in configs], dtype=np.int64
        )
        self._uniform_cadence = all(
            config.record_every_n_ticks == first.record_every_n_ticks
            for config in configs
        )
        #: A heterogeneous run leaves lanes at different local tick counts;
        #: any further shared-clock run would diverge from scalar per-device
        #: runs, so the batch is consumed (see :meth:`run`).
        self._consumed = False
        self._cluster_names = soc0.cluster_name_keys()
        self._node_names = soc0.node_name_keys()
        n_clusters = len(self._cluster_names)
        n_nodes = len(self._node_names)
        self._n_clusters = n_clusters
        self._n_nodes = n_nodes
        self._cluster_node_index = soc0._cluster_node_index
        self._device_node_index = soc0._device_index
        self._rest_w = soc0.power_model.rest_of_platform_power_w
        self._max_chip_temperature_c = soc0._max_chip_temperature_c
        self._thermal_throttle = soc0.thermal_throttle
        self._thermal = soc0.thermal
        self._power_model = soc0.power_model
        self._power_tables = soc0.power_model.compile_batch_tables(soc0._cluster_list)
        self._freq_tuples = [c._freqs for c in soc0._cluster_list]
        self._freq_arrays = [
            np.array(c._freqs, dtype=np.float64) for c in soc0._cluster_list
        ]
        self._big_name = ref._big_cluster_name()

        # -- struct-of-arrays state (device axis last) --------------------------
        self._cur = np.array(
            [
                [dev.soc._cluster_list[k]._current_index for dev in self.devices]
                for k in range(n_clusters)
            ],
            dtype=np.int64,
        )
        self._min_limit = np.array(
            [
                [dev.soc._cluster_list[k]._min_limit_index for dev in self.devices]
                for k in range(n_clusters)
            ],
            dtype=np.int64,
        )
        self._max_limit = np.array(
            [
                [dev.soc._cluster_list[k]._max_limit_index for dev in self.devices]
                for k in range(n_clusters)
            ],
            dtype=np.int64,
        )
        self._temps = np.array(
            [
                [dev.soc.thermal._temps[i] for dev in self.devices]
                for i in range(n_nodes)
            ],
            dtype=np.float64,
        )
        self._heat = np.zeros((n_nodes, n), dtype=np.float64)
        self._util = np.zeros((n_clusters, n), dtype=np.float64)
        self._dynamic = np.zeros((n_clusters, n), dtype=np.float64)
        self._leakage = np.zeros((n_clusters, n), dtype=np.float64)

        self._scaler = ref.scaler
        self._scaler_state = ref.scaler.compile_batch(soc0.clusters, n)
        self._pipeline = BatchFramePipeline(
            ref._pipeline_config(), ref.config.refresh_hz, soc0.clusters, n
        )

        # Shared-time FPS window (device counts vectorised, expiry time-driven).
        self._refresh_hz = ref.config.refresh_hz
        self._fps_window_s = ref.display.fps_window_s
        self._fps_events = deque()
        self._fps_total = np.zeros(n, dtype=np.int64)

        # -- per-device engine state -------------------------------------------
        self._tick_count = 0
        self._soc_time_s = 0.0
        self._current_app: List[Optional[str]] = [None] * n
        #: Governor-invocation bookkeeping, device-axis arrays.  NaN in
        #: ``last_invocation`` encodes the scalar engine's "never invoked".
        self._last_invocation = np.full(n, np.nan)
        self._invocation_period = np.array(
            [g.invocation_period_s for g in self.governors], dtype=np.float64
        )
        self._dropped_since = np.zeros(n, dtype=np.int64)
        self._demanded_since = np.zeros(n, dtype=np.int64)
        self._observe = [
            g.observe_tick
            if type(g).observe_tick is not Governor.observe_tick
            else None
            for g in self.governors
        ]
        self._top_indices = [len(freqs) - 1 for freqs in self._freq_tuples]
        #: Vectorised update per device for observation-free governors (the
        #: whole invocation -- sensors, observation, cluster sync -- is then
        #: skipped; see Governor.observation_free).
        self._fast_update = [
            g.update_batch if g.observation_free else None for g in self.governors
        ]
        self._agents = [getattr(g, "agent", None) for g in self.governors]

        self.recorder = BatchRecorder(
            n_devices=n,
            ambient_c=platform.ambient_c,
            hot_node=ref.recorder.hot_node,
            cluster_keys=self._cluster_names,
            node_keys=self._node_names,
        )

        # Reusable per-tick rows (overwritten every tick, copied on record).
        self._app_row: List[str] = [""] * n
        self._phase_row: List[str] = [""] * n
        self._demanded_row: List[int] = [0] * n
        self._displayed_row: List[int] = [0] * n
        self._dropped_row: List[int] = [0] * n
        self._interaction_row: List[float] = [0.0] * n
        self._cpu_done_row: List[float] = [0.0] * n
        self._gpu_done_row: List[float] = [0.0] * n
        self._background_lists: List[List[float]] = [
            [0.0] * n for _ in range(n_clusters)
        ]
        #: Compiled positional sensor layout per device (see
        #: SensorHub.compile_flat); node order matches ``_node_names``.
        self._sensor_orders = [
            dev.soc.sensors.compile_flat(self._node_names, self._big_name)
            for dev in self.devices
        ]

    # -- properties ----------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Number of devices in the batch."""
        return self._n

    @property
    def tick_count(self) -> int:
        """Ticks simulated so far (shared across devices)."""
        return self._tick_count

    def device_recorder(self, device: int) -> Recorder:
        """One device's recorded stream as a scalar :class:`Recorder`."""
        return self.recorder.device_recorder(device)

    # -- main loop -----------------------------------------------------------------

    def run(self, workloads: Sequence, duration_s=None) -> BatchRecorder:
        """Run every device's workload in one shared-clock loop.

        ``workloads[d]`` is anything with a ``tick(dt_s) -> TickWorkload``
        method, exactly as for :meth:`Simulation.run`.  ``duration_s`` may be
        a single number (every lane runs that long), a per-lane sequence of
        durations, or ``None`` (each lane runs its own ``config.duration_s``).

        Homogeneous runs (equal durations and recording cadences) may be
        called repeatedly; state (time, thermals, governor counters) carries
        over, so interleaving runs with fleet-level work (e.g. federated
        aggregation) behaves like doing the same to N scalar simulations.
        A heterogeneous run takes the masked path and *consumes* the batch:
        lanes finish at different local tick counts, so any further
        shared-clock run would diverge from scalar per-device runs and is
        rejected.
        """
        if len(workloads) != self._n:
            raise ValueError("one workload per device required")
        if self._consumed:
            raise ValueError(
                "a heterogeneous run consumes the batch (lanes ended at "
                "different ticks); construct a new BatchSimulation to run "
                "again"
            )
        clock = self._ref.clock
        if duration_s is None:
            budgets = [
                clock.ticks_for(dev.config.duration_s) for dev in self.devices
            ]
        elif isinstance(duration_s, (int, float)):
            budgets = [clock.ticks_for(float(duration_s))] * self._n
        else:
            if len(duration_s) != self._n:
                raise ValueError("one duration per device required")
            budgets = [clock.ticks_for(float(dur)) for dur in duration_s]
        if self._uniform_cadence and len(set(budgets)) == 1:
            self._run_ticks(workloads, budgets[0])
        else:
            self._consumed = True
            self._run_ticks_masked(workloads, budgets)
        return self.recorder

    def _run_ticks(self, workloads: Sequence, ticks: int) -> None:
        n = self._n
        n_clusters = self._n_clusters
        dt = self._dt
        record_every = self._record_every
        pipeline = self._pipeline
        tick_work = pipeline.tick_device_work
        batch_rates = pipeline.batch_rates
        batch_finish = pipeline.batch_finish
        workload_ticks = [w.tick for w in workloads]
        governors = self.governors
        observe = self._observe
        observe_any = any(fn is not None for fn in observe)
        agents = self._agents
        current_app = self._current_app
        invocation_period = self._invocation_period
        last_invocation = self._last_invocation
        dropped_since = self._dropped_since
        demanded_since = self._demanded_since
        app_row = self._app_row
        phase_row = self._phase_row
        demanded_row = self._demanded_row
        displayed_row = self._displayed_row
        dropped_row = self._dropped_row
        interaction_row = self._interaction_row
        cpu_done_row = self._cpu_done_row
        gpu_done_row = self._gpu_done_row
        background_lists = self._background_lists
        cluster_names = self._cluster_names
        util_scratch = self._util
        cur = self._cur
        min_limit = self._min_limit
        max_limit = self._max_limit
        temps = self._temps
        heat = self._heat
        dynamic = self._dynamic
        leakage = self._leakage
        power_tables = self._power_tables
        cluster_node_index = self._cluster_node_index
        device_node_index = self._device_node_index
        rest_w = self._rest_w
        thermal = self._thermal
        max_substep = thermal.MAX_SUBSTEP_S
        evaluate_power = self._power_model.evaluate_flat_batch
        scaler_select = self._scaler.select_tick_batch
        scaler_state = self._scaler_state
        freq_arrays = self._freq_arrays
        fps_events = self._fps_events
        fps_window_s = self._fps_window_s
        refresh_hz = self._refresh_hz
        recorder_append = self.recorder.append_tick
        invoke_governor = self._invoke_governor
        devices = self.devices
        tick_count = self._tick_count
        soc_time = self._soc_time_s

        profiler = active_profiler()
        if profiler is not None:
            # Same opt-in stage wrapping as the scalar engine: results pass
            # through untouched, so the loop below is identical either way.
            workload_ticks = [
                profiler.wrap("workload", fn) for fn in workload_ticks
            ]
            batch_finish = profiler.wrap("pipeline", batch_finish)
            evaluate_power = profiler.wrap("power_thermal", evaluate_power)
            scaler_select = profiler.wrap("scaler", scaler_select)
            recorder_append = profiler.wrap("recorder", recorder_append)
        metrics().observe("batch.lane_occupancy", float(n))
        metrics().inc("batch.device_ticks", float(ticks) * n)

        try:
            for _ in range(ticks):
                # Shared VSync clock: one edge count for every device.
                edge_count = pipeline.advance_time(dt)

                # Per-device stage budgets from the current OPP indices
                # (vectorised; bit-identical to the scalar rate computation).
                big_rate, little_rate, cpu_rate, gpu_rate = batch_rates(cur)
                cpu_budgets = (cpu_rate * dt).tolist()
                gpu_budgets = (gpu_rate * dt).tolist()

                # Per-device frontend: workload demand, session hooks, frame
                # queue drain (utilisation math is vectorised afterwards).
                prev_background = _SENTINEL
                background_values: List[float] = [0.0] * n_clusters
                for d in range(n):
                    demand = workload_ticks[d](dt)
                    app_name = demand.app_name
                    if app_name != current_app[d]:
                        governor = governors[d]
                        if current_app[d] is not None:
                            governor.on_session_end(current_app[d])
                        current_app[d] = app_name
                        governor.on_session_start(app_name)
                        invocation_period[d] = governor.invocation_period_s
                    frames = demand.frames
                    displayed, rejected, cpu_done, gpu_done = tick_work(
                        d, frames, cpu_budgets[d], gpu_budgets[d], edge_count
                    )
                    cpu_done_row[d] = cpu_done
                    gpu_done_row[d] = gpu_done
                    background = demand.background_work_mwu
                    if background is not prev_background:
                        # Devices replaying shared demand objects (e.g. the
                        # same trace) resolve the mapping once per tick.
                        prev_background = background
                        if background:
                            get = background.get
                            background_values = [
                                get(cluster_names[k], 0.0)
                                for k in range(n_clusters)
                            ]
                        else:
                            background_values = [0.0] * n_clusters
                    for k in range(n_clusters):
                        background_lists[k][d] = background_values[k]
                    app_row[d] = app_name
                    phase_row[d] = demand.phase_name
                    demanded_row[d] = len(frames)
                    displayed_row[d] = displayed
                    dropped_row[d] = rejected
                    interaction_row[d] = demand.interaction_activity

                batch_finish(
                    cur,
                    np.array(cpu_done_row),
                    np.array(gpu_done_row),
                    big_rate,
                    little_rate,
                    cpu_rate,
                    gpu_rate,
                    np.array(background_lists),
                    dt,
                    util_scratch,
                )
                # Engine clamp of the pipeline utilisations (same bounds as
                # the scalar loop's inlined Cluster.utilisation setter).
                util = np.minimum(1.0, np.maximum(0.0, util_scratch))

                # SoC step: power -> heat -> thermal -> throttle (the batched
                # mirror of SocSimulator.step_tick).
                evaluate_power(
                    power_tables,
                    cur,
                    util,
                    temps,
                    cluster_node_index,
                    dynamic,
                    leakage,
                )
                heat[:] = 0.0
                for k in range(n_clusters):
                    heat[cluster_node_index[k]] += dynamic[k] + leakage[k]
                if device_node_index is not None:
                    heat[device_node_index] += 0.5 * rest_w
                if 1e-12 < dt <= max_substep:
                    thermal.euler_substep_batch(temps, heat, dt)
                else:
                    thermal.step_flat_batch(temps, heat, dt)
                soc_time += dt
                if self._thermal_throttle:
                    limit = self._max_chip_temperature_c
                    for k in range(n_clusters):
                        hot = temps[cluster_node_index[k]] > limit
                        if hot.any():
                            cur[k] = np.where(hot, min_limit[k], cur[k])

                tick_count += 1
                now = tick_count * dt
                will_record = tick_count % record_every == 0
                if will_record:
                    # DVFS snapshot before the scaler moves frequencies, as in
                    # the scalar engine.
                    frequency_rows = np.stack(
                        [freq_arrays[k][cur[k]] for k in range(n_clusters)]
                    )
                    max_limit_rows = np.stack(
                        [freq_arrays[k][max_limit[k]] for k in range(n_clusters)]
                    )

                # Sliding-window FPS, vectorised over devices (expiry is
                # time-driven and therefore shared).
                displayed_arr = np.array(displayed_row, dtype=np.int64)
                fps_events.append((now, displayed_arr))
                total = self._fps_total + displayed_arr
                cutoff = now - fps_window_s
                while fps_events and fps_events[0][0] <= cutoff:
                    total = total - fps_events.popleft()[1]
                self._fps_total = total
                fps = total / fps_window_s
                fps = np.where(fps < refresh_hz, fps, refresh_hz)
                fps_list = fps.tolist()

                if observe_any:
                    for d in range(n):
                        fn = observe[d]
                        if fn is not None:
                            fn(now, fps_list[d])

                scaler_select(scaler_state, util, cur, min_limit, max_limit, now)

                dropped_since += np.array(dropped_row, dtype=np.int64)
                demanded_since += np.array(demanded_row, dtype=np.int64)
                due = np.isnan(last_invocation) | (
                    (now - last_invocation) >= invocation_period - 1e-9
                )
                if due.any():
                    due_devices = np.nonzero(due)[0].tolist()
                    fast_update = self._fast_update
                    slow_devices = [
                        d for d in due_devices if fast_update[d] is None
                    ]
                    if len(slow_devices) < len(due_devices):
                        # Observation-free governors: apply the policy
                        # vectorised, grouped by governor class.
                        groups = {}
                        for d in due_devices:
                            update = fast_update[d]
                            if update is not None:
                                group = groups.setdefault(
                                    type(governors[d]), (update, [])
                                )
                                group[1].append(d)
                        for update, lanes in groups.values():
                            update(
                                lanes, cur, min_limit, max_limit, self._top_indices
                            )
                    if slow_devices:
                        # Batched column extraction: one transpose per array
                        # instead of per-element NumPy scalar reads per device.
                        dynamic_cols = dynamic.T.tolist()
                        leakage_cols = leakage.T.tolist()
                        temps_cols = temps.T.tolist()
                        cur_cols = cur.T.tolist()
                        min_limit_cols = min_limit.T.tolist()
                        max_limit_cols = max_limit.T.tolist()
                        util_cols = util.T.tolist()
                        last_cols = last_invocation.tolist()
                        dropped_cols = dropped_since.tolist()
                        demanded_cols = demanded_since.tolist()
                        for d in slow_devices:
                            invoke_governor(
                                d,
                                now,
                                fps_list[d],
                                soc_time,
                                dynamic_cols[d],
                                leakage_cols[d],
                                temps_cols[d],
                                cur_cols[d],
                                min_limit_cols[d],
                                max_limit_cols[d],
                                util_cols[d],
                                last_cols[d],
                                dropped_cols[d],
                                demanded_cols[d],
                            )
                        # Governors may have adjusted cluster state; sync the
                        # due lanes back into the arrays in one batched write.
                        sync = [
                            [devices[d].soc._cluster_list[k] for d in slow_devices]
                            for k in range(n_clusters)
                        ]
                        cur[:, slow_devices] = [
                            [c._current_index for c in row] for row in sync
                        ]
                        min_limit[:, slow_devices] = [
                            [c._min_limit_index for c in row] for row in sync
                        ]
                        max_limit[:, slow_devices] = [
                            [c._max_limit_index for c in row] for row in sync
                        ]
                    last_invocation[due_devices] = now
                    dropped_since[due_devices] = 0
                    demanded_since[due_devices] = 0
                    invocation_period[due_devices] = [
                        governors[d].invocation_period_s for d in due_devices
                    ]

                if will_record:
                    dynamic_total = dynamic[0]
                    leakage_total = leakage[0]
                    for k in range(1, n_clusters):
                        dynamic_total = dynamic_total + dynamic[k]
                        leakage_total = leakage_total + leakage[k]
                    power_total = (dynamic_total + leakage_total) + rest_w
                    recorder_append(
                        now,
                        list(app_row),
                        list(phase_row),
                        fps,
                        [
                            0.0 if agents[d] is None else agents[d].target_fps
                            for d in range(n)
                        ],
                        list(demanded_row),
                        list(displayed_row),
                        list(dropped_row),
                        power_total,
                        dynamic + leakage,
                        temps.copy(),
                        frequency_rows,
                        max_limit_rows,
                        util,
                        list(interaction_row),
                    )
        finally:
            self._tick_count = tick_count
            self._soc_time_s = soc_time

    def _lane_schedule(self, budgets: Sequence[int]):
        """Precompiled per-lane index arrays for a heterogeneous run.

        The active set only changes when a lane's tick budget runs out, so
        the run splits into segments with a constant active set.  Each entry
        is ``(ticks, active_list, active_mask)``: the Python visit list for
        the ragged frontend (workload stepping, frame-queue advance) plus the
        boolean device-axis mask for the vectorised stages.
        """
        n = self._n
        budget_list = [int(b) for b in budgets]
        segments = []
        prev = 0
        for boundary in sorted({b for b in budget_list if b > 0}):
            active = [d for d in range(n) if budget_list[d] > prev]
            mask = np.zeros(n, dtype=bool)
            mask[active] = True
            segments.append((boundary - prev, active, mask))
            prev = boundary
        return segments

    def _run_ticks_masked(self, workloads: Sequence, budgets: Sequence[int]) -> None:
        """Heterogeneous-lane loop: per-lane tick budgets and record cadence.

        The per-tick stage order is identical to :meth:`_run_ticks`; the
        differences are confined to *which lanes* each ragged or gated stage
        visits.  A finished lane is removed from the frontend visit list, its
        demand/display/drop rows are zeroed (freezing its contribution to the
        shared FPS window and governor counters), and it is masked out of the
        observe hooks, governor ``due`` set and recorder rows.  The dense
        element-wise stages (power, thermal, scaler, throttle) keep stepping
        every lane -- a dead lane's column is never read again, and per-lane
        independence means it cannot perturb a live lane's IEEE-754 op
        order.  Because all lanes share tick zero, a lane's local time equals
        the global ``now``, so each live lane sees exactly the float sequence
        its scalar run sees.
        """
        n = self._n
        n_clusters = self._n_clusters
        dt = self._dt
        record_every_arr = self._record_every_arr
        pipeline = self._pipeline
        tick_work = pipeline.tick_device_work
        batch_rates = pipeline.batch_rates
        batch_finish = pipeline.batch_finish
        workload_ticks = [w.tick for w in workloads]
        governors = self.governors
        observe = self._observe
        observe_any = any(fn is not None for fn in observe)
        agents = self._agents
        current_app = self._current_app
        invocation_period = self._invocation_period
        last_invocation = self._last_invocation
        dropped_since = self._dropped_since
        demanded_since = self._demanded_since
        app_row = self._app_row
        phase_row = self._phase_row
        demanded_row = self._demanded_row
        displayed_row = self._displayed_row
        dropped_row = self._dropped_row
        interaction_row = self._interaction_row
        cpu_done_row = self._cpu_done_row
        gpu_done_row = self._gpu_done_row
        background_lists = self._background_lists
        cluster_names = self._cluster_names
        util_scratch = self._util
        cur = self._cur
        min_limit = self._min_limit
        max_limit = self._max_limit
        temps = self._temps
        heat = self._heat
        dynamic = self._dynamic
        leakage = self._leakage
        power_tables = self._power_tables
        cluster_node_index = self._cluster_node_index
        device_node_index = self._device_node_index
        rest_w = self._rest_w
        thermal = self._thermal
        max_substep = thermal.MAX_SUBSTEP_S
        evaluate_power = self._power_model.evaluate_flat_batch
        scaler_select = self._scaler.select_tick_batch
        scaler_state = self._scaler_state
        freq_arrays = self._freq_arrays
        fps_events = self._fps_events
        fps_window_s = self._fps_window_s
        refresh_hz = self._refresh_hz
        recorder_append = self.recorder.append_tick
        invoke_governor = self._invoke_governor
        devices = self.devices
        tick_count = self._tick_count
        soc_time = self._soc_time_s

        profiler = active_profiler()
        if profiler is not None:
            workload_ticks = [
                profiler.wrap("workload", fn) for fn in workload_ticks
            ]
            batch_finish = profiler.wrap("pipeline", batch_finish)
            evaluate_power = profiler.wrap("power_thermal", evaluate_power)
            scaler_select = profiler.wrap("scaler", scaler_select)
            recorder_append = profiler.wrap("recorder", recorder_append)

        try:
            for seg_ticks, active_list, active_mask in self._lane_schedule(budgets):
                # Per-segment occupancy: how full the batch lanes actually ran.
                metrics().observe("batch.lane_occupancy", float(len(active_list)))
                metrics().inc(
                    "batch.device_ticks", float(seg_ticks) * len(active_list)
                )
                # Freeze lanes that just went inactive: zero the reused
                # frontend rows once so the shared FPS window and governor
                # counters stop accruing for them.
                for d in range(n):
                    if not active_mask[d]:
                        demanded_row[d] = 0
                        displayed_row[d] = 0
                        dropped_row[d] = 0
                        interaction_row[d] = 0.0
                        cpu_done_row[d] = 0.0
                        gpu_done_row[d] = 0.0
                        for k in range(n_clusters):
                            background_lists[k][d] = 0.0
                for _ in range(seg_ticks):
                    edge_count = pipeline.advance_time(dt)

                    big_rate, little_rate, cpu_rate, gpu_rate = batch_rates(cur)
                    cpu_budgets = (cpu_rate * dt).tolist()
                    gpu_budgets = (gpu_rate * dt).tolist()

                    prev_background = _SENTINEL
                    background_values: List[float] = [0.0] * n_clusters
                    for d in active_list:
                        demand = workload_ticks[d](dt)
                        app_name = demand.app_name
                        if app_name != current_app[d]:
                            governor = governors[d]
                            if current_app[d] is not None:
                                governor.on_session_end(current_app[d])
                            current_app[d] = app_name
                            governor.on_session_start(app_name)
                            invocation_period[d] = governor.invocation_period_s
                        frames = demand.frames
                        displayed, rejected, cpu_done, gpu_done = tick_work(
                            d, frames, cpu_budgets[d], gpu_budgets[d], edge_count
                        )
                        cpu_done_row[d] = cpu_done
                        gpu_done_row[d] = gpu_done
                        background = demand.background_work_mwu
                        if background is not prev_background:
                            prev_background = background
                            if background:
                                get = background.get
                                background_values = [
                                    get(cluster_names[k], 0.0)
                                    for k in range(n_clusters)
                                ]
                            else:
                                background_values = [0.0] * n_clusters
                        for k in range(n_clusters):
                            background_lists[k][d] = background_values[k]
                        app_row[d] = app_name
                        phase_row[d] = demand.phase_name
                        demanded_row[d] = len(frames)
                        displayed_row[d] = displayed
                        dropped_row[d] = rejected
                        interaction_row[d] = demand.interaction_activity

                    batch_finish(
                        cur,
                        np.array(cpu_done_row),
                        np.array(gpu_done_row),
                        big_rate,
                        little_rate,
                        cpu_rate,
                        gpu_rate,
                        np.array(background_lists),
                        dt,
                        util_scratch,
                    )
                    util = np.minimum(1.0, np.maximum(0.0, util_scratch))

                    evaluate_power(
                        power_tables,
                        cur,
                        util,
                        temps,
                        cluster_node_index,
                        dynamic,
                        leakage,
                    )
                    heat[:] = 0.0
                    for k in range(n_clusters):
                        heat[cluster_node_index[k]] += dynamic[k] + leakage[k]
                    if device_node_index is not None:
                        heat[device_node_index] += 0.5 * rest_w
                    if 1e-12 < dt <= max_substep:
                        thermal.euler_substep_batch(temps, heat, dt)
                    else:
                        thermal.step_flat_batch(temps, heat, dt)
                    soc_time += dt
                    if self._thermal_throttle:
                        limit = self._max_chip_temperature_c
                        for k in range(n_clusters):
                            hot = temps[cluster_node_index[k]] > limit
                            if hot.any():
                                cur[k] = np.where(hot, min_limit[k], cur[k])

                    tick_count += 1
                    now = tick_count * dt
                    # Per-lane recording cadence, gated by the active mask.
                    record_mask = active_mask & (
                        tick_count % record_every_arr == 0
                    )
                    will_record = bool(record_mask.any())
                    if will_record:
                        frequency_rows = np.stack(
                            [freq_arrays[k][cur[k]] for k in range(n_clusters)]
                        )
                        max_limit_rows = np.stack(
                            [freq_arrays[k][max_limit[k]] for k in range(n_clusters)]
                        )

                    displayed_arr = np.array(displayed_row, dtype=np.int64)
                    fps_events.append((now, displayed_arr))
                    total = self._fps_total + displayed_arr
                    cutoff = now - fps_window_s
                    while fps_events and fps_events[0][0] <= cutoff:
                        total = total - fps_events.popleft()[1]
                    self._fps_total = total
                    fps = total / fps_window_s
                    fps = np.where(fps < refresh_hz, fps, refresh_hz)
                    fps_list = fps.tolist()

                    if observe_any:
                        for d in active_list:
                            fn = observe[d]
                            if fn is not None:
                                fn(now, fps_list[d])

                    scaler_select(scaler_state, util, cur, min_limit, max_limit, now)

                    dropped_since += np.array(dropped_row, dtype=np.int64)
                    demanded_since += np.array(demanded_row, dtype=np.int64)
                    due = (
                        np.isnan(last_invocation)
                        | ((now - last_invocation) >= invocation_period - 1e-9)
                    ) & active_mask
                    if due.any():
                        due_devices = np.nonzero(due)[0].tolist()
                        fast_update = self._fast_update
                        slow_devices = [
                            d for d in due_devices if fast_update[d] is None
                        ]
                        if len(slow_devices) < len(due_devices):
                            groups = {}
                            for d in due_devices:
                                update = fast_update[d]
                                if update is not None:
                                    group = groups.setdefault(
                                        type(governors[d]), (update, [])
                                    )
                                    group[1].append(d)
                            for update, lanes in groups.values():
                                update(
                                    lanes, cur, min_limit, max_limit, self._top_indices
                                )
                        if slow_devices:
                            dynamic_cols = dynamic.T.tolist()
                            leakage_cols = leakage.T.tolist()
                            temps_cols = temps.T.tolist()
                            cur_cols = cur.T.tolist()
                            min_limit_cols = min_limit.T.tolist()
                            max_limit_cols = max_limit.T.tolist()
                            util_cols = util.T.tolist()
                            last_cols = last_invocation.tolist()
                            dropped_cols = dropped_since.tolist()
                            demanded_cols = demanded_since.tolist()
                            for d in slow_devices:
                                invoke_governor(
                                    d,
                                    now,
                                    fps_list[d],
                                    soc_time,
                                    dynamic_cols[d],
                                    leakage_cols[d],
                                    temps_cols[d],
                                    cur_cols[d],
                                    min_limit_cols[d],
                                    max_limit_cols[d],
                                    util_cols[d],
                                    last_cols[d],
                                    dropped_cols[d],
                                    demanded_cols[d],
                                )
                            sync = [
                                [devices[d].soc._cluster_list[k] for d in slow_devices]
                                for k in range(n_clusters)
                            ]
                            cur[:, slow_devices] = [
                                [c._current_index for c in row] for row in sync
                            ]
                            min_limit[:, slow_devices] = [
                                [c._min_limit_index for c in row] for row in sync
                            ]
                            max_limit[:, slow_devices] = [
                                [c._max_limit_index for c in row] for row in sync
                            ]
                        last_invocation[due_devices] = now
                        dropped_since[due_devices] = 0
                        demanded_since[due_devices] = 0
                        invocation_period[due_devices] = [
                            governors[d].invocation_period_s for d in due_devices
                        ]

                    if will_record:
                        dynamic_total = dynamic[0]
                        leakage_total = leakage[0]
                        for k in range(1, n_clusters):
                            dynamic_total = dynamic_total + dynamic[k]
                            leakage_total = leakage_total + leakage[k]
                        power_total = (dynamic_total + leakage_total) + rest_w
                        recorded = np.nonzero(record_mask)[0].tolist()
                        recorder_append(
                            now,
                            list(app_row),
                            list(phase_row),
                            fps,
                            [
                                0.0 if agents[d] is None else agents[d].target_fps
                                for d in range(n)
                            ],
                            list(demanded_row),
                            list(displayed_row),
                            list(dropped_row),
                            power_total,
                            dynamic + leakage,
                            temps.copy(),
                            frequency_rows,
                            max_limit_rows,
                            util,
                            list(interaction_row),
                            device_mask=(
                                None if len(recorded) == n else tuple(recorded)
                            ),
                        )
        finally:
            self._tick_count = tick_count
            self._soc_time_s = soc_time

    def _invoke_governor(
        self,
        d: int,
        now: float,
        fps: float,
        soc_time: float,
        dynamic_col: List[float],
        leakage_col: List[float],
        temps_col: List[float],
        cur_col: List[int],
        min_limit_col: List[int],
        max_limit_col: List[int],
        util_col: List[float],
        last: float,
        dropped: int,
        demanded: int,
    ) -> None:
        """Governor invocation for one due device (the scalar engine's slow path).

        All column arguments are plain Python values extracted from the batch
        arrays (``tolist()`` round-trips are exact for float64).
        """
        n_clusters = self._n_clusters
        device = self.devices[d]
        soc = device.soc
        # Same Python-float fold as SocSimulator.total_power_w.
        total_power = (sum(dynamic_col) + sum(leakage_col)) + self._rest_w
        power_w, temperature_big, temperature_device = soc.sensors.read_flat(
            self._sensor_orders[d], total_power, temps_col, soc_time
        )

        # Sync this device's lane into its cluster objects for the governor.
        clusters = soc._cluster_list
        for k in range(n_clusters):
            cluster = clusters[k]
            cluster._current_index = cur_col[k]
            cluster._min_limit_index = min_limit_col[k]
            cluster._max_limit_index = max_limit_col[k]
            cluster._utilisation = util_col[k]

        names = self._cluster_names
        freq_tuples = self._freq_tuples
        observation = GovernorObservation(
            time_s=now,
            dt_s=(now - last if not math.isnan(last) else float(self._invocation_period[d])),
            fps=fps,
            utilisations=dict(zip(names, util_col)),
            frequencies_mhz=dict(
                zip(names, [freq_tuples[k][cur_col[k]] for k in range(n_clusters)])
            ),
            max_limits_mhz=dict(
                zip(names, [freq_tuples[k][max_limit_col[k]] for k in range(n_clusters)])
            ),
            power_w=power_w,
            temperature_big_c=temperature_big,
            temperature_device_c=temperature_device,
            frames_dropped=dropped,
            frames_demanded=demanded,
        )
        self.governors[d].update(observation, soc.clusters)
