"""Experiment runners: sessions, governor comparisons and agent training.

These helpers encode the paper's experimental methodology:

* every application is exercised by a recorded demand trace so that all
  governors face *exactly* the same user behaviour (the paper's "similar
  session" comparisons),
* the Next agent is trained on an application first (Section IV-B: training
  happens once per app, on average about 3.5 minutes) and evaluated "when it
  was fully trained on the respective applications" (Section V), and
* the reported quantities are the ones in Figs. 3, 7 and 8: average power,
  peak temperature of the big cluster and of the device, plus FPS/QoS
  statistics to verify that savings do not come from simply dropping frames.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.agent import AgentConfig, NextAgent
from repro.core.governor import NextGovernor
from repro.governors.base import Governor
from repro.governors.intqos import IntQosGovernor
from repro.governors.schedutil import SchedutilGovernor
from repro.governors.simple import (
    ConservativeGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.obs.trace import maybe_span
from repro.sim.config import SimulationConfig
from repro.sim.engine import SessionWorkload, Simulation
from repro.sim.recorder import Recorder, SummaryStatistics
from repro.soc.platform import PlatformSpec, exynos9810
from repro.workloads.apps import make_app
from repro.workloads.session import SessionSegment
from repro.workloads.trace import TracePlayer, TraceRecorder, WorkloadTrace


@dataclass
class SessionResult:
    """Outcome of one simulated session under one governor."""

    governor_name: str
    app_names: List[str]
    recorder: Recorder
    summary: SummaryStatistics


@dataclass
class TrainingResult:
    """Outcome of training the Next agent on one application."""

    app_name: str
    episodes: int
    agent_steps: int
    training_time_s: float
    converged: bool
    final_td_error: float
    qtable_states: int


@dataclass
class GovernorComparison:
    """Per-governor summaries plus savings relative to a baseline."""

    baseline_name: str
    results: Dict[str, SessionResult]

    def summary(self, governor_name: str) -> SummaryStatistics:
        """Summary statistics of one governor's run."""
        return self.results[governor_name].summary

    def power_saving_pct(self, governor_name: str) -> float:
        """Average-power saving of ``governor_name`` relative to the baseline."""
        base = self.summary(self.baseline_name).average_power_w
        other = self.summary(governor_name).average_power_w
        if base <= 0:
            return 0.0
        return 100.0 * (base - other) / base

    def peak_temperature_reduction_pct(self, governor_name: str, node: str) -> float:
        """Peak-temperature-rise reduction (above ambient) relative to the baseline."""
        ambient = self.results[self.baseline_name].recorder.ambient_c
        base = self.summary(self.baseline_name).peak_temperature_c.get(node, ambient)
        # A node missing from a run's summary means it never rose above that
        # run's own ambient -- fall back to the governor's own recorder, not
        # the baseline's, which may sit at a different ambient temperature.
        other = self.summary(governor_name).peak_temperature_c.get(
            node, self.results[governor_name].recorder.ambient_c
        )
        base_rise = max(1e-9, base - ambient)
        return 100.0 * (base - other) / base_rise


# ----------------------------------------------------------------------------------
# Governor factory
# ----------------------------------------------------------------------------------

GOVERNOR_FACTORIES: Dict[str, Callable[..., Governor]] = {
    "schedutil": SchedutilGovernor,
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "conservative": ConservativeGovernor,
    "int_qos_pm": IntQosGovernor,
    "next": NextGovernor,
}

#: Governors whose factory takes a ``seed`` kwarg because the policy itself is
#: stochastic (e.g. exploration).  The scenario-matrix runner seeds these
#: automatically per cell; add any new stochastic governor here or its cells
#: will draw from global randomness and break run-to-run determinism.
STOCHASTIC_GOVERNORS = frozenset({"next"})

#: Governors that learn and can therefore be pre-trained into an
#: :class:`~repro.core.artifact.AgentArtifact`.  A ``pretrained`` training
#: variant on a scenario matrix only applies to these; all other governors
#: are stateless policies for which training is meaningless.
TRAINABLE_GOVERNORS = frozenset({"next"})


def make_governor(name: str, **kwargs) -> Governor:
    """Instantiate a governor by its registry name."""
    try:
        factory = GOVERNOR_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown governor {name!r}; available: {sorted(GOVERNOR_FACTORIES)}"
        ) from None
    return factory(**kwargs)


# ----------------------------------------------------------------------------------
# Session runners
# ----------------------------------------------------------------------------------

def execute_session(
    workload,
    governor: Governor,
    platform: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
    duration_s: Optional[float] = None,
    app_names: Optional[Sequence[str]] = None,
) -> SessionResult:
    """Run one workload under one governor and summarise it.

    This is the single-cell execution primitive: every higher-level runner --
    the sequential helpers below and the parallel scenario-matrix sweep in
    :mod:`repro.experiments.runner` -- funnels through it, so sequential and
    parallel paths cannot drift apart.  ``workload`` is anything with a
    ``tick(dt_s) -> TickWorkload`` method (an app model, a
    :class:`~repro.workloads.trace.TracePlayer`, a
    :class:`~repro.sim.engine.SessionWorkload`).
    """
    platform = platform or exynos9810()
    if duration_s is None:
        duration_s = config.duration_s if config is not None else None
    if config is None:
        config_kwargs = {"refresh_hz": platform.display_refresh_hz}
        if duration_s is not None:
            config_kwargs["duration_s"] = duration_s
        config = SimulationConfig(**config_kwargs)
    simulation = Simulation(platform=platform, governor=governor, config=config)
    recorder = simulation.run(workload, duration_s=duration_s)
    if app_names is None:
        app_names = [getattr(workload, "name", type(workload).__name__)]
    return SessionResult(
        governor_name=governor.name,
        app_names=list(app_names),
        recorder=recorder,
        summary=recorder.summary(),
    )


def run_trace(
    trace: WorkloadTrace,
    governor: Governor,
    platform: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
) -> SessionResult:
    """Replay a recorded demand trace under ``governor`` and summarise it."""
    return execute_session(
        TracePlayer(trace),
        governor,
        platform=platform,
        config=config,
        duration_s=trace.duration_s,
        app_names=trace.app_names(),
    )


def run_app_session(
    app_name: str,
    governor: Governor,
    duration_s: float = 120.0,
    platform: Optional[PlatformSpec] = None,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> SessionResult:
    """Record a fresh demand trace for ``app_name`` and run it under ``governor``."""
    platform = platform or exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz
    trace = TraceRecorder.record_app(make_app(app_name, seed=seed), duration_s, dt_s)
    return run_trace(trace, governor, platform=platform, config=config)


def record_session_trace(
    segments: Sequence[SessionSegment],
    platform: Optional[PlatformSpec] = None,
    seed: int = 0,
) -> WorkloadTrace:
    """Record the demand trace of a multi-app session (for fair comparisons)."""
    platform = platform or exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz
    return TraceRecorder.record_segments(segments, dt_s=dt_s, seed=seed)


def compare_governors_on_trace(
    trace: WorkloadTrace,
    governors: Mapping[str, Governor],
    baseline: str = "schedutil",
    platform: Optional[PlatformSpec] = None,
    config: Optional[SimulationConfig] = None,
) -> GovernorComparison:
    """Run every governor on the same trace and compare against ``baseline``."""
    if baseline not in governors:
        raise ValueError(f"baseline {baseline!r} is not among the governors")
    platform = platform or exynos9810()
    results = {
        name: run_trace(trace, governor, platform=platform, config=config)
        for name, governor in governors.items()
    }
    return GovernorComparison(baseline_name=baseline, results=results)


# ----------------------------------------------------------------------------------
# Next training
# ----------------------------------------------------------------------------------

#: Stride between the seeds of consecutive training episodes on one app.
#: Shared with the batched federated round path
#: (:func:`repro.experiments.federated.train_device_rounds_batched`), which
#: must derive bit-identical per-episode seeds.
EPISODE_SEED_STRIDE = 101


def train_next_governor(
    governor: NextGovernor,
    app_name: str,
    platform: Optional[PlatformSpec] = None,
    episodes: int = 6,
    episode_duration_s: float = 60.0,
    seed: int = 0,
    td_error_threshold: float = 0.02,
    config: Optional[SimulationConfig] = None,
) -> TrainingResult:
    """Train the Next agent on ``app_name`` over several simulated sessions.

    Each episode uses a freshly seeded application model so the agent sees
    varied user behaviour, mirroring the paper's on-device training across
    real usage.  Training stops early once the agent's TD error drops below
    ``td_error_threshold``.
    """
    platform = platform or exynos9810()
    governor.set_training(True)
    episodes_run = 0
    for episode in range(episodes):
        episodes_run += 1
        episode_seed = seed + episode * EPISODE_SEED_STRIDE
        if config is not None:
            # Keep the caller's knobs but still vary the sensor-noise seed per
            # episode; reusing one seed would de-randomise "freshly seeded"
            # episodes and narrow the experience the agent trains on.
            episode_config = replace(config, seed=episode_seed)
        else:
            episode_config = SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=episode_duration_s,
                seed=episode_seed,
            )
        simulation = Simulation(platform=platform, governor=governor, config=episode_config)
        app = make_app(app_name, seed=episode_seed)
        with maybe_span("episode", app=app_name, episode=episode, seed=episode_seed):
            simulation.run(app, duration_s=episode_duration_s)
        if governor.agent.has_converged(td_error_threshold):
            break
    agent = governor.agent
    return TrainingResult(
        app_name=app_name,
        episodes=episodes_run,
        agent_steps=agent.steps_for(app_name),
        training_time_s=agent.training_time_s(app_name),
        converged=agent.has_converged(td_error_threshold),
        final_td_error=agent.recent_td_error(),
        qtable_states=agent.qtable_size(app_name),
    )


#: Stride between the base seeds of consecutive apps when one governor is
#: trained on several applications, so their episode seeds cannot overlap.
APP_SEED_STRIDE = 1009


def train_next_on_apps(
    governor: NextGovernor,
    app_names: Sequence[str],
    platform: Optional[PlatformSpec] = None,
    episodes: int = 6,
    episode_duration_s: float = 60.0,
    seed: int = 0,
    td_error_threshold: float = 0.02,
    config: Optional[SimulationConfig] = None,
) -> List[TrainingResult]:
    """Train one governor on several applications, then freeze it.

    Each app trains through :func:`train_next_governor` with a base seed of
    ``seed + index * APP_SEED_STRIDE``; afterwards exploration is switched
    off so the governor evaluates the greedy (fully trained) policy.  This
    is the single train-then-freeze path shared by
    :func:`pretrained_next_governor`, :func:`select_best_next_governor`,
    the sweep harness's artifact trainer and the federated pipeline's
    per-device continuation rounds
    (:func:`repro.experiments.federated.train_device_round`), so their
    trained policies cannot drift apart.
    """
    platform = platform or exynos9810()
    results = [
        train_next_governor(
            governor,
            app_name,
            platform=platform,
            episodes=episodes,
            episode_duration_s=episode_duration_s,
            seed=seed + index * APP_SEED_STRIDE,
            td_error_threshold=td_error_threshold,
            config=config,
        )
        for index, app_name in enumerate(app_names)
    ]
    governor.set_training(False)
    return results


def pretrained_next_governor(
    app_names: Sequence[str],
    platform: Optional[PlatformSpec] = None,
    agent_config: Optional[AgentConfig] = None,
    episodes: int = 6,
    episode_duration_s: float = 60.0,
    seed: int = 0,
) -> NextGovernor:
    """Convenience: build a Next governor trained on the given applications.

    After training, exploration is switched off so that evaluation runs use
    the greedy (fully trained) policy, matching the paper's "all results for
    Next were observed when it was fully trained" protocol.
    """
    governor = NextGovernor(config=agent_config, seed=seed)
    train_next_on_apps(
        governor,
        app_names,
        platform=platform,
        episodes=episodes,
        episode_duration_s=episode_duration_s,
        seed=seed,
    )
    return governor


def candidate_sort_key(
    total_power_w: float,
    worst_delivery_ratio: float,
    min_delivery_ratio: float = 0.93,
):
    """Ranking key for trained-candidate selection (lower sorts first).

    QoS-preserving candidates (worst frame-delivery ratio at or above
    ``min_delivery_ratio``) always rank ahead of QoS violators and are ordered
    by ascending power; among violators the least-bad delivery ratio wins.
    This mirrors the paper's "savings must not come from dropping frames"
    constraint.
    """
    qos_ok = worst_delivery_ratio >= min_delivery_ratio
    if qos_ok:
        return (0, total_power_w)
    return (1, -worst_delivery_ratio)


def select_best_next_governor(
    app_names: Sequence[str],
    platform: Optional[PlatformSpec] = None,
    agent_config: Optional[AgentConfig] = None,
    candidate_seeds: Sequence[int] = (7, 23),
    episodes: int = 20,
    episode_duration_s: float = 90.0,
    validation_duration_s: float = 90.0,
    validation_seed: int = 555,
    min_delivery_ratio: float = 0.93,
) -> NextGovernor:
    """Train several Next candidates and keep the one that validates best.

    On a real deployment the cloud / federated back-end of Section IV-C would
    train across many devices and distribute the best-performing action
    values; the simulator reproduces that selection step by training a few
    independently seeded agents per application and picking, on a held-out
    validation trace, the candidate with the lowest average power among those
    that preserve QoS (frame-delivery ratio of at least
    ``min_delivery_ratio``).  If no candidate preserves QoS the one with the
    highest delivery ratio wins.
    """
    platform = platform or exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz
    validation_traces = {
        app_name: TraceRecorder.record_app(
            make_app(app_name, seed=validation_seed + index), validation_duration_s, dt_s
        )
        for index, app_name in enumerate(app_names)
    }

    best_governor: Optional[NextGovernor] = None
    best_key = None
    for seed in candidate_seeds:
        governor = NextGovernor(config=agent_config, seed=seed)
        train_next_on_apps(
            governor,
            app_names,
            platform=platform,
            episodes=episodes,
            episode_duration_s=episode_duration_s,
            seed=seed,
            td_error_threshold=0.0,
        )
        total_power = 0.0
        worst_delivery = 1.0
        for app_name, trace in validation_traces.items():
            result = run_trace(trace, governor, platform=platform)
            total_power += result.summary.average_power_w
            worst_delivery = min(worst_delivery, result.summary.frame_delivery_ratio)
        key = candidate_sort_key(total_power, worst_delivery, min_delivery_ratio)
        if best_key is None or key < best_key:
            best_key = key
            best_governor = governor
    assert best_governor is not None
    return best_governor
