"""Time-series recording and summary statistics for simulation runs.

The recorder stores one :class:`SimulationSample` per (recorded) tick --
the experimenter's ground-truth view, equivalent to the logging harness the
paper ran alongside its on-device experiments -- and derives the aggregate
numbers the paper reports: average power, peak temperature, average FPS,
dropped frames and average PPDW.

Storage is *struct-of-arrays*: each scalar field lives in its own flat
column and each mapping field in a values column plus a (shared, interned)
key tuple per row, so the simulation hot loop appends plain floats and small
tuples instead of building five dict copies and a dataclass per tick
(:meth:`Recorder.append_tick`).  The :class:`SimulationSample` view is
reconstructed lazily on access -- ``recorder.samples``, :meth:`resample` and
the analysis APIs are unchanged and the reconstructed samples compare equal
(bit-identically) to what the previous object-per-tick recorder stored.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.ppdw import compute_ppdw


@dataclass(frozen=True)
class SimulationSample:
    """Ground truth captured at one simulation tick."""

    time_s: float
    app_name: str
    phase_name: str
    fps: float
    target_fps: float
    frames_demanded: int
    frames_displayed: int
    frames_dropped: int
    power_total_w: float
    power_per_cluster_w: Mapping[str, float]
    temperatures_c: Mapping[str, float]
    frequencies_mhz: Mapping[str, float]
    max_limits_mhz: Mapping[str, float]
    utilisations: Mapping[str, float]
    interaction_activity: float


@dataclass
class SummaryStatistics:
    """Aggregates over a recorded run (the numbers the paper's figures show)."""

    duration_s: float
    average_power_w: float
    peak_power_w: float
    average_fps: float
    fps_p10: float
    peak_temperature_c: Dict[str, float]
    average_temperature_c: Dict[str, float]
    total_frames_displayed: int
    total_frames_demanded: int
    total_frames_dropped: int
    average_ppdw: float
    average_target_fps: float
    energy_j: float

    @property
    def frame_delivery_ratio(self) -> float:
        """Displayed / demanded frames (1.0 when every demanded frame showed)."""
        if self.total_frames_demanded == 0:
            return 1.0
        return min(1.0, self.total_frames_displayed / self.total_frames_demanded)


def sample_stream_hash(samples: Iterable[SimulationSample]) -> str:
    """Canonical SHA-256 over every field of every sample.

    Mapping fields are serialised with sorted keys and floats through
    ``repr`` (shortest round-trip), so the hash is exact: two sample streams
    hash equal iff they are bit-identical, independent of dict key order.
    The golden-trace regression suite pins recorded streams with this.
    """
    h = hashlib.sha256()
    for s in samples:
        h.update(
            repr(
                (
                    s.time_s,
                    s.app_name,
                    s.phase_name,
                    s.fps,
                    s.target_fps,
                    s.frames_demanded,
                    s.frames_displayed,
                    s.frames_dropped,
                    s.power_total_w,
                    tuple(sorted((k, v) for k, v in s.power_per_cluster_w.items())),
                    tuple(sorted((k, v) for k, v in s.temperatures_c.items())),
                    tuple(sorted((k, v) for k, v in s.frequencies_mhz.items())),
                    tuple(sorted((k, v) for k, v in s.max_limits_mhz.items())),
                    tuple(sorted((k, v) for k, v in s.utilisations.items())),
                    s.interaction_activity,
                )
            ).encode("utf-8")
        )
    return h.hexdigest()


#: Mapping-valued sample fields (each stored as a keys column + values column).
_MAPPING_FIELDS = (
    "power_per_cluster_w",
    "temperatures_c",
    "frequencies_mhz",
    "max_limits_mhz",
    "utilisations",
)


class Recorder:
    """Accumulates samples (struct-of-arrays) and computes :class:`SummaryStatistics`."""

    def __init__(self, ambient_c: float = 21.0, hot_node: str = "big") -> None:
        self.ambient_c = ambient_c
        self.hot_node = hot_node
        # Scalar columns.
        self._time: List[float] = []
        self._app: List[str] = []
        self._phase: List[str] = []
        self._fps: List[float] = []
        self._target_fps: List[float] = []
        self._demanded: List[int] = []
        self._displayed: List[int] = []
        self._dropped: List[int] = []
        self._power_total: List[float] = []
        self._interaction: List[float] = []
        # Mapping columns: one (keys, values) tuple pair per row per field.
        self._map_keys: Dict[str, List[Tuple[str, ...]]] = {
            name: [] for name in _MAPPING_FIELDS
        }
        self._map_vals: Dict[str, List[tuple]] = {name: [] for name in _MAPPING_FIELDS}
        # Interned key tuples (rows overwhelmingly share one layout per run).
        self._key_intern: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
        # Registered fixed layout for the engine fast path.
        self._cluster_keys: Optional[Tuple[str, ...]] = None
        self._node_keys: Optional[Tuple[str, ...]] = None
        # Lazily materialised SimulationSample views.
        self._materialised: List[SimulationSample] = []

    # -- appending ------------------------------------------------------------------

    def register_layout(
        self, cluster_keys: Sequence[str], node_keys: Sequence[str]
    ) -> None:
        """Fix the key layout for :meth:`append_tick` (cluster / node order)."""
        self._cluster_keys = self._intern(tuple(cluster_keys))
        self._node_keys = self._intern(tuple(node_keys))

    def _intern(self, keys: Tuple[str, ...]) -> Tuple[str, ...]:
        return self._key_intern.setdefault(keys, keys)

    def append_tick(
        self,
        time_s: float,
        app_name: str,
        phase_name: str,
        fps: float,
        target_fps: float,
        frames_demanded: int,
        frames_displayed: int,
        frames_dropped: int,
        power_total_w: float,
        power_per_cluster_values: tuple,
        temperature_values: tuple,
        frequency_values: tuple,
        max_limit_values: tuple,
        utilisation_values: tuple,
        interaction_activity: float,
    ) -> None:
        """Hot-loop append: flat values against the registered key layout.

        Requires :meth:`register_layout`; the value tuples must be aligned
        with the registered cluster/node key order.
        """
        cluster_keys = self._cluster_keys
        node_keys = self._node_keys
        if cluster_keys is None or node_keys is None:
            raise ValueError("append_tick requires register_layout() first")
        self._time.append(time_s)
        self._app.append(app_name)
        self._phase.append(phase_name)
        self._fps.append(fps)
        self._target_fps.append(target_fps)
        self._demanded.append(frames_demanded)
        self._displayed.append(frames_displayed)
        self._dropped.append(frames_dropped)
        self._power_total.append(power_total_w)
        self._interaction.append(interaction_activity)
        map_keys = self._map_keys
        map_vals = self._map_vals
        map_keys["power_per_cluster_w"].append(cluster_keys)
        map_vals["power_per_cluster_w"].append(power_per_cluster_values)
        map_keys["temperatures_c"].append(node_keys)
        map_vals["temperatures_c"].append(temperature_values)
        map_keys["frequencies_mhz"].append(cluster_keys)
        map_vals["frequencies_mhz"].append(frequency_values)
        map_keys["max_limits_mhz"].append(cluster_keys)
        map_vals["max_limits_mhz"].append(max_limit_values)
        map_keys["utilisations"].append(cluster_keys)
        map_vals["utilisations"].append(utilisation_values)

    def record(self, sample: SimulationSample) -> None:
        """Append one sample (object-based compatibility path)."""
        self._time.append(sample.time_s)
        self._app.append(sample.app_name)
        self._phase.append(sample.phase_name)
        self._fps.append(sample.fps)
        self._target_fps.append(sample.target_fps)
        self._demanded.append(sample.frames_demanded)
        self._displayed.append(sample.frames_displayed)
        self._dropped.append(sample.frames_dropped)
        self._power_total.append(sample.power_total_w)
        self._interaction.append(sample.interaction_activity)
        for name in _MAPPING_FIELDS:
            mapping = getattr(sample, name)
            keys = self._intern(tuple(mapping))
            self._map_keys[name].append(keys)
            self._map_vals[name].append(tuple(mapping[k] for k in keys))

    def __len__(self) -> int:
        return len(self._time)

    # -- sample views ----------------------------------------------------------------

    @property
    def samples(self) -> List[SimulationSample]:
        """All samples as :class:`SimulationSample` views (materialised lazily)."""
        materialised = self._materialised
        start = len(materialised)
        count = len(self._time)
        if start < count:
            build = self._build_sample
            for i in range(start, count):
                materialised.append(build(i))
        return materialised

    def _build_sample(self, i: int) -> SimulationSample:
        map_keys = self._map_keys
        map_vals = self._map_vals
        return SimulationSample(
            time_s=self._time[i],
            app_name=self._app[i],
            phase_name=self._phase[i],
            fps=self._fps[i],
            target_fps=self._target_fps[i],
            frames_demanded=self._demanded[i],
            frames_displayed=self._displayed[i],
            frames_dropped=self._dropped[i],
            power_total_w=self._power_total[i],
            power_per_cluster_w=dict(
                zip(map_keys["power_per_cluster_w"][i], map_vals["power_per_cluster_w"][i])
            ),
            temperatures_c=dict(
                zip(map_keys["temperatures_c"][i], map_vals["temperatures_c"][i])
            ),
            frequencies_mhz=dict(
                zip(map_keys["frequencies_mhz"][i], map_vals["frequencies_mhz"][i])
            ),
            max_limits_mhz=dict(
                zip(map_keys["max_limits_mhz"][i], map_vals["max_limits_mhz"][i])
            ),
            utilisations=dict(zip(map_keys["utilisations"][i], map_vals["utilisations"][i])),
            interaction_activity=self._interaction[i],
        )

    def content_hash(self) -> str:
        """Canonical hash of the recorded stream (see :func:`sample_stream_hash`)."""
        return sample_stream_hash(self.samples)

    # -- column access ------------------------------------------------------------

    #: Scalar sample fields served straight from their columns.
    _SCALAR_COLUMNS = {
        "time_s": "_time",
        "app_name": "_app",
        "phase_name": "_phase",
        "fps": "_fps",
        "target_fps": "_target_fps",
        "frames_demanded": "_demanded",
        "frames_displayed": "_displayed",
        "frames_dropped": "_dropped",
        "power_total_w": "_power_total",
        "interaction_activity": "_interaction",
    }

    def column(self, name: str) -> List:
        """Extract one attribute across all samples."""
        attr = self._SCALAR_COLUMNS.get(name)
        if attr is not None:
            return list(getattr(self, attr))
        if name in _MAPPING_FIELDS:
            keys = self._map_keys[name]
            vals = self._map_vals[name]
            return [dict(zip(keys[i], vals[i])) for i in range(len(self._time))]
        return [getattr(sample, name) for sample in self.samples]

    def _mapping_series(self, field_name: str, key: str, default: float) -> List[float]:
        """One key of a mapping field across all rows (``default`` when absent)."""
        keys = self._map_keys[field_name]
        vals = self._map_vals[field_name]
        index_cache: Dict[Tuple[str, ...], Optional[int]] = {}
        series: List[float] = []
        for i in range(len(self._time)):
            row_keys = keys[i]
            idx = index_cache.get(row_keys, -2)
            if idx == -2:
                idx = row_keys.index(key) if key in row_keys else None
                index_cache[row_keys] = idx
            series.append(default if idx is None else vals[i][idx])
        return series

    def temperature_series(self, node: str) -> List[float]:
        """Temperature of ``node`` across all samples."""
        return self._mapping_series("temperatures_c", node, self.ambient_c)

    def frequency_series(self, cluster: str) -> List[float]:
        """Operating frequency of ``cluster`` across all samples."""
        return self._mapping_series("frequencies_mhz", cluster, 0.0)

    # -- summaries -----------------------------------------------------------------

    def summary(self) -> SummaryStatistics:
        """Aggregate the recorded run."""
        count = len(self._time)
        if count == 0:
            raise ValueError("cannot summarise an empty recording")
        duration = self._time[-1] - self._time[0]
        if count > 1 and duration > 0:
            dt = duration / (count - 1)
        else:
            dt = 0.0

        powers = self._power_total
        fps_values = self._fps
        sorted_fps = sorted(fps_values)
        p10_index = max(0, int(0.1 * (count - 1)))

        ambient = self.ambient_c
        node_names: List[str] = sorted(
            {node for keys in set(self._map_keys["temperatures_c"]) for node in keys}
        )
        peak_temps = {
            node: max(self._mapping_series("temperatures_c", node, ambient))
            for node in node_names
        }
        avg_temps = {
            node: sum(self._mapping_series("temperatures_c", node, ambient)) / count
            for node in node_names
        }

        hot_temps = self._mapping_series("temperatures_c", self.hot_node, ambient)
        ppdw_values = [
            compute_ppdw(
                fps=fps_values[i],
                power_w=powers[i],
                temperature_c=hot_temps[i],
                ambient_c=ambient,
            )
            for i in range(count)
        ]

        return SummaryStatistics(
            duration_s=duration,
            average_power_w=sum(powers) / count,
            peak_power_w=max(powers),
            average_fps=sum(fps_values) / count,
            fps_p10=sorted_fps[p10_index],
            peak_temperature_c=peak_temps,
            average_temperature_c=avg_temps,
            total_frames_displayed=sum(self._displayed),
            total_frames_demanded=sum(self._demanded),
            total_frames_dropped=sum(self._dropped),
            average_ppdw=sum(ppdw_values) / count,
            average_target_fps=sum(self._target_fps) / count,
            energy_j=sum(powers) * dt if dt > 0 else 0.0,
        )

    # -- resampled views -------------------------------------------------------------

    def resample(self, period_s: float) -> List[SimulationSample]:
        """Return roughly one sample per ``period_s`` (for plotting / traces)."""
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        times = self._time
        if not times:
            return []
        build = self._build_sample
        result: List[SimulationSample] = []
        next_time = times[0]
        for i in range(len(times)):
            if times[i] + 1e-9 >= next_time:
                result.append(build(i))
                next_time += period_s
        return result


class BatchRecorder:
    """Column-striped recording over a device axis.

    The scalar :class:`Recorder` already stores struct-of-arrays per tick;
    here the device axis is one more stride.  Float fields are appended as
    ``(devices,)`` / ``(clusters, devices)`` / ``(nodes, devices)`` NumPy
    rows per recorded tick, string and integer fields as per-tick Python
    lists.  :meth:`device_recorder` slices one device column out into a real
    :class:`Recorder`; float64 extraction via ``tolist()`` is exact, so the
    materialised per-device sample stream is bit-identical to the one a
    scalar simulation of that device records.
    """

    def __init__(
        self,
        n_devices: int,
        ambient_c: float,
        hot_node: str,
        cluster_keys: Sequence[str],
        node_keys: Sequence[str],
    ) -> None:
        self.n_devices = n_devices
        self.ambient_c = ambient_c
        self.hot_node = hot_node
        self._cluster_keys = tuple(cluster_keys)
        self._node_keys = tuple(node_keys)
        self._time: List[float] = []
        # Per-tick Python rows (ragged / non-float fields), one entry per device.
        self._app: List[List[str]] = []
        self._phase: List[List[str]] = []
        self._target_fps: List[List[float]] = []
        self._demanded: List[List[int]] = []
        self._displayed: List[List[int]] = []
        self._dropped: List[List[int]] = []
        self._interaction: List[List[float]] = []
        # Per-tick NumPy rows.
        self._fps: List = []  # (devices,)
        self._power_total: List = []  # (devices,)
        self._power_rows: List = []  # (clusters, devices)
        self._temp_rows: List = []  # (nodes, devices)
        self._freq_rows: List = []  # (clusters, devices)
        self._max_limit_rows: List = []  # (clusters, devices)
        self._util_rows: List = []  # (clusters, devices)
        # Per-row device mask: None means every device recorded this tick;
        # otherwise a tuple of the device indices whose lane was both active
        # and due under its own recording cadence (heterogeneous batches).
        self._row_mask: List[Optional[Tuple[int, ...]]] = []

    def __len__(self) -> int:
        return len(self._time)

    def append_tick(
        self,
        time_s: float,
        app_names: List[str],
        phase_names: List[str],
        fps,
        target_fps: List[float],
        frames_demanded: List[int],
        frames_displayed: List[int],
        frames_dropped: List[int],
        power_total,
        power_rows,
        temperature_rows,
        frequency_rows,
        max_limit_rows,
        utilisation_rows,
        interaction: List[float],
        device_mask: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Append one recorded tick.

        Array arguments must be owned by the recorder (pass copies of any
        live simulation buffer) and always span the full device axis;
        ``device_mask`` marks which device columns belong to this row
        (``None`` = all of them -- the homogeneous fast path).
        """
        self._time.append(time_s)
        self._row_mask.append(device_mask)
        self._app.append(app_names)
        self._phase.append(phase_names)
        self._fps.append(fps)
        self._target_fps.append(target_fps)
        self._demanded.append(frames_demanded)
        self._displayed.append(frames_displayed)
        self._dropped.append(frames_dropped)
        self._power_total.append(power_total)
        self._power_rows.append(power_rows)
        self._temp_rows.append(temperature_rows)
        self._freq_rows.append(frequency_rows)
        self._max_limit_rows.append(max_limit_rows)
        self._util_rows.append(utilisation_rows)
        self._interaction.append(interaction)

    def device_recorder(self, device: int) -> Recorder:
        """Materialise one device's column as a scalar :class:`Recorder`.

        Rows whose ``device_mask`` excludes ``device`` (the lane had
        finished, or its recording cadence was not due) are skipped, so the
        materialised stream is exactly what a scalar run of that device
        records.
        """
        import numpy as np

        recorder = Recorder(ambient_c=self.ambient_c, hot_node=self.hot_node)
        recorder.register_layout(self._cluster_keys, self._node_keys)
        row_mask = self._row_mask
        rows_for_device = [
            i
            for i in range(len(self._time))
            if row_mask[i] is None or device in row_mask[i]
        ]
        count = len(rows_for_device)

        def gather(column_rows):
            return [column_rows[i][device] for i in rows_for_device]

        recorder._time = [self._time[i] for i in rows_for_device]
        recorder._app = gather(self._app)
        recorder._phase = gather(self._phase)
        recorder._target_fps = gather(self._target_fps)
        recorder._demanded = gather(self._demanded)
        recorder._displayed = gather(self._displayed)
        recorder._dropped = gather(self._dropped)
        recorder._interaction = gather(self._interaction)
        if count:
            recorder._fps = np.stack(
                [self._fps[i] for i in rows_for_device]
            )[:, device].tolist()
            recorder._power_total = np.stack(
                [self._power_total[i] for i in rows_for_device]
            )[:, device].tolist()
        cluster_keys = recorder._cluster_keys
        node_keys = recorder._node_keys
        map_keys = recorder._map_keys
        map_vals = recorder._map_vals

        def column(rows, keys, field):
            map_keys[field] = [keys] * count
            if count:
                sliced = np.stack(
                    [rows[i] for i in rows_for_device]
                )[:, :, device].tolist()
                map_vals[field] = [tuple(row) for row in sliced]

        column(self._power_rows, cluster_keys, "power_per_cluster_w")
        column(self._temp_rows, node_keys, "temperatures_c")
        column(self._freq_rows, cluster_keys, "frequencies_mhz")
        column(self._max_limit_rows, cluster_keys, "max_limits_mhz")
        column(self._util_rows, cluster_keys, "utilisations")
        return recorder

    def device_recorders(self) -> List[Recorder]:
        """Materialise every device column (device order)."""
        return [self.device_recorder(d) for d in range(self.n_devices)]
