"""Time-series recording and summary statistics for simulation runs.

The recorder stores one :class:`SimulationSample` per (recorded) tick --
the experimenter's ground-truth view, equivalent to the logging harness the
paper ran alongside its on-device experiments -- and derives the aggregate
numbers the paper reports: average power, peak temperature, average FPS,
dropped frames and average PPDW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.ppdw import compute_ppdw


@dataclass(frozen=True)
class SimulationSample:
    """Ground truth captured at one simulation tick."""

    time_s: float
    app_name: str
    phase_name: str
    fps: float
    target_fps: float
    frames_demanded: int
    frames_displayed: int
    frames_dropped: int
    power_total_w: float
    power_per_cluster_w: Mapping[str, float]
    temperatures_c: Mapping[str, float]
    frequencies_mhz: Mapping[str, float]
    max_limits_mhz: Mapping[str, float]
    utilisations: Mapping[str, float]
    interaction_activity: float


@dataclass
class SummaryStatistics:
    """Aggregates over a recorded run (the numbers the paper's figures show)."""

    duration_s: float
    average_power_w: float
    peak_power_w: float
    average_fps: float
    fps_p10: float
    peak_temperature_c: Dict[str, float]
    average_temperature_c: Dict[str, float]
    total_frames_displayed: int
    total_frames_demanded: int
    total_frames_dropped: int
    average_ppdw: float
    average_target_fps: float
    energy_j: float

    @property
    def frame_delivery_ratio(self) -> float:
        """Displayed / demanded frames (1.0 when every demanded frame showed)."""
        if self.total_frames_demanded == 0:
            return 1.0
        return min(1.0, self.total_frames_displayed / self.total_frames_demanded)


class Recorder:
    """Accumulates samples and computes :class:`SummaryStatistics`."""

    def __init__(self, ambient_c: float = 21.0, hot_node: str = "big") -> None:
        self.ambient_c = ambient_c
        self.hot_node = hot_node
        self.samples: List[SimulationSample] = []

    def record(self, sample: SimulationSample) -> None:
        """Append one sample."""
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    # -- column access ------------------------------------------------------------

    def column(self, name: str) -> List:
        """Extract one attribute across all samples."""
        return [getattr(sample, name) for sample in self.samples]

    def temperature_series(self, node: str) -> List[float]:
        """Temperature of ``node`` across all samples."""
        return [sample.temperatures_c.get(node, self.ambient_c) for sample in self.samples]

    def frequency_series(self, cluster: str) -> List[float]:
        """Operating frequency of ``cluster`` across all samples."""
        return [sample.frequencies_mhz.get(cluster, 0.0) for sample in self.samples]

    # -- summaries -----------------------------------------------------------------

    def summary(self) -> SummaryStatistics:
        """Aggregate the recorded run."""
        if not self.samples:
            raise ValueError("cannot summarise an empty recording")
        count = len(self.samples)
        duration = self.samples[-1].time_s - self.samples[0].time_s
        if count > 1 and duration > 0:
            dt = duration / (count - 1)
        else:
            dt = 0.0

        powers = [s.power_total_w for s in self.samples]
        fps_values = [s.fps for s in self.samples]
        sorted_fps = sorted(fps_values)
        p10_index = max(0, int(0.1 * (count - 1)))

        node_names: List[str] = sorted(
            {node for sample in self.samples for node in sample.temperatures_c}
        )
        peak_temps = {
            node: max(s.temperatures_c.get(node, self.ambient_c) for s in self.samples)
            for node in node_names
        }
        avg_temps = {
            node: sum(s.temperatures_c.get(node, self.ambient_c) for s in self.samples) / count
            for node in node_names
        }

        ppdw_values = [
            compute_ppdw(
                fps=s.fps,
                power_w=s.power_total_w,
                temperature_c=s.temperatures_c.get(self.hot_node, self.ambient_c),
                ambient_c=self.ambient_c,
            )
            for s in self.samples
        ]

        return SummaryStatistics(
            duration_s=duration,
            average_power_w=sum(powers) / count,
            peak_power_w=max(powers),
            average_fps=sum(fps_values) / count,
            fps_p10=sorted_fps[p10_index],
            peak_temperature_c=peak_temps,
            average_temperature_c=avg_temps,
            total_frames_displayed=sum(s.frames_displayed for s in self.samples),
            total_frames_demanded=sum(s.frames_demanded for s in self.samples),
            total_frames_dropped=sum(s.frames_dropped for s in self.samples),
            average_ppdw=sum(ppdw_values) / count,
            average_target_fps=sum(s.target_fps for s in self.samples) / count,
            energy_j=sum(powers) * dt if dt > 0 else 0.0,
        )

    # -- resampled views -------------------------------------------------------------

    def resample(self, period_s: float) -> List[SimulationSample]:
        """Return roughly one sample per ``period_s`` (for plotting / traces)."""
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not self.samples:
            return []
        result: List[SimulationSample] = []
        next_time = self.samples[0].time_s
        for sample in self.samples:
            if sample.time_s + 1e-9 >= next_time:
                result.append(sample)
                next_time += period_s
        return result
