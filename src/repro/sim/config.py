"""Simulation configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class SimulationConfig:
    """Top-level knobs of a simulation run.

    Attributes
    ----------
    refresh_hz:
        Display refresh rate; also defines the tick length (one VSync).
    duration_s:
        How long to simulate (can be overridden per call).
    seed:
        Seed for all stochastic components created by the engine.
    record_every_n_ticks:
        Down-sampling factor for the recorder (1 records every tick).
    warm_start_temperature_c:
        Initial temperature of all thermal nodes; ``None`` starts at ambient.
        The paper's measurements begin on an already-warm phone, so
        experiments typically warm-start a few degrees above ambient.
    sensor_seed_offset:
        Offset added to ``seed`` for the sensor-noise RNG so that workload
        randomness and sensor randomness are decoupled.
    """

    refresh_hz: float = 60.0
    duration_s: float = 120.0
    seed: int = 0
    record_every_n_ticks: int = 1
    warm_start_temperature_c: Optional[float] = None
    sensor_seed_offset: int = 10_000

    def __post_init__(self) -> None:
        if self.refresh_hz <= 0:
            raise ValueError("refresh_hz must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.record_every_n_ticks < 1:
            raise ValueError("record_every_n_ticks must be at least 1")

    @property
    def dt_s(self) -> float:
        """Tick length: one VSync period."""
        return 1.0 / self.refresh_hz
