"""Simulation clock.

A small helper that keeps the simulated time, the tick counter and the tick
length in one place so that every component sees a consistent notion of
"now".  Using an integer tick counter avoids the floating-point drift that
accumulating ``time += dt`` would introduce over long sessions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SimulationClock:
    """Discrete simulation clock with a fixed tick length."""

    dt_s: float

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._ticks * self.dt_s

    def advance(self) -> float:
        """Advance by one tick and return the new time."""
        self._ticks += 1
        return self.now_s

    def reset(self) -> None:
        """Rewind to time zero."""
        self._ticks = 0

    def ticks_for(self, duration_s: float) -> int:
        """Number of whole ticks needed to cover ``duration_s``.

        Exact multiples of the tick length are guaranteed to map back
        exactly: ``ticks_for(k * dt_s) == k`` for any non-negative integer
        ``k``.  The quotient ``(k * dt_s) / dt_s`` lands a few ulp away from
        ``k`` for many ``k`` (truncating it would drop a whole tick, e.g.
        ``k = 31`` at 60 Hz), so the quotient is snapped to the nearest whole
        tick; the property test in ``tests/test_clock.py`` pins this
        contract across large ``k``.
        """
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        # int() also normalises NumPy float scalars, whose round() stays a
        # NumPy scalar rather than a Python int.
        return int(round(duration_s / self.dt_s))
