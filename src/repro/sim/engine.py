"""The simulation engine: one VSync-period tick couples all substrates.

Per tick the engine performs, in order:

1. ask the workload for its demand (frames + background work),
2. render through the frame pipeline at the *current* cluster frequencies,
3. feed the resulting utilisations into the SoC and integrate power/thermal,
4. account displayed/dropped frames into the display's FPS counter,
5. give the policy governor its fast-path FPS observation (the Next agent's
   25 ms frame-window sampling hangs off this hook),
6. run the inner ``schedutil`` scaler, which picks each cluster's frequency
   within its current min/max limits, and
7. when the policy governor's invocation period has elapsed, assemble a
   :class:`~repro.governors.base.GovernorObservation` from the *sensed*
   (noisy) values and let the governor adjust limits/frequencies.

The engine records ground truth into a :class:`~repro.sim.recorder.Recorder`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.governors.base import Governor, GovernorObservation
from repro.governors.schedutil import SchedutilScaler
from repro.graphics.display import Display
from repro.graphics.pipeline import FramePipeline, PipelineConfig
from repro.sim.clock import SimulationClock
from repro.sim.config import SimulationConfig
from repro.sim.recorder import Recorder, SimulationSample
from repro.soc.cluster import ClusterKind
from repro.soc.platform import PlatformSpec
from repro.soc.soc import SocSimulator
from repro.workloads.app import TickWorkload
from repro.workloads.apps import make_app


class SessionWorkload:
    """Adapts a multi-segment session into the tick-able workload interface.

    Applications are instantiated lazily when their segment starts, each with
    its own derived seed, and the emitted :class:`TickWorkload` times are
    offset so they are monotonically increasing across the whole session.
    """

    def __init__(self, segments: Sequence, seed: Optional[int] = None) -> None:
        if not segments:
            raise ValueError("a session workload needs at least one segment")
        self._segments = list(segments)
        self._seed = seed
        self._segment_index = 0
        self._segment_elapsed_s = 0.0
        self._time_offset_s = 0.0
        self._current_app = None

    def _ensure_app(self):
        if self._current_app is None:
            segment = self._segments[self._segment_index]
            app_seed = None if self._seed is None else self._seed + self._segment_index * 7919
            self._current_app = make_app(segment.app_name, seed=app_seed)
        return self._current_app

    @property
    def exhausted(self) -> bool:
        """Whether every segment has been fully played."""
        return self._segment_index >= len(self._segments)

    def tick(self, dt_s: float) -> TickWorkload:
        """Produce the next tick of demand, advancing segments as needed."""
        if self.exhausted:
            return TickWorkload(
                time_s=self._time_offset_s,
                app_name="idle",
                phase_name="exhausted",
                frames=[],
                background_work_mwu={},
                interaction_activity=0.0,
            )
        segment = self._segments[self._segment_index]
        app = self._ensure_app()
        tick = app.tick(dt_s)
        result = TickWorkload(
            time_s=self._time_offset_s + self._segment_elapsed_s,
            app_name=tick.app_name,
            phase_name=tick.phase_name,
            frames=tick.frames,
            background_work_mwu=tick.background_work_mwu,
            interaction_activity=tick.interaction_activity,
        )
        self._segment_elapsed_s += dt_s
        if self._segment_elapsed_s >= segment.duration_s - 1e-9:
            self._time_offset_s += self._segment_elapsed_s
            self._segment_elapsed_s = 0.0
            self._segment_index += 1
            self._current_app = None
        return result


class Simulation:
    """Couples a platform, a policy governor and a workload source."""

    def __init__(
        self,
        platform: PlatformSpec,
        governor: Governor,
        config: Optional[SimulationConfig] = None,
        scaler: Optional[SchedutilScaler] = None,
    ) -> None:
        self.platform = platform
        self.governor = governor
        self.config = config or SimulationConfig(refresh_hz=platform.display_refresh_hz)
        self.scaler = scaler or SchedutilScaler()

        sensor_rng = random.Random(self.config.seed + self.config.sensor_seed_offset)
        self.soc = SocSimulator(platform, rng=sensor_rng)
        if self.config.warm_start_temperature_c is not None:
            self.soc.thermal.reset(self.config.warm_start_temperature_c)

        self.pipeline = FramePipeline(
            config=self._pipeline_config(),
            refresh_hz=self.config.refresh_hz,
        )
        self.display = Display(refresh_hz=self.config.refresh_hz)
        self.clock = SimulationClock(dt_s=self.config.dt_s)
        self.recorder = Recorder(
            ambient_c=platform.ambient_c,
            hot_node=self._big_cluster_name() or platform.cluster_names[0],
        )

        self._current_app: Optional[str] = None
        self._last_invocation_s: Optional[float] = None
        self._dropped_since_invocation = 0
        self._demanded_since_invocation = 0

    # -- helpers --------------------------------------------------------------------

    def _big_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.BIG_CPU)

    def _little_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.LITTLE_CPU)

    def _gpu_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.GPU)

    def _pipeline_config(self) -> PipelineConfig:
        big = self._big_cluster_name() or self.platform.cluster_names[0]
        little = self._little_cluster_name() or "__no_little__"
        gpu = self._gpu_cluster_name() or "__no_gpu__"
        return PipelineConfig(big_cluster=big, little_cluster=little, gpu_cluster=gpu)

    def _target_fps(self) -> float:
        agent = getattr(self.governor, "agent", None)
        if agent is None:
            return 0.0
        return agent.target_fps

    # -- main loop --------------------------------------------------------------------

    def run(self, workload, duration_s: Optional[float] = None) -> Recorder:
        """Run ``workload`` for ``duration_s`` (default: the config duration).

        ``workload`` is anything with a ``tick(dt_s) -> TickWorkload`` method:
        an :class:`~repro.workloads.app.AppModel`, a
        :class:`~repro.workloads.trace.TracePlayer` or a
        :class:`SessionWorkload`.
        """
        duration = duration_s if duration_s is not None else self.config.duration_s
        ticks = self.clock.ticks_for(duration)
        for _ in range(ticks):
            self._step_once(workload)
        return self.recorder

    def _step_once(self, workload) -> None:
        dt = self.config.dt_s
        demand = workload.tick(dt)

        if demand.app_name != self._current_app:
            if self._current_app is not None:
                self.governor.on_session_end(self._current_app)
            self._current_app = demand.app_name
            self.governor.on_session_start(self._current_app)

        result = self.pipeline.tick(
            dt_s=dt,
            clusters=self.soc.clusters,
            frame_demands=demand.frames,
            background_work_mwu=demand.background_work_mwu,
        )
        self.soc.set_utilisations(result.utilisations)
        telemetry = self.soc.step(dt)
        now = self.clock.advance()

        self.display.record_tick(now, result.frames_displayed, result.frames_dropped)
        fps = self.display.current_fps(now)
        self.governor.observe_tick(now, fps)

        # Inner utilisation-driven frequency selection inside the limits.
        self.scaler.select_all(self.soc.clusters, result.utilisations, now)

        self._dropped_since_invocation += result.frames_dropped
        self._demanded_since_invocation += len(demand.frames)

        due = (
            self._last_invocation_s is None
            or now - self._last_invocation_s >= self.governor.invocation_period_s - 1e-9
        )
        if due:
            readings = self.soc.sample_sensors()
            big_name = self._big_cluster_name()
            if big_name is not None and big_name in readings.temperatures_c:
                temperature_big = readings.temperatures_c[big_name]
            else:
                temperature_big = max(readings.temperatures_c.values())
            observation = GovernorObservation(
                time_s=now,
                dt_s=(
                    now - self._last_invocation_s
                    if self._last_invocation_s is not None
                    else self.governor.invocation_period_s
                ),
                fps=fps,
                utilisations=dict(result.utilisations),
                frequencies_mhz={
                    name: c.current_frequency_mhz for name, c in self.soc.clusters.items()
                },
                max_limits_mhz={
                    name: c.max_limit_frequency_mhz for name, c in self.soc.clusters.items()
                },
                power_w=readings.power_w,
                temperature_big_c=temperature_big,
                temperature_device_c=readings.device_temperature_c,
                frames_dropped=self._dropped_since_invocation,
                frames_demanded=self._demanded_since_invocation,
            )
            self.governor.update(observation, self.soc.clusters)
            self._last_invocation_s = now
            self._dropped_since_invocation = 0
            self._demanded_since_invocation = 0

        if self.clock.ticks % self.config.record_every_n_ticks == 0:
            self.recorder.record(
                SimulationSample(
                    time_s=now,
                    app_name=demand.app_name,
                    phase_name=demand.phase_name,
                    fps=fps,
                    target_fps=self._target_fps(),
                    frames_demanded=len(demand.frames),
                    frames_displayed=result.frames_displayed,
                    frames_dropped=result.frames_dropped,
                    power_total_w=telemetry.total_power_w,
                    power_per_cluster_w={
                        name: telemetry.power.cluster_total_w(name)
                        for name in self.soc.clusters
                    },
                    temperatures_c=dict(telemetry.temperatures_c),
                    frequencies_mhz=dict(telemetry.frequencies_mhz),
                    max_limits_mhz=dict(telemetry.max_limits_mhz),
                    utilisations=dict(telemetry.utilisations),
                    interaction_activity=demand.interaction_activity,
                )
            )
