"""The simulation engine: one VSync-period tick couples all substrates.

Per tick the engine performs, in order:

1. ask the workload for its demand (frames + background work),
2. render through the frame pipeline at the *current* cluster frequencies,
3. feed the resulting utilisations into the SoC and integrate power/thermal,
4. account displayed/dropped frames into the display's FPS counter,
5. give the policy governor its fast-path FPS observation (the Next agent's
   25 ms frame-window sampling hangs off this hook),
6. run the inner ``schedutil`` scaler, which picks each cluster's frequency
   within its current min/max limits, and
7. when the policy governor's invocation period has elapsed, assemble a
   :class:`~repro.governors.base.GovernorObservation` from the *sensed*
   (noisy) values and let the governor adjust limits/frequencies.

The engine records ground truth into a :class:`~repro.sim.recorder.Recorder`.

Hot-loop kernel
---------------
The per-tick path runs against the compiled SoC kernel
(:meth:`~repro.soc.soc.SocSimulator.step_tick`) and the struct-of-arrays
recorder fast path (:meth:`~repro.sim.recorder.Recorder.append_tick`), so a
tick allocates no telemetry snapshot and no per-sample dict copies.  Full
``SocTelemetry``/``GovernorObservation`` snapshots are materialised only at
recorder ticks and governor-invocation boundaries.  Outputs are bit-identical
to the original allocating path (pinned by the golden-trace suite).
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.governors.base import Governor, GovernorObservation
from repro.governors.schedutil import SchedutilScaler
from repro.obs.profile import active_profiler
from repro.graphics.display import Display
from repro.graphics.pipeline import FramePipeline, PipelineConfig
from repro.sim.clock import SimulationClock
from repro.sim.config import SimulationConfig
from repro.sim.recorder import Recorder
from repro.soc.cluster import ClusterKind
from repro.soc.platform import PlatformSpec
from repro.soc.soc import SocSimulator
from repro.workloads.app import TickWorkload
from repro.workloads.apps import make_app


class SessionWorkload:
    """Adapts a multi-segment session into the tick-able workload interface.

    Applications are instantiated lazily when their segment starts, each with
    its own derived seed, and the emitted :class:`TickWorkload` times are
    offset so they are monotonically increasing across the whole session.

    Segment boundaries are *integer tick counts* derived once per segment
    (``ceil(duration_s / dt_s)``, fractional ticks round up to whole VSync
    periods).  The previous implementation accumulated ``dt_s`` in floats and
    compared against ``duration_s - 1e-9``, which could gain or lose a tick
    per segment on long sessions; counting ticks makes boundaries exact for
    sessions of any length.
    """

    def __init__(self, segments: Sequence, seed: Optional[int] = None) -> None:
        if not segments:
            raise ValueError("a session workload needs at least one segment")
        self._segments = list(segments)
        self._seed = seed
        self._segment_index = 0
        self._segment_tick = 0
        self._segment_total_ticks: Optional[int] = None
        self._time_offset_s = 0.0
        self._current_app = None

    def _ensure_app(self):
        if self._current_app is None:
            segment = self._segments[self._segment_index]
            app_seed = None if self._seed is None else self._seed + self._segment_index * 7919
            self._current_app = make_app(segment.app_name, seed=app_seed)
        return self._current_app

    @property
    def exhausted(self) -> bool:
        """Whether every segment has been fully played."""
        return self._segment_index >= len(self._segments)

    def tick(self, dt_s: float) -> TickWorkload:
        """Produce the next tick of demand, advancing segments as needed."""
        if self.exhausted:
            return TickWorkload(
                time_s=self._time_offset_s,
                app_name="idle",
                phase_name="exhausted",
                frames=[],
                background_work_mwu={},
                interaction_activity=0.0,
            )
        segment = self._segments[self._segment_index]
        if self._segment_total_ticks is None:
            # Derive the boundary once per segment as a whole number of ticks:
            # exact multiples of dt_s stay exact, fractional durations round
            # up (a 2.5-tick segment plays 3 whole VSync periods).
            self._segment_total_ticks = max(
                1, math.ceil(segment.duration_s / dt_s - 1e-9)
            )
            self._segment_tick = 0
        app = self._ensure_app()
        tick = app.tick(dt_s)
        result = TickWorkload(
            time_s=self._time_offset_s + self._segment_tick * dt_s,
            app_name=tick.app_name,
            phase_name=tick.phase_name,
            frames=tick.frames,
            background_work_mwu=tick.background_work_mwu,
            interaction_activity=tick.interaction_activity,
        )
        self._segment_tick += 1
        if self._segment_tick >= self._segment_total_ticks:
            self._time_offset_s += self._segment_total_ticks * dt_s
            self._segment_tick = 0
            self._segment_total_ticks = None
            self._segment_index += 1
            self._current_app = None
        return result


class Simulation:
    """Couples a platform, a policy governor and a workload source."""

    def __init__(
        self,
        platform: PlatformSpec,
        governor: Governor,
        config: Optional[SimulationConfig] = None,
        scaler: Optional[SchedutilScaler] = None,
    ) -> None:
        self.platform = platform
        self.governor = governor
        self.config = config or SimulationConfig(refresh_hz=platform.display_refresh_hz)
        self.scaler = scaler or SchedutilScaler()

        sensor_rng = random.Random(self.config.seed + self.config.sensor_seed_offset)
        self.soc = SocSimulator(platform, rng=sensor_rng)
        if self.config.warm_start_temperature_c is not None:
            self.soc.thermal.reset(self.config.warm_start_temperature_c)

        self.pipeline = FramePipeline(
            config=self._pipeline_config(),
            refresh_hz=self.config.refresh_hz,
        )
        self.display = Display(refresh_hz=self.config.refresh_hz)
        self.clock = SimulationClock(dt_s=self.config.dt_s)
        self.recorder = Recorder(
            ambient_c=platform.ambient_c,
            hot_node=self._big_cluster_name() or platform.cluster_names[0],
        )
        # Register the fixed column layout so per-tick recording stores flat
        # value tuples against shared key tuples (struct-of-arrays).
        self.recorder.register_layout(
            cluster_keys=self.soc.cluster_name_keys(),
            node_keys=self.soc.node_name_keys(),
        )

        self._current_app: Optional[str] = None
        self._last_invocation_s: Optional[float] = None
        self._dropped_since_invocation = 0
        self._demanded_since_invocation = 0
        #: (name, cluster) pairs in platform order -- the hot loop iterates
        #: this list instead of rebuilding dict views every tick.
        self._cluster_items = list(self.soc.clusters.items())
        #: Pre-compiled per-cluster records for the fused scaler pass.
        self._scaler_compiled = self.scaler.compile_clusters(self.soc.clusters)

    # -- helpers --------------------------------------------------------------------

    def _big_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.BIG_CPU)

    def _little_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.LITTLE_CPU)

    def _gpu_cluster_name(self) -> Optional[str]:
        return self.platform.cluster_of_kind(ClusterKind.GPU)

    def _pipeline_config(self) -> PipelineConfig:
        big = self._big_cluster_name() or self.platform.cluster_names[0]
        little = self._little_cluster_name() or "__no_little__"
        gpu = self._gpu_cluster_name() or "__no_gpu__"
        return PipelineConfig(big_cluster=big, little_cluster=little, gpu_cluster=gpu)

    def _target_fps(self) -> float:
        agent = getattr(self.governor, "agent", None)
        if agent is None:
            return 0.0
        return agent.target_fps

    # -- main loop --------------------------------------------------------------------

    def run(self, workload, duration_s: Optional[float] = None) -> Recorder:
        """Run ``workload`` for ``duration_s`` (default: the config duration).

        ``workload`` is anything with a ``tick(dt_s) -> TickWorkload`` method:
        an :class:`~repro.workloads.app.AppModel`, a
        :class:`~repro.workloads.trace.TracePlayer` or a
        :class:`SessionWorkload`.
        """
        duration = duration_s if duration_s is not None else self.config.duration_s
        self._run_ticks(workload, self.clock.ticks_for(duration))
        return self.recorder

    def _step_once(self, workload) -> None:
        """Advance the simulation by exactly one tick."""
        self._run_ticks(workload, 1)

    def _run_ticks(self, workload, ticks: int) -> None:
        """The compiled tick loop: everything hot is bound to locals once.

        One implementation serves both :meth:`run` and :meth:`_step_once`, so
        the fast path cannot drift from single-stepped behaviour.
        """
        config = self.config
        dt = config.dt_s
        record_every = config.record_every_n_ticks
        governor = self.governor
        invocation_period = governor.invocation_period_s
        # Baseline governors inherit the no-op observe_tick; skip the 60 Hz
        # call for them entirely (the Next agent's frame window still gets
        # every tick).
        governor_observe = (
            governor.observe_tick
            if type(governor).observe_tick is not Governor.observe_tick
            else None
        )
        pipeline_tick = self.pipeline.tick
        soc = self.soc
        soc_clusters = soc.clusters
        soc_step = soc.step_tick
        soc_record_values = soc.record_values
        soc_dvfs_values = soc.dvfs_values
        clock = self.clock
        display = self.display
        display_record_fps = display.record_tick_fps
        scaler = self.scaler
        scaler_compiled = self._scaler_compiled
        scaler_select_tick = scaler.select_tick
        cluster_items = self._cluster_items
        recorder_append = self.recorder.append_tick
        workload_tick = workload.tick
        governor_agent = getattr(governor, "agent", None)
        current_app = self._current_app
        last_invocation = self._last_invocation_s
        dropped_since = self._dropped_since_invocation
        demanded_since = self._demanded_since_invocation
        governor_update = governor.update
        profiler = active_profiler()
        if profiler is not None:
            # Opt-in sampling profiler: rebind the stage callables through
            # timing wrappers that pass results through untouched, so the
            # loop below is identical whether profiling is on or off and the
            # disabled path costs one module-global read per call.
            workload_tick = profiler.wrap("workload", workload_tick)
            pipeline_tick = profiler.wrap("pipeline", pipeline_tick)
            soc_step = profiler.wrap("power_thermal", soc_step)
            scaler_select_tick = profiler.wrap("scaler", scaler_select_tick)
            governor_update = profiler.wrap("governor", governor_update)
            recorder_append = profiler.wrap("recorder", recorder_append)
        try:
            for _ in range(ticks):
                demand = workload_tick(dt)

                app_name = demand.app_name
                if app_name != current_app:
                    if current_app is not None:
                        governor.on_session_end(current_app)
                    current_app = app_name
                    governor.on_session_start(app_name)
                    invocation_period = governor.invocation_period_s

                frames = demand.frames
                result = pipeline_tick(
                    dt,
                    soc_clusters,
                    frames,
                    demand.background_work_mwu,
                )
                utilisations = result.utilisations
                for name, cluster in cluster_items:
                    # Inlined Cluster.utilisation setter (same clamp).
                    value = utilisations[name]
                    if value < 0.0:
                        value = 0.0
                    elif value > 1.0:
                        value = 1.0
                    cluster._utilisation = value
                soc_step(dt)
                tick_count = clock._ticks + 1
                clock._ticks = tick_count
                now = tick_count * dt

                will_record = tick_count % record_every == 0
                if will_record:
                    # Snapshot DVFS state *now*: the recorded sample reflects
                    # the frequencies/limits the tick was simulated at, before
                    # the inner scaler and the policy governor adjust them for
                    # the next tick.
                    frequency_values, max_limit_values = soc_dvfs_values()

                frames_displayed = result.frames_displayed
                frames_dropped = result.frames_dropped
                fps = display_record_fps(now, frames_displayed, frames_dropped)
                if governor_observe is not None:
                    governor_observe(now, fps)

                # Inner utilisation-driven frequency selection inside the limits.
                scaler_select_tick(scaler_compiled, utilisations, now)

                dropped_since += frames_dropped
                demanded_since += len(frames)

                due = (
                    last_invocation is None
                    or now - last_invocation >= invocation_period - 1e-9
                )
                if due:
                    # Everything snapshot-shaped (sensor sampling, the
                    # observation's dict copies) lives inside this branch so a
                    # governor with a long invocation period costs nothing on
                    # the ticks in between.
                    readings = soc.sample_sensors()
                    big_name = self._big_cluster_name()
                    if big_name is not None and big_name in readings.temperatures_c:
                        temperature_big = readings.temperatures_c[big_name]
                    else:
                        temperature_big = max(readings.temperatures_c.values())
                    observation = GovernorObservation(
                        time_s=now,
                        dt_s=(
                            now - last_invocation
                            if last_invocation is not None
                            else invocation_period
                        ),
                        fps=fps,
                        utilisations=dict(utilisations),
                        frequencies_mhz={
                            name: c.current_frequency_mhz for name, c in cluster_items
                        },
                        max_limits_mhz={
                            name: c.max_limit_frequency_mhz for name, c in cluster_items
                        },
                        power_w=readings.power_w,
                        temperature_big_c=temperature_big,
                        temperature_device_c=readings.device_temperature_c,
                        frames_dropped=dropped_since,
                        frames_demanded=demanded_since,
                    )
                    governor_update(observation, soc_clusters)
                    last_invocation = now
                    dropped_since = 0
                    demanded_since = 0
                    invocation_period = governor.invocation_period_s

                if will_record:
                    power_total, power_values, temperature_values, utilisation_values = (
                        soc_record_values()
                    )
                    recorder_append(
                        now,
                        app_name,
                        demand.phase_name,
                        fps,
                        0.0 if governor_agent is None else governor_agent.target_fps,
                        len(frames),
                        frames_displayed,
                        frames_dropped,
                        power_total,
                        power_values,
                        temperature_values,
                        frequency_values,
                        max_limit_values,
                        utilisation_values,
                        demand.interaction_activity,
                    )
        finally:
            self._current_app = current_app
            self._last_invocation_s = last_invocation
            self._dropped_since_invocation = dropped_since
            self._demanded_since_invocation = demanded_since
