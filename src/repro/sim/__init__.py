"""Simulation engine: couples workload, display pipeline, SoC and governor.

The engine advances in ticks of one VSync period (16.67 ms at 60 Hz).  Each
tick the foreground application produces demand, the frame pipeline renders
against the current cluster frequencies, the SoC integrates power and
temperature, the display accounts FPS, the inner ``schedutil`` scaler picks
frequencies within the current limits, and -- at its own invocation period --
the policy governor under test (stock schedutil, Int. QoS PM or Next)
observes the sensors and adjusts the limits.
"""

from repro.sim.clock import SimulationClock
from repro.sim.config import SimulationConfig
from repro.sim.engine import SessionWorkload, Simulation
from repro.sim.recorder import Recorder, SimulationSample, SummaryStatistics
from repro.sim.experiment import (
    GovernorComparison,
    SessionResult,
    TrainingResult,
    compare_governors_on_trace,
    execute_session,
    make_governor,
    pretrained_next_governor,
    run_app_session,
    run_trace,
    select_best_next_governor,
    train_next_governor,
    train_next_on_apps,
)

__all__ = [
    "SimulationClock",
    "SimulationConfig",
    "Simulation",
    "SessionWorkload",
    "Recorder",
    "SimulationSample",
    "SummaryStatistics",
    "SessionResult",
    "TrainingResult",
    "GovernorComparison",
    "execute_session",
    "run_trace",
    "run_app_session",
    "train_next_governor",
    "train_next_on_apps",
    "pretrained_next_governor",
    "select_best_next_governor",
    "compare_governors_on_trace",
    "make_governor",
]
