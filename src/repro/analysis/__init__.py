"""Analysis helpers: metric aggregation, baseline comparison, text tables."""

from repro.analysis.metrics import (
    fps_statistics,
    peak_temperature_rise_c,
    ppdw_series,
    series_statistics,
)
from repro.analysis.compare import (
    percentage_reduction,
    percentage_saving,
    power_saving_pct,
    temperature_reduction_pct,
)
from repro.analysis.tables import format_comparison_table, format_series_table

__all__ = [
    "series_statistics",
    "fps_statistics",
    "ppdw_series",
    "peak_temperature_rise_c",
    "percentage_saving",
    "percentage_reduction",
    "power_saving_pct",
    "temperature_reduction_pct",
    "format_comparison_table",
    "format_series_table",
]
