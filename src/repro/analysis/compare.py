"""Baseline-relative comparison helpers (the percentages the paper reports)."""

from __future__ import annotations

from typing import Optional

from repro.sim.recorder import SummaryStatistics


def percentage_saving(baseline: float, candidate: float) -> float:
    """Percentage by which ``candidate`` is lower than ``baseline``.

    Positive values mean the candidate consumes/produces less.  A zero or
    negative baseline yields 0 to avoid meaningless ratios.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline


def percentage_reduction(baseline: float, candidate: float, floor: float = 0.0) -> float:
    """Reduction of ``candidate`` vs ``baseline`` measured above a floor.

    Used for temperatures, where the meaningful quantity is the rise above
    the ambient ``floor`` rather than the absolute Celsius value.
    """
    baseline_rise = baseline - floor
    if baseline_rise <= 0:
        return 0.0
    return 100.0 * (baseline - candidate) / baseline_rise


def power_saving_pct(baseline: SummaryStatistics, candidate: SummaryStatistics) -> float:
    """Average-power saving of ``candidate`` relative to ``baseline``."""
    return percentage_saving(baseline.average_power_w, candidate.average_power_w)


def temperature_reduction_pct(
    baseline: SummaryStatistics,
    candidate: SummaryStatistics,
    node: str,
    ambient_c: float = 21.0,
    absolute: bool = False,
) -> float:
    """Peak-temperature reduction of ``candidate`` vs ``baseline`` for ``node``.

    With ``absolute=True`` the reduction is expressed as a fraction of the
    absolute baseline temperature (how the paper quotes its percentages);
    otherwise it is measured relative to the rise above ambient, which is the
    physically meaningful quantity.
    """
    base = baseline.peak_temperature_c.get(node)
    cand = candidate.peak_temperature_c.get(node)
    if base is None or cand is None:
        return 0.0
    if absolute:
        return percentage_saving(base, cand)
    return percentage_reduction(base, cand, floor=ambient_c)
