"""Plain-text table rendering for the benchmark harness output.

The benchmarks print the same rows/series the paper's figures show; these
helpers keep that formatting in one place so every benchmark produces
consistent, easily diff-able output.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison_table(
    per_app: Mapping[str, Mapping[str, float]],
    governor_order: Sequence[str],
    value_label: str,
    title: str = "",
) -> str:
    """Render an app x governor matrix (the shape of Figs. 7 and 8).

    Parameters
    ----------
    per_app:
        Mapping of app name to a mapping of governor name to value.  Missing
        (app, governor) combinations render as ``"-"`` (e.g. Int. QoS PM on
        non-game applications).
    governor_order:
        Column order.
    value_label:
        What the numbers are (used in the title line).
    title:
        Optional table title.
    """
    headers = ["app"] + [str(g) for g in governor_order]
    rows: List[List[str]] = []
    for app_name, values in per_app.items():
        row: List[str] = [app_name]
        for governor in governor_order:
            value = values.get(governor)
            row.append("-" if value is None else f"{value:.3f}")
        rows.append(row)
    full_title = f"{title} [{value_label}]" if title else f"[{value_label}]"
    return format_series_table(headers, rows, title=full_title)
