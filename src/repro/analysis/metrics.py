"""Metric helpers shared by the benchmarks and the examples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.ppdw import compute_ppdw
from repro.sim.recorder import Recorder


@dataclass(frozen=True)
class SeriesStatistics:
    """Basic statistics of a numeric series."""

    mean: float
    minimum: float
    maximum: float
    std: float
    count: int


def series_statistics(values: Sequence[float], ddof: int = 0) -> SeriesStatistics:
    """Mean / min / max / standard deviation of a series.

    ``ddof=0`` (default) gives the population standard deviation; ``ddof=1``
    the sample standard deviation, which the scenario-matrix aggregation uses
    across replication seeds.
    """
    if not values:
        raise ValueError("cannot summarise an empty series")
    count = len(values)
    mean = sum(values) / count
    if count > ddof:
        variance = sum((v - mean) ** 2 for v in values) / (count - ddof)
    else:
        variance = 0.0
    return SeriesStatistics(
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        std=math.sqrt(variance),
        count=count,
    )


def fps_statistics(recorder: Recorder) -> Dict[str, float]:
    """FPS statistics of a recorded run, including the delivery ratio."""
    summary = recorder.summary()
    fps_values = recorder.column("fps")
    stats = series_statistics(fps_values)
    return {
        "average_fps": summary.average_fps,
        "fps_p10": summary.fps_p10,
        "fps_min": stats.minimum,
        "fps_max": stats.maximum,
        "fps_std": stats.std,
        "frame_delivery_ratio": summary.frame_delivery_ratio,
        "frames_dropped": float(summary.total_frames_dropped),
    }


def ppdw_series(recorder: Recorder, hot_node: str = "big") -> List[float]:
    """Per-sample PPDW values of a recorded run."""
    return [
        compute_ppdw(
            fps=sample.fps,
            power_w=sample.power_total_w,
            temperature_c=sample.temperatures_c.get(hot_node, recorder.ambient_c),
            ambient_c=recorder.ambient_c,
        )
        for sample in recorder.samples
    ]


def peak_temperature_rise_c(recorder: Recorder, node: str) -> float:
    """Peak temperature of ``node`` above ambient over a recorded run."""
    series = recorder.temperature_series(node)
    if not series:
        raise ValueError("recorder holds no samples")
    return max(series) - recorder.ambient_c
