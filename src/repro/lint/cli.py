"""``repro-lint`` command-line interface.

Subcommands:

``check [paths...]``
    Lint the tree; exit 1 on any non-baselined finding.  ``--format`` picks
    ``text`` (default), ``json`` (stable machine-readable report) or
    ``github`` (workflow annotations that attach to the offending line).
``baseline [paths...]``
    Rewrite the committed baseline file from the current findings.
``explain REPnnn [...]``
    Print a rule's rationale (or ``all`` for the whole pack).

Paths default to the committed ``[tool.repro-lint] paths``; the repo root
(where ``pyproject.toml`` and the baseline live) defaults to the current
directory and is overridable with ``--root``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.lint import baseline as baseline_module
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Finding, lint_paths, resolve_rules
from repro.lint.rules import ALL_RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant linter enforcing the "
            "bit-identity contract (see 'repro-lint explain all')."
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root: config and baseline paths resolve against it",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="pyproject.toml carrying [tool.repro-lint] (default: <root>/pyproject.toml)",
    )
    subparsers = parser.add_subparsers(dest="command")

    check = subparsers.add_parser("check", help="lint the tree")
    check.add_argument("paths", nargs="*", help="files/directories to lint")
    check.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format",
    )
    check.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: the committed [tool.repro-lint] baseline)",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )

    baseline = subparsers.add_parser(
        "baseline", help="rewrite the baseline from current findings"
    )
    baseline.add_argument("paths", nargs="*", help="files/directories to lint")
    baseline.add_argument(
        "--output", default=None, help="baseline file to write (default: committed path)"
    )

    explain = subparsers.add_parser("explain", help="print rule rationale")
    explain.add_argument("rules", nargs="+", help="rule IDs (REPnnn) or 'all'")
    return parser


def _run(args: argparse.Namespace) -> List[Finding]:
    config: LintConfig = args._config
    paths = list(args.paths) or list(config.paths)
    resolved = resolve_rules(ALL_RULES, config.rule_overrides)
    return lint_paths(paths, args.root, resolved)


def _baseline_path(args: argparse.Namespace, override: Optional[str]) -> str:
    config: LintConfig = args._config
    path = override if override is not None else config.baseline
    return path if os.path.isabs(path) else os.path.join(args.root, path)


def _print_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
) -> None:
    for finding in findings:
        print(f"{finding.location()}: {finding.rule_id} {finding.message}")
    if findings:
        print()
    counts = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    summary = ", ".join(f"{rule} x{count}" for rule, count in sorted(counts.items()))
    print(
        f"repro-lint: {len(findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {len(baselined)} baselined" if baselined else "")
    )
    if stale:
        print(
            f"repro-lint: {len(stale)} stale baseline entr"
            + ("y" if len(stale) == 1 else "ies")
            + " no longer match -- tighten the ratchet with 'repro-lint baseline':"
        )
        for entry in stale:
            print(f"  {entry['path']}:{entry['line']}: {entry['rule']}")


def _print_github(findings: Sequence[Finding]) -> None:
    for finding in findings:
        # One annotation per finding, attached to the offending line.
        message = finding.message.replace("\n", " ")
        print(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title=repro-lint {finding.rule_id}::{message}"
        )
    print(f"repro-lint: {len(findings)} finding(s)")


def _print_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Sequence[dict],
) -> None:
    report = {
        "schema_version": 1,
        "findings": [finding.to_dict() for finding in findings],
        "baselined": [finding.to_dict() for finding in baselined],
        "stale_baseline": list(stale),
    }
    print(json.dumps(report, indent=2, sort_keys=True))


def _cmd_check(args: argparse.Namespace) -> int:
    findings = _run(args)
    baselined: List[Finding] = []
    stale: List[dict] = []
    if not args.no_baseline:
        entries = baseline_module.load_baseline(_baseline_path(args, args.baseline))
        findings, baselined, stale = baseline_module.partition_findings(
            findings, entries
        )
    if args.format == "github":
        _print_github(findings)
    elif args.format == "json":
        _print_json(findings, baselined, stale)
    else:
        _print_text(findings, baselined, stale)
    return 1 if findings else 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    findings = _run(args)
    path = _baseline_path(args, args.output)
    baseline_module.write_baseline(path, findings)
    print(f"repro-lint: wrote {len(findings)} entr"
          + ("y" if len(findings) == 1 else "ies")
          + f" to {path}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    requested = list(args.rules)
    if any(rule.lower() == "all" for rule in requested):
        requested = sorted(RULES_BY_ID)
    status = 0
    for index, rule_id in enumerate(requested):
        rule = RULES_BY_ID.get(rule_id.upper())
        if rule is None:
            print(f"repro-lint: unknown rule {rule_id!r}", file=sys.stderr)
            status = 2
            continue
        if index:
            print()
        print(f"{rule.rule_id}: {rule.title}")
        print("-" * (len(rule.rule_id) + len(rule.title) + 2))
        print(rule.rationale)
        print(f"default scope: include={list(rule.default_include)}"
              + (f" exclude={list(rule.default_exclude)}" if rule.default_exclude else ""))
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command != "explain":
        config_path = args.config
        if config_path is None:
            config_path = os.path.join(args.root, "pyproject.toml")
        args._config = load_config(config_path)
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "baseline":
            return _cmd_baseline(args)
        return _cmd_explain(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


def console_main() -> None:
    """Entry point for the ``repro-lint`` console script."""
    sys.exit(main())


if __name__ == "__main__":
    console_main()
