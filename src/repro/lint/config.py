"""Lint configuration: the committed ``[tool.repro-lint]`` policy.

The scope policy that makes the rule pack project-specific -- which rules
watch which directories, which diagnostic sites are allowlisted -- is
committed in ``pyproject.toml`` so it is reviewed like code::

    [tool.repro-lint]
    paths = ["src", "tests", "benchmarks"]

    [tool.repro-lint.REP002]
    include = ["src/"]
    allow_sites = ["src/repro/experiments/runner.py::execute_cell"]

Python 3.11+ parses the file with :mod:`tomllib`.  On 3.9/3.10 (no
``tomllib``, and the container policy forbids new dependencies) a minimal
fallback parser handles the JSON-compatible TOML subset this project's
config actually uses: ``[section]`` headers, ``key = "string" | number |
true/false | [array]`` with arrays allowed to span lines.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 CI only
    tomllib = None

_SECTION_RE = re.compile(r"^\[([^\]]+)\]\s*(?:#.*)?$")
_KEY_RE = re.compile(r"^([A-Za-z0-9_.\-]+)\s*=\s*(.*)$")


@dataclass(frozen=True)
class LintConfig:
    """Resolved ``[tool.repro-lint]`` table."""

    #: Default paths ``check``/``baseline`` scan when none are given.
    paths: Tuple[str, ...] = ("src", "tests", "benchmarks")
    #: Baseline file, relative to the repo root.
    baseline: str = ".repro-lint-baseline.json"
    #: Per-rule override tables (``REPnnn`` -> {include/exclude/options...}).
    rule_overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)


def load_config(pyproject_path: Optional[str]) -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``pyproject_path`` (missing file = defaults)."""
    if pyproject_path is None:
        return LintConfig()
    try:
        with open(pyproject_path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return LintConfig()
    data = _parse_toml(raw.decode("utf-8"))
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return LintConfig()
    rule_overrides = {
        key: dict(value)
        for key, value in table.items()
        if isinstance(value, dict)
    }
    return LintConfig(
        paths=tuple(table.get("paths", LintConfig.paths)),
        baseline=str(table.get("baseline", LintConfig.baseline)),
        rule_overrides=rule_overrides,
    )


def _parse_toml(text: str) -> Dict[str, Any]:
    if tomllib is not None:
        return tomllib.loads(text)
    return _parse_toml_minimal(text)


def _parse_toml_minimal(text: str) -> Dict[str, Any]:
    """Fallback parser for the JSON-compatible TOML subset this repo uses.

    Supports ``[dotted.section]`` headers and ``key = value`` pairs whose
    values are double-quoted strings, numbers, booleans, or (possibly
    multi-line) arrays of those.  Comments and unsupported constructs are
    skipped rather than rejected -- the committed config stays within the
    subset, and ``tomllib`` is authoritative wherever it exists.
    """
    root: Dict[str, Any] = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            current = root
            for part in _split_section_name(section.group(1)):
                current = current.setdefault(part, {})
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key, value_text = pair.group(1).strip().strip('"'), pair.group(2)
        # Accumulate multi-line arrays until brackets balance outside strings.
        while _open_brackets(value_text) > 0 and index < len(lines):
            value_text += "\n" + lines[index]
            index += 1
        value = _parse_value(value_text)
        if value is not _UNPARSED:
            current[key] = value
    return root


def _split_section_name(name: str) -> List[str]:
    # Handles both [tool.repro-lint] and quoted parts like [tool."repro-lint"].
    return [part.strip().strip('"').strip("'") for part in name.split(".")]


_UNPARSED = object()


def _strip_trailing_comment(text: str) -> str:
    out = []
    in_string = False
    for char in text:
        if char == '"':
            in_string = not in_string
        if char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out).strip()


def _open_brackets(text: str) -> int:
    depth = 0
    in_string = False
    for char in text:
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
    return depth


def _parse_value(text: str) -> Any:
    cleaned = _strip_trailing_comment(text)
    if cleaned.startswith("["):
        # TOML arrays in the JSON-compatible subset tolerate trailing commas.
        cleaned = re.sub(r",\s*\]", "]", cleaned)
    try:
        return json.loads(cleaned)
    except ValueError:
        return _UNPARSED
