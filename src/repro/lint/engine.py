"""Visitor framework and per-file driver for the ``repro-lint`` rule pack.

The engine's job is deliberately small and deterministic:

* resolve which rules are *active* for a file (per-rule include/exclude
  scope policy from the committed lint config),
* parse the file once into an :class:`ModuleSource` -- an AST plus the
  derived indexes every rule needs (parent links, import-alias table,
  enclosing-function lookup),
* run each active rule's :meth:`Rule.check` over it,
* apply inline suppressions (``# repro-lint: disable=REPnnn -- <why>``),
  where a suppression **without** a trailing justification is itself
  ignored (the finding survives, annotated), and
* return findings in a stable sort order so output, baselines and CI
  annotations diff cleanly.

File discovery is sorted (rule REP003 applies to the linter too): results
never depend on filesystem enumeration order.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Reserved pseudo-rule for files the engine cannot parse.
PARSE_ERROR_RULE_ID = "REP000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location (repo-relative path)."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment on one line."""

    rule_ids: Tuple[str, ...]
    justified: bool


class ModuleSource:
    """One parsed module plus the derived indexes shared by every rule."""

    def __init__(self, rel_path: str, text: str) -> None:
        self.rel_path = rel_path
        self.text = text
        self.tree = ast.parse(text)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: ``import numpy as np`` -> {"np": "numpy"}; ``import time`` -> {"time": "time"}
        self.import_aliases: Dict[str, str] = {}
        #: ``from time import perf_counter as pc`` -> {"pc": "time.perf_counter"}
        self.from_imports: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds the root name ``os``.
                        root_name = alias.name.split(".")[0]
                        self.import_aliases[root_name] = root_name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self.suppressions = parse_suppressions(text)

    # -- tree navigation ---------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> str:
        """Dotted name chain of the functions enclosing ``node`` ('' at module level)."""
        names = [
            ancestor.name
            for ancestor in self.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        return ".".join(reversed(names))

    # -- call resolution ---------------------------------------------------------

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's target, if import-resolvable.

        ``np.random.randint(...)`` resolves to ``numpy.random.randint``,
        ``perf_counter()`` (after ``from time import perf_counter``) to
        ``time.perf_counter``, ``datetime.now()`` (after ``from datetime
        import datetime``) to ``datetime.datetime.now``.  Calls on local
        objects (``self._rng.random()``) resolve to ``None`` -- they carry
        their own state and are exactly what the rules steer code toward.
        """
        parts: List[str] = []
        node: ast.AST = call.func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        parts.reverse()
        if base in self.import_aliases:
            return ".".join([self.import_aliases[base]] + parts)
        if base in self.from_imports:
            return ".".join([self.from_imports[base]] + parts)
        if not parts:
            # Bare name that is not an import: only meaningful for builtins,
            # which the caller checks by name.
            return None
        return None


def parse_suppressions(text: str) -> Dict[int, Suppression]:
    """Per-line inline suppressions (1-indexed line -> :class:`Suppression`).

    A suppression is *justified* -- and therefore effective -- only when
    the comment carries trailing free text after the rule list, e.g.::

        foo()  # repro-lint: disable=REP002 -- diagnostic only, not recorded

    A bare ``disable=`` with no justification is deliberately ignored so
    hazards cannot be waved through silently.
    """
    suppressions: Dict[int, Suppression] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = match.group(2).strip().lstrip("-—:").strip()
        suppressions[lineno] = Suppression(
            rule_ids=rule_ids, justified=bool(justification)
        )
    return suppressions


class Rule:
    """Base class: one determinism invariant, with scope policy defaults."""

    rule_id: str = ""
    title: str = ""
    #: Multi-paragraph explanation surfaced by ``repro-lint explain``.
    rationale: str = ""
    default_include: Tuple[str, ...] = ("src/",)
    default_exclude: Tuple[str, ...] = ()
    default_options: Mapping[str, Any] = {}

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass(frozen=True)
class ResolvedRule:
    """A rule plus its effective (config-merged) scope and options."""

    rule: Rule
    include: Tuple[str, ...]
    exclude: Tuple[str, ...]
    options: Mapping[str, Any] = field(default_factory=dict)
    enabled: bool = True

    def applies_to(self, rel_path: str) -> bool:
        if not self.enabled:
            return False
        if any(path_matches(rel_path, pattern) for pattern in self.exclude):
            return False
        return any(path_matches(rel_path, pattern) for pattern in self.include)


def resolve_rules(
    rules: Sequence[Rule], overrides: Mapping[str, Mapping[str, Any]] = {}
) -> List[ResolvedRule]:
    """Merge each rule's defaults with the ``[tool.repro-lint.REPnnn]`` tables."""
    resolved = []
    for rule in rules:
        table = dict(overrides.get(rule.rule_id, {}))
        include = tuple(table.pop("include", rule.default_include))
        exclude = tuple(table.pop("exclude", rule.default_exclude))
        enabled = bool(table.pop("enabled", True))
        options = dict(rule.default_options)
        options.update(table)
        resolved.append(
            ResolvedRule(
                rule=rule,
                include=include,
                exclude=exclude,
                options=options,
                enabled=enabled,
            )
        )
    return resolved


def path_matches(rel_path: str, pattern: str) -> bool:
    """Scope-policy path matching over repo-relative POSIX paths.

    ``"src/"`` (trailing slash) and ``"src"`` both match everything under
    the directory; a pattern containing a wildcard is an ``fnmatch`` glob;
    anything else is an exact file match.
    """
    rel_path = rel_path.replace(os.sep, "/")
    pattern = pattern.replace(os.sep, "/")
    if "*" in pattern or "?" in pattern or "[" in pattern:
        return fnmatch.fnmatch(rel_path, pattern)
    if pattern.endswith("/"):
        return rel_path.startswith(pattern)
    return rel_path == pattern or rel_path.startswith(pattern + "/")


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

def iter_python_files(paths: Sequence[str], root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(abs_path, repo_relative_path)`` for every ``.py`` file, sorted.

    Deterministic by construction: directory walks and sibling lists are
    sorted, so the scan order (and therefore all output order) never
    depends on filesystem enumeration order.
    """
    seen = set()
    for path in paths:
        abs_path = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(abs_path):
            candidates = [abs_path]
        elif os.path.isdir(abs_path):
            candidates = []
            for dirpath, dirnames, filenames in sorted(os.walk(abs_path)):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        candidates.append(os.path.join(dirpath, filename))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for candidate in candidates:
            real = os.path.realpath(candidate)
            if real in seen:
                continue
            seen.add(real)
            yield candidate, os.path.relpath(candidate, root).replace(os.sep, "/")


def lint_source(
    text: str, rel_path: str, resolved_rules: Sequence[ResolvedRule]
) -> List[Finding]:
    """Lint one in-memory module under a pretend repo-relative path."""
    active = [entry for entry in resolved_rules if entry.applies_to(rel_path)]
    if not active:
        return []
    try:
        module = ModuleSource(rel_path, text)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_RULE_ID,
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                message=f"could not parse file: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for entry in active:
        for finding in entry.rule.check(module, entry.options):
            findings.append(_apply_suppression(finding, module))
    return sorted(
        [finding for finding in findings if finding is not None],
        key=Finding.sort_key,
    )


def _apply_suppression(
    finding: Finding, module: ModuleSource
) -> Optional[Finding]:
    suppression = module.suppressions.get(finding.line)
    if suppression is None or finding.rule_id not in suppression.rule_ids:
        return finding
    if suppression.justified:
        return None
    return replace(
        finding,
        message=finding.message
        + " [suppression ignored: add a justification, e.g."
        + f" '# repro-lint: disable={finding.rule_id} -- <why this is safe>']",
    )


def lint_paths(
    paths: Sequence[str],
    root: str,
    resolved_rules: Sequence[ResolvedRule],
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in stable sorted order."""
    findings: List[Finding] = []
    for abs_path, rel_path in iter_python_files(paths, root):
        with open(abs_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        findings.extend(lint_source(text, rel_path, resolved_rules))
    return sorted(findings, key=Finding.sort_key)
