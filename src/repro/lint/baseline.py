"""Baseline ratchet: grandfathered findings, committed and reviewable.

The baseline lets the linter land with zero tolerance for *new* hazards
while deliberately accepted legacy findings are recorded in a committed
file.  ``repro-lint check`` subtracts baselined findings; ``repro-lint
baseline`` rewrites the file from the current tree.  The ratchet only
tightens: entries that no longer match any finding are reported as stale
so the file shrinks as hazards are fixed, and the writer is deterministic
(schema-versioned, sorted, stable JSON via the project's atomic-write
seam) so every diff is reviewable.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.persistence import atomic_write_json
from repro.lint.engine import Finding

BASELINE_SCHEMA_VERSION = 1

#: A finding's ratchet identity.  Messages are excluded on purpose: tuning
#: a rule's wording must not silently invalidate the committed baseline.
BaselineKey = Tuple[str, str, int]


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.rule_id, finding.path, finding.line)


def load_baseline(path: str) -> List[Dict]:
    """Entries of a baseline file; a missing file is an empty baseline."""
    if not os.path.isfile(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path!r} has schema version {version!r}; this "
            f"repro-lint expects {BASELINE_SCHEMA_VERSION} -- regenerate it "
            "with 'repro-lint baseline'"
        )
    return list(data.get("entries", []))


def write_baseline(path: str, findings: Sequence[Finding]) -> str:
    """Write a deterministic baseline for ``findings``; returns ``path``.

    Entries are sorted by (path, line, rule) and keys are sorted, so two
    writers over the same tree produce byte-identical files and every
    baseline change reads as a clean diff.
    """
    entries = [
        {
            "rule": finding.rule_id,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding in sorted(set(findings), key=Finding.sort_key)
    ]
    payload = {"schema_version": BASELINE_SCHEMA_VERSION, "entries": entries}
    return atomic_write_json(path, payload, indent=2, sort_keys=True)


def partition_findings(
    findings: Sequence[Finding], entries: Sequence[Dict]
) -> Tuple[List[Finding], List[Finding], List[Dict]]:
    """Split findings against the baseline.

    Returns ``(new, baselined, stale_entries)``: findings not covered by
    the baseline, findings the baseline absorbs, and baseline entries that
    matched nothing (the ratchet's downward pressure -- prune them).
    """
    keys: Set[BaselineKey] = set()
    for entry in entries:
        keys.add((str(entry["rule"]), str(entry["path"]), int(entry["line"])))
    new: List[Finding] = []
    baselined: List[Finding] = []
    used: Set[BaselineKey] = set()
    for finding in findings:
        key = baseline_key(finding)
        if key in keys:
            baselined.append(finding)
            used.add(key)
        else:
            new.append(finding)
    stale = [
        entry
        for entry in entries
        if (str(entry["rule"]), str(entry["path"]), int(entry["line"])) not in used
    ]
    return new, baselined, stale
