"""``python -m repro.lint`` == the ``repro-lint`` console script."""

from repro.lint.cli import console_main

console_main()
