"""``repro-lint``: AST-based determinism & invariant linter.

Every subsystem in this repository (compiled scalar kernel, batched
device-population kernel, sweep shards, federated fleets) stakes its
correctness on one contract: recorded output is **bit-identical** across
scalar/batched, sequential/pool and sharded/unsharded execution paths.
The golden-hash and parity suites enforce that contract *after the fact*;
this package enforces it *at the line that would break it*, by statically
rejecting the hazard patterns that historically flip hashes:

========  ==============================================================
REP001    unseeded randomness (``random`` / ``numpy.random`` global state)
REP002    wall-clock reads in deterministic code
REP003    unsorted filesystem enumeration
REP004    non-atomic JSON persistence (bypassing ``atomic_write_json``)
REP005    lane-crossing NumPy reductions in the batch kernel
REP006    unpicklable callables handed to executor pools
REP007    PYTHONHASHSEED-salted builtin ``hash()`` in deterministic code
========  ==============================================================

Entry points: the ``repro-lint`` console script (:mod:`repro.lint.cli`,
subcommands ``check`` / ``baseline`` / ``explain``), or the library API
(:func:`repro.lint.engine.lint_paths`).  Per-rule file-scope policy lives
in ``[tool.repro-lint]`` of the repository's ``pyproject.toml``; deliberate
exceptions are either suppressed inline with a justified
``# repro-lint: disable=REPnnn -- <why>`` comment or ratcheted in the
committed baseline file (:mod:`repro.lint.baseline`).
"""

from repro.lint.engine import Finding, lint_paths, lint_source
from repro.lint.rules import ALL_RULES, RULES_BY_ID

__all__ = ["Finding", "lint_paths", "lint_source", "ALL_RULES", "RULES_BY_ID"]
