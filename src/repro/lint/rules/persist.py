"""REP004: non-atomic JSON persistence.

Every on-disk store in this project may be shared by several runner
processes (sweep runners sharing ``--artifact-dir``, shard workers, the
federated fleet store).  A bare ``json.dump`` into ``open(path, "w")``
truncates the target first, so an interrupt -- or a concurrent reader --
observes a torn file that later loads raise on.
:func:`repro.core.persistence.atomic_write_json` is the sanctioned seam:
it stages under a PID-suffixed temporary name and publishes with
``os.replace``, so readers see either the complete old document or the
complete new one.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule


class NonAtomicPersistenceRule(Rule):
    rule_id = "REP004"
    title = "non-atomic JSON persistence"
    rationale = (
        "json.dump into a bare open(path, 'w') truncates the file before\n"
        "writing, so an interrupt mid-write (or a concurrent reader in a\n"
        "shared store directory) observes a torn document that later loads\n"
        "raise on.  The write-then-rename seam\n"
        "repro.core.persistence.atomic_write_json guarantees readers see\n"
        "either the complete previous file or the complete new one -- the\n"
        "property the shared artifact/fleet/result stores depend on.\n"
        "\n"
        "Fix: atomic_write_json(path, payload).  The seam itself is the\n"
        "only sanctioned bare writer (allow_in_functions option)."
    )
    default_include = ("src/",)
    default_options = {"allow_in_functions": ("atomic_write_json",)}

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        allow_in = set(options.get("allow_in_functions", ()))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve_call(node) != "json.dump":
                continue
            qualname = module.enclosing_function(node)
            if qualname and qualname.rsplit(".", 1)[-1] in allow_in:
                continue
            yield self.finding(
                module,
                node,
                "non-atomic JSON write: json.dump into a bare file handle "
                "can leave a torn document; route through "
                "repro.core.persistence.atomic_write_json",
            )
