"""REP005: op-order-changing NumPy reductions in the batch kernel.

The batched device-population kernel (:mod:`repro.sim.batch`) promises
per-lane bit-identity with the scalar engine.  That holds only because
every vectorised stage applies the same IEEE-754 operations *in the same
order per lane* as the scalar code.  NumPy reductions (``sum``, ``mean``,
``dot``, ``einsum``, ``@``) are free to reassociate -- pairwise summation,
SIMD blocking, BLAS kernels -- so a reduction over *any* axis (device lanes
or clusters) produces floats the scalar kernel would not, flipping golden
hashes.  The kernel therefore folds across clusters with an explicit
scalar-order loop and keeps the device axis purely element-wise; this rule
pins that discipline.

The scope covers every masked-update code path: the kernel itself (whose
heterogeneous-lane loop masks finished lanes out of each stage) and the
batch recorder (whose per-row device masks gather lanes back apart).  A
masked reduction is just as lane-crossing as an unmasked one -- boolean
indexing selects lanes but the reduction over the survivors still
reassociates -- so masking earns no exemption.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule

_REDUCTION_NAMES = {
    "sum",
    "nansum",
    "mean",
    "nanmean",
    "average",
    "median",
    "std",
    "nanstd",
    "var",
    "nanvar",
    "prod",
    "cumsum",
    "cumprod",
    "dot",
    "vdot",
    "inner",
    "tensordot",
    "matmul",
    "einsum",
    "trace",
}


class LaneCrossingReductionRule(Rule):
    rule_id = "REP005"
    title = "op-order-changing NumPy reduction in the batch kernel"
    rationale = (
        "The batch kernel's contract is per-lane bit-identity with the\n"
        "scalar engine: every vectorised stage applies the same IEEE-754\n"
        "ops in the same order per lane.  NumPy reductions (sum/mean/dot/\n"
        "einsum/@) may reassociate -- pairwise summation, SIMD blocking,\n"
        "BLAS -- so their float results differ from the scalar kernel's\n"
        "left-to-right folds, and differ between NumPy builds.  A reduction\n"
        "over the device axis additionally mixes lanes that must stay\n"
        "independent.\n"
        "\n"
        "Fix: keep array stages element-wise over the device axis, and fold\n"
        "across clusters with an explicit scalar-order loop (see the\n"
        "dynamic_total accumulation in sim/batch.py) or with builtin sum()\n"
        "over Python floats, which folds left-to-right."
    )
    default_include = ("src/repro/sim/batch.py", "src/repro/sim/recorder.py")

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    module,
                    node,
                    "matrix multiply (@) reassociates float ops (BLAS); the "
                    "batch kernel must keep per-lane scalar op order",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name is not None and name.startswith("numpy."):
                attr = name[len("numpy."):]
                if attr in _REDUCTION_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"NumPy reduction {name}() reassociates float ops and "
                        "may cross device lanes; use element-wise ops or an "
                        "explicit scalar-order fold",
                    )
            elif (
                name is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REDUCTION_NAMES
            ):
                yield self.finding(
                    module,
                    node,
                    f"array-method reduction .{node.func.attr}() reassociates "
                    "float ops and may cross device lanes; use element-wise "
                    "ops or an explicit scalar-order fold",
                )
