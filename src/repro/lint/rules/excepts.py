"""REP008: swallowed exceptions in the orchestration layer.

The sweep's fault tolerance depends on every failure surfacing somewhere
classifiable: the retry loop needs the exception to classify it, the
failure report needs the traceback to show it.  A bare or broad ``except``
whose handler neither re-raises nor records a traceback silently converts
a real failure (a bug, a corrupted store, an injected chaos fault) into
wrong control flow -- the exact failure mode a robustness layer exists to
prevent.  Handlers for *specific* exception types are out of scope: they
document what they expect to catch.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping, Optional

from repro.lint.engine import Finding, ModuleSource, Rule

#: Exception names whose handlers catch "anything": failures they swallow
#: include the ones nobody anticipated.
_BROAD_NAMES = {"Exception", "BaseException"}

#: Calls that count as recording the failure for a human or the retry
#: classifier.  ``sys.exc_info`` hands the full exception triple on.
_RECORDING_CALLS = {
    "traceback.format_exc",
    "traceback.print_exc",
    "traceback.format_exception",
    "traceback.print_exception",
    "sys.exc_info",
}


def _exception_name(node: Optional[ast.expr]) -> Optional[str]:
    """The trailing identifier of an exception-type expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches every (non-exiting) exception."""
    if handler.type is None:
        return True  # bare `except:`
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(_exception_name(entry) in _BROAD_NAMES for entry in types)


class SwallowedExceptionRule(Rule):
    rule_id = "REP008"
    title = "broad except clause swallows the failure"
    rationale = (
        "A bare `except:` or `except Exception:` whose body neither\n"
        "re-raises nor records the traceback converts any failure --\n"
        "including ones nobody anticipated -- into silent wrong control\n"
        "flow.  In the orchestration layer every failure must end up\n"
        "classified by the retry loop, recorded in a result's error field,\n"
        "or re-raised; a swallowed exception reaches none of them.\n"
        "\n"
        "Fix: catch the specific exception types the code expects, or keep\n"
        "the broad clause but `raise`, call traceback.format_exc() into an\n"
        "error field, or -- where the fallback path itself re-runs the work\n"
        "and records failures -- suppress the finding on the except line\n"
        "with a justified `# repro-lint: disable=REP008 -- <why>`."
    )
    default_include = ("src/repro/experiments/",)
    default_options: Mapping[str, Any] = {}

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if self._records_failure(module, node):
                continue
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield self.finding(
                module,
                node,
                f"{caught} swallows the failure: the handler neither "
                "re-raises nor records a traceback, so a real error "
                "becomes silent wrong control flow; catch specific types "
                "or record/re-raise",
            )

    @staticmethod
    def _records_failure(
        module: ModuleSource, handler: ast.ExceptHandler
    ) -> bool:
        """Whether the handler body re-raises or records the traceback."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and module.resolve_call(node) in _RECORDING_CALLS
                ):
                    return True
        return False
