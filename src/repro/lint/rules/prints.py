"""REP009: ``print()`` outside the sanctioned user-facing surfaces.

PR 10 made progress lines, counters and timelines flow through the
observability layer (:mod:`repro.obs`): the CLI prints what a
:class:`~repro.obs.progress.ProgressEvent` formats, the trace records
what the CLI printed, and ``repro-sweep report`` replays both.  A stray
``print()`` in library code bypasses all of that -- it cannot be traced,
cannot be silenced by ``--quiet``, corrupts machine-read stdout (the CI
jobs grep the CLI's output contract) and, from a pool worker, interleaves
bytes with the orchestrator's lines.  Library code should attach
information to results, metrics or trace events; only the CLI front-ends
and the chaos/benchmark harnesses own stdout.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule


class PrintCallRule(Rule):
    rule_id = "REP009"
    title = "print() outside the CLI / harness surfaces"
    rationale = (
        "Library code that print()s bypasses the observability layer: the\n"
        "output cannot be traced into trace.jsonl, cannot be silenced by\n"
        "--quiet, corrupts stdout contracts that CI jobs grep, and from a\n"
        "pool worker interleaves with the orchestrator's progress lines.\n"
        "Attach information to results, metrics (repro.obs.metrics) or\n"
        "trace events (repro.obs.trace) instead, and let the CLI decide\n"
        "what reaches the terminal.\n"
        "\n"
        "Fix: move the output to the CLI layer, emit a metric or trace\n"
        "event, or -- for a genuinely user-facing surface -- add the file\n"
        "to the [tool.repro-lint.REP009] exclude list next to cli.py and\n"
        "the chaos harness."
    )
    default_include = ("src/",)
    default_options: Mapping[str, Any] = {}

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "print"):
                continue
            yield self.finding(
                module,
                node,
                "print() in library code bypasses the observability layer "
                "(untraceable, un-silenceable, corrupts stdout contracts); "
                "emit a metric/trace event or print from the CLI layer",
            )
