"""The ``repro-lint`` rule pack: one module per rule family.

=========  =================  ==============================================
module     rules              invariant
=========  =================  ==============================================
random_    REP001, REP007     no process-global / salted entropy sources
wallclock  REP002             no wall-clock in deterministic code
fsorder    REP003             sorted filesystem enumeration
persist    REP004             JSON persistence through ``atomic_write_json``
reduce     REP005             no op-order-changing reductions in the batch
                              kernel
pools      REP006             only picklable callables cross pool boundaries
excepts    REP008             no swallowed exceptions in the orchestration
                              layer
prints     REP009             no ``print()`` outside the CLI / harness
                              surfaces
=========  =================  ==============================================
"""

from repro.lint.rules.excepts import SwallowedExceptionRule
from repro.lint.rules.fsorder import UnsortedEnumerationRule
from repro.lint.rules.persist import NonAtomicPersistenceRule
from repro.lint.rules.pools import UnpicklablePoolCallableRule
from repro.lint.rules.prints import PrintCallRule
from repro.lint.rules.random_ import SaltedHashRule, UnseededRandomnessRule
from repro.lint.rules.reduce import LaneCrossingReductionRule
from repro.lint.rules.wallclock import WallClockRule

#: Registry order is rule-ID order; output order is decided by the engine's
#: stable sort, never by this tuple.
ALL_RULES = (
    UnseededRandomnessRule(),
    WallClockRule(),
    UnsortedEnumerationRule(),
    NonAtomicPersistenceRule(),
    LaneCrossingReductionRule(),
    UnpicklablePoolCallableRule(),
    SaltedHashRule(),
    SwallowedExceptionRule(),
    PrintCallRule(),
)

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
