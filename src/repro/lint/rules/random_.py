"""REP001 / REP007: nondeterministic value sources in deterministic scope.

The simulation's bit-identity contract requires every random draw to come
from an **explicitly seeded, locally owned** generator (``random.Random(seed)``
threaded through constructors, exactly as :mod:`repro.sim.engine` does with
its sensor RNG).  Two hazard families break that:

* module-level RNG state (``random.random()``, ``numpy.random.seed`` /
  ``numpy.random.<draw>``) is shared by the whole process, so any unrelated
  import or library call re-orders the stream, and
* unseeded constructors (``random.Random()``, ``numpy.random.default_rng()``)
  and salted ``hash()`` seeds vary run to run.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule

#: ``random`` attributes that construct an independent generator (fine when
#: seeded) rather than touching the module-global stream.
_STDLIB_CONSTRUCTORS = {"Random"}
#: ``numpy.random`` attributes that construct independent generators/state.
_NUMPY_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


class UnseededRandomnessRule(Rule):
    rule_id = "REP001"
    title = "unseeded or process-global randomness"
    rationale = (
        "Recorded sample streams must be bit-identical across scalar/batched,\n"
        "sequential/pool and sharded/unsharded runs.  Module-level RNG state\n"
        "(random.random(), numpy.random.*) is process-global: any unrelated\n"
        "import, library call or scheduling difference re-orders the stream\n"
        "and silently flips golden hashes.  Unseeded constructors\n"
        "(random.Random(), numpy.random.default_rng()) differ on every run.\n"
        "\n"
        "Fix: construct random.Random(seed) (or numpy.random.default_rng(seed))\n"
        "with a seed derived from repro.core.seeding and thread it through,\n"
        "as the engine does for its sensor RNG."
    )
    default_include = (
        "src/repro/core/",
        "src/repro/sim/",
        "src/repro/soc/",
        "src/repro/governors/",
        "src/repro/workloads/",
    )

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                attr = name[len("numpy.random."):]
                if attr in _NUMPY_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            f"unseeded generator: {name}() without a seed "
                            "draws os entropy and differs on every run; pass "
                            "an explicit seed",
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"process-global NumPy RNG state: {name}() shares one "
                        "stream across the whole process; construct "
                        "numpy.random.default_rng(seed) and thread it through",
                    )
            elif name == "random.SystemRandom" or name.startswith(
                "random.SystemRandom."
            ):
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "reproduced; use a seeded random.Random instead",
                )
            elif name.startswith("random."):
                attr = name[len("random."):]
                if attr in _STDLIB_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "unseeded generator: random.Random() seeds from "
                            "os entropy and differs on every run; pass an "
                            "explicit seed",
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"process-global RNG state: {name}() shares one stream "
                        "across the whole process; construct "
                        "random.Random(seed) and thread it through",
                    )


class SaltedHashRule(Rule):
    rule_id = "REP007"
    title = "PYTHONHASHSEED-salted builtin hash()"
    rationale = (
        "Builtin hash() over str/bytes is salted by PYTHONHASHSEED, so its\n"
        "value differs between processes and between runs.  Any seed, cache\n"
        "key or recorded value derived from it breaks cross-process\n"
        "bit-identity (pool workers vs sequential, shards vs unsharded).\n"
        "\n"
        "Fix: derive stable integers with zlib.crc32(text.encode()),\n"
        "hashlib, or repro.core.seeding.derive_seed."
    )
    default_include = UnseededRandomnessRule.default_include

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is PYTHONHASHSEED-salted and varies "
                    "across processes; derive stable values via zlib.crc32, "
                    "hashlib or repro.core.seeding",
                )
