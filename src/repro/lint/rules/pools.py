"""REP006: unpicklable callables crossing executor-pool boundaries.

``ProcessPoolExecutor.submit``/``map`` pickle the callable by *qualified
name*: lambdas, closures and functions defined inside another function
cannot be pickled and fail only at runtime -- and only on the pool path,
which the sequential fallback (``--max-workers 1``) never exercises.  The
sweep runner's work units are therefore module-level functions
(``execute_cell``, ``train_artifact``, ``train_device_round``); this rule
keeps them that way.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping, Set

from repro.lint.engine import Finding, ModuleSource, Rule

_POOL_METHODS = {
    "submit",
    "map",
    "starmap",
    "apply",
    "apply_async",
    "map_async",
    "starmap_async",
    "imap",
    "imap_unordered",
}


class UnpicklablePoolCallableRule(Rule):
    rule_id = "REP006"
    title = "unpicklable callable passed to an executor pool"
    rationale = (
        "ProcessPoolExecutor.submit/map pickle the callable by qualified\n"
        "name.  Lambdas, closures and functions defined inside another\n"
        "function are unpicklable: the sweep works sequentially, then dies\n"
        "(or silently degrades to the fallback path) the first time the\n"
        "pool is enabled.  Worse, a closure that *did* transfer would carry\n"
        "captured state the cache fingerprint cannot see.\n"
        "\n"
        "Fix: make the work unit a module-level function and pass its\n"
        "arguments explicitly (see execute_cell / train_artifact in\n"
        "experiments/runner.py)."
    )
    default_include = ("src/repro/experiments/",)

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        nested_defs = self._nested_function_names(module)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        module,
                        node,
                        f"lambda passed to .{node.func.attr}(): process pools "
                        "cannot pickle lambdas; use a module-level function",
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    yield self.finding(
                        module,
                        node,
                        f"locally defined function {arg.id!r} passed to "
                        f".{node.func.attr}(): process pools can only pickle "
                        "module-level functions",
                    )

    @staticmethod
    def _nested_function_names(module: ModuleSource) -> Set[str]:
        nested = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
                isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                for ancestor in module.ancestors(node)
            ):
                nested.add(node.name)
        return nested
