"""REP002: wall-clock reads in deterministic code.

Simulated time is the only clock the kernels may observe
(:mod:`repro.sim.clock`); a wall-clock read folded into control flow or a
recorded value makes output depend on host speed and scheduling.  The one
sanctioned use is *diagnostic* timing that is reported next to results but
never folded into them -- the ``elapsed_s`` fields the sweep runner
attaches to cell results.  Those sites are allowlisted by function, not by
file, so a new wall-clock read elsewhere in the same module still fails.
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    rule_id = "REP002"
    title = "wall-clock read in deterministic code"
    rationale = (
        "Simulated results must not depend on how fast the host happens to\n"
        "run.  time.time()/perf_counter()/datetime.now() readings differ on\n"
        "every run; folded into a recorded value, a seed or control flow\n"
        "they break bit-identity between sequential and pooled execution\n"
        "and between machines.  Simulation code must consume the simulated\n"
        "clock (repro.sim.clock) instead.\n"
        "\n"
        "Diagnostic timing (the runner's elapsed_s fields, which are\n"
        "reported but never recorded into sample streams) is allowlisted\n"
        "per enclosing function via the `allow_sites` option:\n"
        "  allow_sites = [\"<repo-relative-path>::<function>\"]"
    )
    default_include = ("src/",)
    default_options = {
        "allow_sites": (
            "src/repro/experiments/runner.py::execute_cell",
            "src/repro/experiments/runner.py::execute_cells_batched",
        ),
    }

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        allow_sites = set(options.get("allow_sites", ()))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name not in _WALL_CLOCK_CALLS:
                continue
            qualname = module.enclosing_function(node)
            site = f"{module.rel_path}::{qualname}"
            innermost = (
                f"{module.rel_path}::{qualname.rsplit('.', 1)[-1]}"
                if qualname
                else site
            )
            if site in allow_sites or innermost in allow_sites:
                continue
            yield self.finding(
                module,
                node,
                f"wall-clock read: {name}() makes output depend on host "
                "timing; use the simulated clock, or allowlist this "
                "diagnostic site in [tool.repro-lint.REP002] allow_sites",
            )
