"""REP003: unsorted filesystem enumeration.

``os.listdir`` / ``glob`` / ``Path.iterdir`` return entries in filesystem
order, which differs between filesystems, mount options and even between
runs on the same machine.  Any load order, merge order or "pick the first
match" derived from an unsorted scan makes behaviour depend on it -- the
exact bug class that made :meth:`QTableStore.load` insertion order (and
every downstream dict-iteration-order-dependent serialisation) depend on
the filesystem.

A scan is sanctioned when its result flows through an order-insensitive
consumer the rule can see locally: ``sorted(...)`` (the canonical fix) or
a cardinality/membership fold (``len``/``set``/``min``/``max``/...).
"""

from __future__ import annotations

import ast
from typing import Any, Iterable, Mapping

from repro.lint.engine import Finding, ModuleSource, Rule

_LISTING_CALLS = {
    "os.listdir",
    "os.walk",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}
#: Method names that enumerate a directory on path-like receivers.
_LISTING_METHODS = {"iterdir", "glob", "rglob"}
#: Builtins whose result cannot depend on the iteration order of their
#: argument (sorted output, cardinality, extrema, membership sets).
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "len",
    "set",
    "frozenset",
    "min",
    "max",
    "sum",
    "any",
    "all",
}


class UnsortedEnumerationRule(Rule):
    rule_id = "REP003"
    title = "unsorted filesystem enumeration"
    rationale = (
        "os.listdir/glob/Path.iterdir yield entries in filesystem order,\n"
        "which is not stable across filesystems or runs.  Unsorted scans\n"
        "leak that order into load order, dict insertion order, merge order\n"
        "and 'first match' choices, breaking bit-identity between machines\n"
        "(the QTableStore.load bug class).\n"
        "\n"
        "Fix: wrap the scan in sorted(...), or route through\n"
        "repro.core.persistence.list_entry_paths for store directories.\n"
        "Scans consumed by order-insensitive folds (len/set/min/max/...)\n"
        "are recognised and allowed."
    )
    default_include = ("src/", "tests/", "benchmarks/")

    def check(
        self, module: ModuleSource, options: Mapping[str, Any]
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call(node)
            if name in _LISTING_CALLS:
                label = name
            elif (
                name is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
            ):
                label = f"<path>.{node.func.attr}"
            else:
                continue
            if self._is_order_sanctioned(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"unsorted filesystem enumeration: {label}() yields entries "
                "in filesystem order; wrap in sorted(...) so behaviour never "
                "depends on enumeration order",
            )

    @staticmethod
    def _is_order_sanctioned(module: ModuleSource, node: ast.Call) -> bool:
        for ancestor in module.ancestors(node):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in _ORDER_INSENSITIVE_CONSUMERS
            ):
                return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # A scan inside a nested function/lambda body is not itself
                # consumed by whatever call that function is passed to.
                break
        return False
