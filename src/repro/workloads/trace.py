"""Workload trace recording and replay.

Comparing two governors fairly requires them to face the *same* demand: the
same frames, the same background work, arriving at the same times.  Because
the application models are stochastic, the reproduction records the demand of
a session once into a :class:`WorkloadTrace` and replays it against every
governor, which is the simulator equivalent of the paper's "similar session"
methodology (Figs. 1 and 3) and of running each app with the same usage
script (Figs. 7 and 8).

Traces are plain data (lists of :class:`~repro.workloads.app.TickWorkload`)
and can be serialised to/from JSON for archival.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.graphics.pipeline import FrameSpec
from repro.workloads.app import AppModel, TickWorkload


@dataclass
class WorkloadTrace:
    """A recorded sequence of per-tick demands."""

    dt_s: float
    ticks: List[TickWorkload] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise ValueError("dt_s must be positive")

    def __len__(self) -> int:
        return len(self.ticks)

    def __iter__(self) -> Iterator[TickWorkload]:
        return iter(self.ticks)

    def __getitem__(self, index: int) -> TickWorkload:
        return self.ticks[index]

    @property
    def duration_s(self) -> float:
        """Total duration covered by the trace."""
        return len(self.ticks) * self.dt_s

    @property
    def total_frames_demanded(self) -> int:
        """Total number of frames demanded across the trace."""
        return sum(tick.frame_count for tick in self.ticks)

    def app_names(self) -> List[str]:
        """Distinct application names appearing in the trace, in order."""
        seen: List[str] = []
        for tick in self.ticks:
            if tick.app_name not in seen:
                seen.append(tick.app_name)
        return seen

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict:
        """Convert the trace to a JSON-serialisable dictionary."""
        return {
            "dt_s": self.dt_s,
            "ticks": [
                {
                    "time_s": tick.time_s,
                    "app_name": tick.app_name,
                    "phase_name": tick.phase_name,
                    "interaction_activity": tick.interaction_activity,
                    "frames": [
                        [frame.cpu_work_mwu, frame.gpu_work_mwu] for frame in tick.frames
                    ],
                    "background_work_mwu": dict(tick.background_work_mwu),
                }
                for tick in self.ticks
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        ticks = [
            TickWorkload(
                time_s=entry["time_s"],
                app_name=entry["app_name"],
                phase_name=entry["phase_name"],
                frames=[FrameSpec(cpu, gpu) for cpu, gpu in entry["frames"]],
                background_work_mwu=dict(entry["background_work_mwu"]),
                interaction_activity=entry["interaction_activity"],
            )
            for entry in data["ticks"]
        ]
        return cls(dt_s=data["dt_s"], ticks=ticks)

    def to_json(self) -> str:
        """Serialise the trace to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Deserialise a trace from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class TraceRecorder:
    """Records application demand into a :class:`WorkloadTrace`."""

    def __init__(self, dt_s: float) -> None:
        self.trace = WorkloadTrace(dt_s=dt_s)

    def record(self, tick: TickWorkload) -> None:
        """Append one tick of demand."""
        self.trace.ticks.append(tick)

    @classmethod
    def record_app(
        cls, app: AppModel, duration_s: float, dt_s: float
    ) -> WorkloadTrace:
        """Run ``app`` open-loop for ``duration_s`` and return its demand trace."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        recorder = cls(dt_s=dt_s)
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            recorder.record(app.tick(dt_s))
        return recorder.trace

    @classmethod
    def record_segments(
        cls,
        segments: Sequence,
        dt_s: float,
        seed: Optional[int] = None,
    ) -> WorkloadTrace:
        """Record a multi-segment session (see :mod:`repro.workloads.session`).

        ``segments`` is a sequence of objects with ``app_name`` and
        ``duration_s`` attributes (e.g. :class:`SessionSegment`).
        """
        from repro.workloads.apps import make_app

        recorder = cls(dt_s=dt_s)
        time_offset = 0.0
        for i, segment in enumerate(segments):
            app_seed = None if seed is None else seed + i * 7919
            app = make_app(segment.app_name, seed=app_seed)
            steps = int(round(segment.duration_s / dt_s))
            for _ in range(steps):
                tick = app.tick(dt_s)
                recorder.record(
                    TickWorkload(
                        time_s=time_offset + tick.time_s,
                        app_name=tick.app_name,
                        phase_name=tick.phase_name,
                        frames=tick.frames,
                        background_work_mwu=tick.background_work_mwu,
                        interaction_activity=tick.interaction_activity,
                    )
                )
            time_offset += segment.duration_s
        return recorder.trace


class TracePlayer:
    """Replays a :class:`WorkloadTrace` with the same interface as an app model."""

    def __init__(self, trace: WorkloadTrace, loop: bool = False) -> None:
        if len(trace) == 0:
            raise ValueError("cannot replay an empty trace")
        self.trace = trace
        self.loop = loop
        self._index = 0
        # Hot-path caches: the trace is immutable during playback.
        self._ticks = trace.ticks
        self._dt_s = trace.dt_s

    @property
    def name(self) -> str:
        """Name of the (first) application in the trace."""
        return self.trace.ticks[0].app_name

    @property
    def exhausted(self) -> bool:
        """Whether the trace has been fully replayed (never true when looping)."""
        return not self.loop and self._index >= len(self.trace)

    def reset(self) -> None:
        """Restart playback from the beginning."""
        self._index = 0

    def tick(self, dt_s: float) -> TickWorkload:
        """Return the next tick of recorded demand.

        ``dt_s`` must match the trace's tick length; passing anything else is
        an error because the demand was discretised at recording time.
        """
        if abs(dt_s - self._dt_s) > 1e-9:
            raise ValueError(
                f"trace was recorded at dt={self._dt_s}s, cannot replay at dt={dt_s}s"
            )
        ticks = self._ticks
        index = self._index
        if index >= len(ticks):
            if not self.loop:
                # Replay the final tick's shape with no demand once exhausted.
                last = ticks[-1]
                return TickWorkload(
                    time_s=last.time_s + self._dt_s,
                    app_name=last.app_name,
                    phase_name="exhausted",
                    frames=[],
                    background_work_mwu={},
                    interaction_activity=0.0,
                )
            index = 0
        tick = ticks[index]
        self._index = index + 1
        return tick
