"""User interaction model.

The central observation of the paper is that the *user* -- not the
application -- determines the frame-rate requirement: a feed only needs new
frames while the finger scrolls it, a music app needs essentially none while
the phone lies on the desk, and a game needs a steady stream during combat.

:class:`InteractionGenerator` produces an *activity* signal in ``[0, 1]``
that interaction-driven phases multiply into their frame demand.  The signal
is a two-state (engaged / paused) renewal process with smoothing: during an
engaged burst the user scrolls or taps and activity rises towards the
profile's ``engaged_level``; between bursts it decays towards
``paused_level``.  Burst and pause durations are exponential with
profile-specific means, which reproduces the bursty FPS traces in Fig. 1 of
the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class InteractionProfile:
    """How intensely a user interacts while an app (or phase) is in use.

    Attributes
    ----------
    engaged_level:
        Activity level reached during an interaction burst (0..1).
    paused_level:
        Activity level between bursts (0..1).
    burst_mean_s:
        Mean duration of an interaction burst (finger down / scrolling).
    pause_mean_s:
        Mean duration of a pause between bursts (reading, thinking).
    smoothing_time_s:
        First-order smoothing constant for the activity signal, modelling
        fling animations that keep producing frames briefly after the finger
        lifts.
    """

    engaged_level: float = 1.0
    paused_level: float = 0.05
    burst_mean_s: float = 2.0
    pause_mean_s: float = 3.0
    smoothing_time_s: float = 0.4

    def __post_init__(self) -> None:
        for value, name in (
            (self.engaged_level, "engaged_level"),
            (self.paused_level, "paused_level"),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.paused_level > self.engaged_level:
            raise ValueError("paused_level must not exceed engaged_level")
        if self.burst_mean_s <= 0 or self.pause_mean_s <= 0:
            raise ValueError("burst and pause means must be positive")
        if self.smoothing_time_s < 0:
            raise ValueError("smoothing_time_s must be non-negative")

    def scaled(self, intensity: float) -> "InteractionProfile":
        """Deterministic intensity transform of this profile (opt-in).

        ``intensity`` scales how heavily the user leans on the device:
        activity levels are multiplied by it (clamped to [0, 1]), bursts
        lengthen and pauses shorten proportionally.  ``scaled(1.0)`` returns
        ``self`` unchanged, so defaults -- and every golden hash recorded
        against them -- are unaffected; heterogeneous fleets derive per-device
        profiles from one base via their
        :attr:`~repro.core.federated.FleetSpec.device_intensities`.
        """
        if not intensity > 0:
            raise ValueError("intensity must be positive")
        if intensity == 1.0:
            return self
        engaged = min(1.0, self.engaged_level * intensity)
        return InteractionProfile(
            engaged_level=engaged,
            paused_level=min(engaged, self.paused_level * intensity),
            burst_mean_s=self.burst_mean_s * intensity,
            pause_mean_s=self.pause_mean_s / intensity,
            smoothing_time_s=self.smoothing_time_s,
        )


#: A reasonable default: short scroll bursts separated by reading pauses.
DEFAULT_PROFILE = InteractionProfile()

#: Continuous engagement (games): the user never stops providing input.
CONTINUOUS_PROFILE = InteractionProfile(
    engaged_level=1.0,
    paused_level=0.85,
    burst_mean_s=20.0,
    pause_mean_s=2.0,
    smoothing_time_s=0.2,
)

#: Passive consumption (video): occasional taps, content drives itself.
PASSIVE_PROFILE = InteractionProfile(
    engaged_level=0.6,
    paused_level=0.02,
    burst_mean_s=1.0,
    pause_mean_s=20.0,
    smoothing_time_s=0.5,
)


class InteractionGenerator:
    """Generates the activity signal for interaction-driven frame demand."""

    def __init__(
        self,
        profile: InteractionProfile = DEFAULT_PROFILE,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.profile = profile
        self._rng = rng if rng is not None else random.Random(0)
        self._engaged = True
        self._state_time_left_s = self._sample_state_duration()
        self._activity = profile.paused_level

    def _sample_state_duration(self) -> float:
        mean = self.profile.burst_mean_s if self._engaged else self.profile.pause_mean_s
        return self._rng.expovariate(1.0 / mean)

    @property
    def engaged(self) -> bool:
        """Whether the user is currently in an interaction burst."""
        return self._engaged

    @property
    def activity(self) -> float:
        """Current smoothed activity level in [0, 1]."""
        return self._activity

    def set_profile(self, profile: InteractionProfile) -> None:
        """Switch to a new interaction profile (e.g. when the phase changes)."""
        self.profile = profile
        self._state_time_left_s = min(self._state_time_left_s, self._sample_state_duration())

    def step(self, dt_s: float) -> float:
        """Advance the interaction process by ``dt_s`` and return the activity."""
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        remaining = dt_s
        while remaining > 1e-12:
            advance = min(remaining, self._state_time_left_s)
            target = (
                self.profile.engaged_level if self._engaged else self.profile.paused_level
            )
            tau = self.profile.smoothing_time_s
            if tau <= 1e-9:
                self._activity = target
            else:
                # First-order low-pass towards the target level.
                alpha = min(1.0, advance / tau)
                self._activity += alpha * (target - self._activity)
            self._state_time_left_s -= advance
            remaining -= advance
            if self._state_time_left_s <= 1e-12:
                self._engaged = not self._engaged
                self._state_time_left_s = self._sample_state_duration()
        return self._activity

    def reset(self) -> None:
        """Restart the process in the engaged state with fresh durations."""
        self._engaged = True
        self._state_time_left_s = self._sample_state_duration()
        self._activity = self.profile.paused_level
