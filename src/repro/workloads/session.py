"""Usage-session generation following the statistics quoted in the paper.

The introduction of the paper cites Deloitte / RescueTime market research: an
average user picks up the phone 52 times per workday, 70 % of the sessions
last under 2 minutes, 25 % between 2 and 10 minutes and 5 % longer than
10 minutes, for a total of about 4 h 16 min of daily usage.  The evaluation
then uses sessions of 1.5 to 5 minutes per application (5 minutes for games).

:class:`UsageStatistics` captures those numbers, :class:`SessionSegment` is
one (app, duration) block and :class:`SessionGenerator` samples single- and
multi-app sessions from them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workloads.apps import APP_LIBRARY, GAME_APPS


@dataclass(frozen=True)
class UsageStatistics:
    """Session-length statistics from the market research cited in the paper.

    Attributes
    ----------
    short_fraction / medium_fraction / long_fraction:
        Probability that a session is shorter than 2 minutes, between 2 and
        10 minutes, or longer than 10 minutes.
    short_range_s / medium_range_s / long_range_s:
        Uniform sampling ranges (seconds) for each class.
    pickups_per_day:
        Average number of phone pick-ups during a workday.
    daily_usage_s:
        Average total daily usage (4 h 16 min in the cited study).
    """

    short_fraction: float = 0.70
    medium_fraction: float = 0.25
    long_fraction: float = 0.05
    short_range_s: Tuple[float, float] = (20.0, 120.0)
    medium_range_s: Tuple[float, float] = (120.0, 600.0)
    long_range_s: Tuple[float, float] = (600.0, 1800.0)
    pickups_per_day: int = 52
    daily_usage_s: float = 4 * 3600 + 16 * 60

    def __post_init__(self) -> None:
        total = self.short_fraction + self.medium_fraction + self.long_fraction
        if abs(total - 1.0) > 1e-6:
            raise ValueError("session class fractions must sum to 1")
        for lo, hi in (self.short_range_s, self.medium_range_s, self.long_range_s):
            if lo <= 0 or hi < lo:
                raise ValueError("invalid session duration range")

    def sample_session_duration_s(self, rng: random.Random) -> float:
        """Sample one session duration according to the class fractions."""
        r = rng.random()
        if r < self.short_fraction:
            lo, hi = self.short_range_s
        elif r < self.short_fraction + self.medium_fraction:
            lo, hi = self.medium_range_s
        else:
            lo, hi = self.long_range_s
        return rng.uniform(lo, hi)


@dataclass(frozen=True)
class SessionSegment:
    """One application block inside a usage session."""

    app_name: str
    duration_s: float

    def __post_init__(self) -> None:
        if self.app_name not in APP_LIBRARY:
            raise ValueError(f"unknown app {self.app_name!r}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")


@dataclass(frozen=True)
class Session:
    """A sequence of application segments used by the experiment runners."""

    segments: Tuple[SessionSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a session needs at least one segment")

    @property
    def total_duration_s(self) -> float:
        """Total duration of the session in seconds."""
        return sum(segment.duration_s for segment in self.segments)

    @property
    def app_names(self) -> List[str]:
        """Application names in order of use."""
        return [segment.app_name for segment in self.segments]


#: The mixed session used for Fig. 1 and Fig. 3 of the paper: home screen,
#: then Facebook, then Spotify, roughly 3.5 minutes total.
FIGURE1_SESSION = Session(
    segments=(
        SessionSegment("home", 30.0),
        SessionSegment("facebook", 90.0),
        SessionSegment("spotify", 90.0),
    )
)


#: Sessions referred to by name on the apps/sessions axis of a scenario
#: matrix (see :mod:`repro.experiments.matrix`).
NAMED_SESSIONS: Dict[str, Session] = {
    "fig1": FIGURE1_SESSION,
}


def session_matrix(
    app_names: Sequence[str],
    duration_s: float = 90.0,
    game_duration_s: Optional[float] = None,
) -> Dict[str, Session]:
    """One fixed-duration single-app :class:`Session` per application.

    This is the helper that expands the apps axis of a scenario matrix into
    pre-registered sessions: every cell that shares an app faces a session of
    identical length, so replications differ only in their seed.  Games get
    ``game_duration_s`` (defaulting to ``duration_s``), mirroring the paper's
    longer gaming sessions.
    """
    if not app_names:
        raise ValueError("app_names must not be empty")
    if len(set(app_names)) != len(app_names):
        raise ValueError("app_names must be unique")
    game_duration_s = game_duration_s if game_duration_s is not None else duration_s
    return {
        name: Session(
            segments=(
                SessionSegment(
                    name, game_duration_s if name in GAME_APPS else duration_s
                ),
            )
        )
        for name in app_names
    }


class SessionGenerator:
    """Samples usage sessions from the paper's statistics."""

    def __init__(
        self,
        statistics: Optional[UsageStatistics] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.statistics = statistics or UsageStatistics()
        self._rng = random.Random(seed)

    def single_app_session(
        self, app_name: str, duration_s: Optional[float] = None
    ) -> Session:
        """A session that uses one app, with the paper's evaluation durations.

        Games run for 5 minutes; other apps run between 1.5 and 3 minutes,
        exactly as described in the experimental setup of Section V.
        """
        if duration_s is None:
            if app_name in GAME_APPS:
                duration_s = 300.0
            else:
                duration_s = self._rng.uniform(90.0, 180.0)
        return Session(segments=(SessionSegment(app_name, duration_s),))

    def mixed_session(
        self,
        app_names: Optional[Sequence[str]] = None,
        total_duration_s: Optional[float] = None,
    ) -> Session:
        """A multi-app session splitting a sampled duration across apps."""
        if app_names is None:
            population = list(APP_LIBRARY)
            count = self._rng.randint(2, 4)
            app_names = self._rng.sample(population, count)
        if total_duration_s is None:
            total_duration_s = self.statistics.sample_session_duration_s(self._rng)
        weights = [self._rng.uniform(0.5, 1.5) for _ in app_names]
        total_weight = sum(weights)
        segments = tuple(
            SessionSegment(name, max(10.0, total_duration_s * w / total_weight))
            for name, w in zip(app_names, weights)
        )
        return Session(segments=segments)

    def day_of_sessions(self, count: Optional[int] = None) -> List[Session]:
        """Sample a workday worth of sessions (defaults to 52 pick-ups)."""
        if count is None:
            count = self.statistics.pickups_per_day
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.mixed_session() for _ in range(count)]
