"""Workload substrate: applications, user interaction and usage sessions.

The paper's experiments run popular Google Play applications (Facebook,
Spotify, Chrome, Lineage 2 Revolution, PubG Mobile, YouTube) driven by a real
user whose interaction pattern makes the frame-rate demand stochastic.  This
package replaces both with parameterised models:

* :mod:`repro.workloads.phases` -- the phase machine vocabulary (an app is a
  set of phases such as *splash*, *scroll*, *playback*, *combat*),
* :mod:`repro.workloads.interaction` -- the user: a stochastic process that
  modulates how intensely interaction-driven phases demand frames,
* :mod:`repro.workloads.app` / :mod:`repro.workloads.apps` -- application
  models, including the six paper applications and the home screen,
* :mod:`repro.workloads.session` -- session generation following the usage
  statistics quoted in the paper's introduction, and
* :mod:`repro.workloads.trace` -- record / replay of workload traces so that
  different governors can be compared on identical demand.
"""

from repro.workloads.phases import Phase, PhaseTransition
from repro.workloads.app import AppModel, TickWorkload
from repro.workloads.apps import (
    APP_LIBRARY,
    chrome_app,
    facebook_app,
    home_screen_app,
    lineage_app,
    make_app,
    pubg_app,
    spotify_app,
    youtube_app,
)
from repro.workloads.interaction import InteractionGenerator, InteractionProfile
from repro.workloads.session import (
    FIGURE1_SESSION,
    NAMED_SESSIONS,
    Session,
    SessionGenerator,
    SessionSegment,
    UsageStatistics,
    session_matrix,
)
from repro.workloads.trace import TraceRecorder, WorkloadTrace

__all__ = [
    "Phase",
    "PhaseTransition",
    "AppModel",
    "TickWorkload",
    "APP_LIBRARY",
    "make_app",
    "home_screen_app",
    "facebook_app",
    "spotify_app",
    "chrome_app",
    "lineage_app",
    "pubg_app",
    "youtube_app",
    "InteractionGenerator",
    "InteractionProfile",
    "Session",
    "SessionGenerator",
    "SessionSegment",
    "UsageStatistics",
    "session_matrix",
    "NAMED_SESSIONS",
    "FIGURE1_SESSION",
    "TraceRecorder",
    "WorkloadTrace",
]
