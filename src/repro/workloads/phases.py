"""Phase vocabulary for application models.

Every mobile application is, in the paper's words, "a dynamic application
consisting of periodic, aperiodic and sporadic tasks" whose load varies with
user interaction.  The reproduction captures that with a phase machine: an
application is a set of :class:`Phase` objects (splash screen, feed scroll,
music playback, 3D combat, ...) plus transition probabilities.  Each phase
specifies

* how many frames per second the app *wants* to produce while in the phase,
* how much CPU/GPU work each of those frames costs,
* how much non-frame background work runs (audio decode, network, loading),
* how long the phase lasts, and
* whether the frame demand is modulated by user interaction (a feed scroll
  only produces frames while the finger moves; a video decodes frames
  regardless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class PhaseTransition:
    """Transition probabilities out of a phase.

    Attributes
    ----------
    probabilities:
        Mapping of destination phase name to probability.  Probabilities are
        normalised at lookup time, so they only need to be relative weights.
    """

    probabilities: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.probabilities:
            raise ValueError("a transition needs at least one destination")
        if any(p < 0 for p in self.probabilities.values()):
            raise ValueError("transition weights must be non-negative")
        if sum(self.probabilities.values()) <= 0:
            raise ValueError("at least one transition weight must be positive")

    def normalised(self) -> Dict[str, float]:
        """Return destination probabilities normalised to sum to one."""
        total = sum(self.probabilities.values())
        return {name: weight / total for name, weight in self.probabilities.items()}

    def sample(self, rng) -> str:
        """Sample a destination phase name using ``rng`` (random.Random)."""
        items = list(self.normalised().items())
        r = rng.random()
        acc = 0.0
        for name, prob in items:
            acc += prob
            if r <= acc:
                return name
        return items[-1][0]


@dataclass(frozen=True)
class Phase:
    """One phase of an application's behaviour.

    Attributes
    ----------
    name:
        Phase identifier, unique within an application.
    frame_rate_hz:
        Frame demand rate while the phase is fully active.  The effective
        demand is this value scaled by the interaction activity when
        ``interaction_driven`` is true.
    cpu_work_per_frame_mwu / gpu_work_per_frame_mwu:
        Mean per-frame work for the CPU and GPU render stages.
    work_cv:
        Coefficient of variation of per-frame work (log-normal-ish spread).
    background_big_mwu_per_s / background_little_mwu_per_s /
    background_gpu_mwu_per_s:
        Mean non-frame work rates placed on the big CPU cluster, the LITTLE
        CPU cluster and the GPU respectively.
    background_burstiness:
        0 produces steady background work; values towards 1 concentrate the
        same average work into bursts (which is what makes utilisation-driven
        governors ramp up).
    dwell_mean_s / dwell_min_s / dwell_max_s:
        Duration of one visit to the phase (exponential-ish, clamped).
    interaction_driven:
        Whether frame demand follows the user's interaction activity.
    transition:
        Outgoing transition weights; ``None`` makes the phase absorbing.
    """

    name: str
    frame_rate_hz: float
    cpu_work_per_frame_mwu: float
    gpu_work_per_frame_mwu: float
    work_cv: float = 0.2
    background_big_mwu_per_s: float = 0.0
    background_little_mwu_per_s: float = 0.0
    background_gpu_mwu_per_s: float = 0.0
    background_burstiness: float = 0.0
    dwell_mean_s: float = 10.0
    dwell_min_s: float = 2.0
    dwell_max_s: float = 60.0
    interaction_driven: bool = True
    transition: Optional[PhaseTransition] = None

    def __post_init__(self) -> None:
        if self.frame_rate_hz < 0:
            raise ValueError("frame_rate_hz must be non-negative")
        if self.cpu_work_per_frame_mwu < 0 or self.gpu_work_per_frame_mwu < 0:
            raise ValueError("per-frame work must be non-negative")
        if self.work_cv < 0:
            raise ValueError("work_cv must be non-negative")
        if min(
            self.background_big_mwu_per_s,
            self.background_little_mwu_per_s,
            self.background_gpu_mwu_per_s,
        ) < 0:
            raise ValueError("background work rates must be non-negative")
        if not 0.0 <= self.background_burstiness <= 1.0:
            raise ValueError("background_burstiness must be in [0, 1]")
        if self.dwell_mean_s <= 0 or self.dwell_min_s < 0 or self.dwell_max_s <= 0:
            raise ValueError("dwell times must be positive")
        if self.dwell_min_s > self.dwell_max_s:
            raise ValueError("dwell_min_s must not exceed dwell_max_s")

    def sample_dwell_s(self, rng) -> float:
        """Sample how long one visit to this phase lasts."""
        value = rng.expovariate(1.0 / self.dwell_mean_s)
        return min(self.dwell_max_s, max(self.dwell_min_s, value))

    def sample_next_phase(self, rng) -> Optional[str]:
        """Sample the next phase name, or ``None`` if the phase is absorbing."""
        if self.transition is None:
            return None
        return self.transition.sample(rng)


def validate_phase_graph(phases: Mapping[str, Phase]) -> None:
    """Check that every transition destination exists in ``phases``.

    Raises
    ------
    ValueError
        If a transition points at an unknown phase name.
    """
    for phase in phases.values():
        if phase.transition is None:
            continue
        for destination in phase.transition.probabilities:
            if destination not in phases:
                raise ValueError(
                    f"phase {phase.name!r} transitions to unknown phase {destination!r}"
                )
