"""The concrete application models used in the paper's evaluation.

Section V of the paper evaluates six Google Play applications -- Facebook,
Spotify, Chrome ("Web Browser"), Lineage 2 Revolution, PubG Mobile and
YouTube -- plus the home screen used in the motivating session of Fig. 1.
The real binaries obviously cannot ship with the reproduction, so each app is
modelled as a phase machine whose frame demand and CPU/GPU work reproduce the
qualitative behaviour the paper relies on:

* social / browsing apps (Facebook, Chrome) demand frames in interaction
  bursts (scrolling) and are mostly CPU-stage bound,
* Spotify spends most of its time on a static now-playing screen with
  near-zero frame demand but non-trivial bursty background CPU work (audio
  decode, network), which is exactly the "high frequency, near-zero FPS"
  waste highlighted in Fig. 1,
* games (Lineage, PubG) demand a steady high frame rate and are GPU-stage
  bound, with a loading phase whose FPS is near zero despite heavy CPU load,
* YouTube demands a steady 30 FPS driven by the content, not the user.

Work values are expressed in mega work units (see
:mod:`repro.graphics.pipeline`) and calibrated against the simulated Exynos
9810 capacities so that light apps hit 60 FPS well below the top OPPs while
the games need the upper half of the GPU table for their target frame rate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.workloads.app import AppModel
from repro.workloads.interaction import (
    CONTINUOUS_PROFILE,
    DEFAULT_PROFILE,
    PASSIVE_PROFILE,
    InteractionProfile,
)
from repro.workloads.phases import Phase, PhaseTransition


def home_screen_app(seed: Optional[int] = None) -> AppModel:
    """Launcher / home screen: mostly idle, occasional swipes."""
    phases = {
        "idle": Phase(
            name="idle",
            frame_rate_hz=4.0,
            cpu_work_per_frame_mwu=4.0,
            gpu_work_per_frame_mwu=10.0,
            background_little_mwu_per_s=60.0,
            dwell_mean_s=6.0,
            dwell_min_s=2.0,
            dwell_max_s=20.0,
            interaction_driven=False,
            transition=PhaseTransition({"swipe": 0.7, "idle": 0.3}),
        ),
        "swipe": Phase(
            name="swipe",
            frame_rate_hz=60.0,
            cpu_work_per_frame_mwu=30.0,
            gpu_work_per_frame_mwu=38.0,
            background_little_mwu_per_s=120.0,
            dwell_mean_s=3.0,
            dwell_min_s=1.0,
            dwell_max_s=8.0,
            interaction_driven=True,
            transition=PhaseTransition({"idle": 1.0}),
        ),
    }
    return AppModel(
        name="home",
        phases=phases,
        initial_phase="idle",
        interaction_profile=InteractionProfile(
            engaged_level=0.9, paused_level=0.05, burst_mean_s=1.5, pause_mean_s=4.0
        ),
        seed=seed,
    )


def facebook_app(seed: Optional[int] = None) -> AppModel:
    """Social feed: scroll bursts, media cards, occasional content loading."""
    phases = {
        "loading": Phase(
            name="loading",
            frame_rate_hz=3.0,
            cpu_work_per_frame_mwu=6.0,
            gpu_work_per_frame_mwu=12.0,
            background_big_mwu_per_s=3800.0,
            background_little_mwu_per_s=1100.0,
            background_gpu_mwu_per_s=200.0,
            background_burstiness=0.3,
            dwell_mean_s=4.0,
            dwell_min_s=2.0,
            dwell_max_s=8.0,
            interaction_driven=False,
            transition=PhaseTransition({"scroll": 0.8, "read": 0.2}),
        ),
        "scroll": Phase(
            name="scroll",
            frame_rate_hz=58.0,
            cpu_work_per_frame_mwu=38.0,
            gpu_work_per_frame_mwu=48.0,
            background_big_mwu_per_s=500.0,
            background_little_mwu_per_s=350.0,
            background_burstiness=0.4,
            dwell_mean_s=12.0,
            dwell_min_s=4.0,
            dwell_max_s=40.0,
            interaction_driven=True,
            transition=PhaseTransition({"read": 0.5, "media": 0.3, "loading": 0.2}),
        ),
        "read": Phase(
            name="read",
            frame_rate_hz=12.0,
            cpu_work_per_frame_mwu=20.0,
            gpu_work_per_frame_mwu=24.0,
            background_little_mwu_per_s=200.0,
            dwell_mean_s=8.0,
            dwell_min_s=3.0,
            dwell_max_s=25.0,
            interaction_driven=True,
            transition=PhaseTransition({"scroll": 0.7, "media": 0.3}),
        ),
        "media": Phase(
            name="media",
            frame_rate_hz=30.0,
            cpu_work_per_frame_mwu=26.0,
            gpu_work_per_frame_mwu=50.0,
            background_little_mwu_per_s=450.0,
            background_gpu_mwu_per_s=300.0,
            dwell_mean_s=10.0,
            dwell_min_s=4.0,
            dwell_max_s=30.0,
            interaction_driven=False,
            transition=PhaseTransition({"scroll": 0.6, "read": 0.4}),
        ),
    }
    return AppModel(
        name="facebook",
        phases=phases,
        initial_phase="loading",
        interaction_profile=DEFAULT_PROFILE,
        seed=seed,
    )


def spotify_app(seed: Optional[int] = None) -> AppModel:
    """Music streaming: brief browsing, then a mostly static now-playing screen."""
    phases = {
        "browse": Phase(
            name="browse",
            frame_rate_hz=50.0,
            cpu_work_per_frame_mwu=24.0,
            gpu_work_per_frame_mwu=32.0,
            background_big_mwu_per_s=700.0,
            background_little_mwu_per_s=300.0,
            background_burstiness=0.4,
            dwell_mean_s=8.0,
            dwell_min_s=3.0,
            dwell_max_s=25.0,
            interaction_driven=True,
            transition=PhaseTransition({"playback": 0.75, "browse": 0.25}),
        ),
        "playback": Phase(
            name="playback",
            # The now-playing screen only animates a progress bar; frame demand
            # is close to zero exactly as the Spotify portion of Fig. 1 shows.
            frame_rate_hz=2.0,
            cpu_work_per_frame_mwu=6.0,
            gpu_work_per_frame_mwu=10.0,
            background_big_mwu_per_s=1600.0,
            background_little_mwu_per_s=620.0,
            background_burstiness=0.65,
            dwell_mean_s=30.0,
            dwell_min_s=10.0,
            dwell_max_s=90.0,
            interaction_driven=False,
            transition=PhaseTransition({"browse": 0.35, "playback": 0.65}),
        ),
    }
    return AppModel(
        name="spotify",
        phases=phases,
        initial_phase="browse",
        interaction_profile=InteractionProfile(
            engaged_level=0.8, paused_level=0.03, burst_mean_s=1.5, pause_mean_s=6.0
        ),
        seed=seed,
    )


def chrome_app(seed: Optional[int] = None) -> AppModel:
    """Web browser: page loads (CPU heavy, low FPS) alternating with scrolling."""
    phases = {
        "page_load": Phase(
            name="page_load",
            frame_rate_hz=5.0,
            cpu_work_per_frame_mwu=10.0,
            gpu_work_per_frame_mwu=16.0,
            background_big_mwu_per_s=4200.0,
            background_little_mwu_per_s=1100.0,
            background_burstiness=0.25,
            dwell_mean_s=4.0,
            dwell_min_s=2.0,
            dwell_max_s=9.0,
            interaction_driven=False,
            transition=PhaseTransition({"scroll": 0.7, "read": 0.3}),
        ),
        "scroll": Phase(
            name="scroll",
            frame_rate_hz=58.0,
            cpu_work_per_frame_mwu=46.0,
            gpu_work_per_frame_mwu=55.0,
            background_big_mwu_per_s=500.0,
            background_little_mwu_per_s=250.0,
            dwell_mean_s=10.0,
            dwell_min_s=3.0,
            dwell_max_s=30.0,
            interaction_driven=True,
            transition=PhaseTransition({"read": 0.55, "page_load": 0.45}),
        ),
        "read": Phase(
            name="read",
            frame_rate_hz=8.0,
            cpu_work_per_frame_mwu=16.0,
            gpu_work_per_frame_mwu=20.0,
            background_little_mwu_per_s=150.0,
            dwell_mean_s=9.0,
            dwell_min_s=3.0,
            dwell_max_s=30.0,
            interaction_driven=True,
            transition=PhaseTransition({"scroll": 0.6, "page_load": 0.4}),
        ),
    }
    return AppModel(
        name="web_browser",
        phases=phases,
        initial_phase="page_load",
        interaction_profile=DEFAULT_PROFILE,
        seed=seed,
    )


def lineage_app(seed: Optional[int] = None) -> AppModel:
    """Lineage 2 Revolution: GPU-heavy 3D MMORPG with a long loading screen."""
    phases = {
        "loading": Phase(
            name="loading",
            frame_rate_hz=2.0,
            cpu_work_per_frame_mwu=8.0,
            gpu_work_per_frame_mwu=14.0,
            background_big_mwu_per_s=5200.0,
            background_little_mwu_per_s=1400.0,
            background_gpu_mwu_per_s=700.0,
            background_burstiness=0.15,
            dwell_mean_s=12.0,
            dwell_min_s=6.0,
            dwell_max_s=20.0,
            interaction_driven=False,
            transition=PhaseTransition({"combat": 0.6, "town": 0.4}),
        ),
        "town": Phase(
            name="town",
            frame_rate_hz=60.0,
            cpu_work_per_frame_mwu=45.0,
            gpu_work_per_frame_mwu=100.0,
            background_big_mwu_per_s=900.0,
            background_little_mwu_per_s=450.0,
            dwell_mean_s=15.0,
            dwell_min_s=6.0,
            dwell_max_s=45.0,
            interaction_driven=False,
            transition=PhaseTransition({"combat": 0.6, "menu": 0.25, "town": 0.15}),
        ),
        "combat": Phase(
            name="combat",
            frame_rate_hz=60.0,
            cpu_work_per_frame_mwu=55.0,
            gpu_work_per_frame_mwu=115.0,
            background_big_mwu_per_s=1300.0,
            background_little_mwu_per_s=600.0,
            dwell_mean_s=25.0,
            dwell_min_s=10.0,
            dwell_max_s=70.0,
            interaction_driven=False,
            transition=PhaseTransition({"town": 0.5, "menu": 0.3, "combat": 0.2}),
        ),
        "menu": Phase(
            name="menu",
            frame_rate_hz=30.0,
            cpu_work_per_frame_mwu=14.0,
            gpu_work_per_frame_mwu=30.0,
            background_little_mwu_per_s=250.0,
            dwell_mean_s=8.0,
            dwell_min_s=3.0,
            dwell_max_s=20.0,
            interaction_driven=True,
            transition=PhaseTransition({"combat": 0.5, "town": 0.5}),
        ),
    }
    return AppModel(
        name="lineage",
        phases=phases,
        initial_phase="loading",
        interaction_profile=CONTINUOUS_PROFILE,
        seed=seed,
    )


def pubg_app(seed: Optional[int] = None) -> AppModel:
    """PubG Mobile: 40 FPS shooter, mixed CPU/GPU load, lobby and drop phases."""
    phases = {
        "lobby": Phase(
            name="lobby",
            frame_rate_hz=30.0,
            cpu_work_per_frame_mwu=16.0,
            gpu_work_per_frame_mwu=40.0,
            background_big_mwu_per_s=800.0,
            background_little_mwu_per_s=400.0,
            dwell_mean_s=10.0,
            dwell_min_s=4.0,
            dwell_max_s=25.0,
            interaction_driven=True,
            transition=PhaseTransition({"loading": 0.6, "lobby": 0.4}),
        ),
        "loading": Phase(
            name="loading",
            frame_rate_hz=2.0,
            cpu_work_per_frame_mwu=8.0,
            gpu_work_per_frame_mwu=14.0,
            background_big_mwu_per_s=4600.0,
            background_little_mwu_per_s=1200.0,
            background_gpu_mwu_per_s=500.0,
            background_burstiness=0.2,
            dwell_mean_s=10.0,
            dwell_min_s=5.0,
            dwell_max_s=18.0,
            interaction_driven=False,
            transition=PhaseTransition({"match": 1.0}),
        ),
        "match": Phase(
            name="match",
            frame_rate_hz=40.0,
            cpu_work_per_frame_mwu=65.0,
            gpu_work_per_frame_mwu=105.0,
            background_big_mwu_per_s=1500.0,
            background_little_mwu_per_s=700.0,
            dwell_mean_s=40.0,
            dwell_min_s=15.0,
            dwell_max_s=120.0,
            interaction_driven=False,
            transition=PhaseTransition({"firefight": 0.55, "lobby": 0.15, "match": 0.3}),
        ),
        "firefight": Phase(
            name="firefight",
            frame_rate_hz=40.0,
            cpu_work_per_frame_mwu=75.0,
            gpu_work_per_frame_mwu=120.0,
            background_big_mwu_per_s=1800.0,
            background_little_mwu_per_s=800.0,
            dwell_mean_s=15.0,
            dwell_min_s=5.0,
            dwell_max_s=45.0,
            interaction_driven=False,
            transition=PhaseTransition({"match": 0.8, "lobby": 0.2}),
        ),
    }
    return AppModel(
        name="pubg",
        phases=phases,
        initial_phase="lobby",
        interaction_profile=CONTINUOUS_PROFILE,
        seed=seed,
    )


def youtube_app(seed: Optional[int] = None) -> AppModel:
    """YouTube: content-driven 30 FPS playback with occasional browsing."""
    phases = {
        "browse": Phase(
            name="browse",
            frame_rate_hz=55.0,
            cpu_work_per_frame_mwu=30.0,
            gpu_work_per_frame_mwu=38.0,
            background_big_mwu_per_s=900.0,
            background_little_mwu_per_s=400.0,
            background_burstiness=0.35,
            dwell_mean_s=8.0,
            dwell_min_s=3.0,
            dwell_max_s=20.0,
            interaction_driven=True,
            transition=PhaseTransition({"playback": 0.8, "browse": 0.2}),
        ),
        "playback": Phase(
            name="playback",
            frame_rate_hz=30.0,
            cpu_work_per_frame_mwu=18.0,
            gpu_work_per_frame_mwu=40.0,
            background_big_mwu_per_s=450.0,
            background_little_mwu_per_s=800.0,
            background_gpu_mwu_per_s=700.0,
            dwell_mean_s=35.0,
            dwell_min_s=10.0,
            dwell_max_s=120.0,
            interaction_driven=False,
            transition=PhaseTransition({"browse": 0.4, "playback": 0.6}),
        ),
    }
    return AppModel(
        name="youtube",
        phases=phases,
        initial_phase="browse",
        interaction_profile=PASSIVE_PROFILE,
        seed=seed,
    )


#: Factory registry of every application model, keyed by the name used in the
#: paper's evaluation figures.
APP_LIBRARY: Dict[str, Callable[[Optional[int]], AppModel]] = {
    "home": home_screen_app,
    "facebook": facebook_app,
    "spotify": spotify_app,
    "web_browser": chrome_app,
    "lineage": lineage_app,
    "pubg": pubg_app,
    "youtube": youtube_app,
}

#: Apps the paper classifies as games (the only ones Int. QoS PM supports).
GAME_APPS = ("lineage", "pubg")


def make_app(
    name: str, seed: Optional[int] = None, intensity: Optional[float] = None
) -> AppModel:
    """Instantiate an application model from :data:`APP_LIBRARY` by name.

    ``intensity`` (optional) rescales the app's interaction profile via
    :meth:`InteractionProfile.scaled <repro.workloads.interaction.InteractionProfile.scaled>`
    to model users who lean on the device more or less heavily.  ``None`` and
    ``1.0`` leave the app byte-for-byte identical to the library default, so
    every existing golden hash is unaffected.
    """
    try:
        factory = APP_LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; available: {sorted(APP_LIBRARY)}"
        ) from None
    app = factory(seed)
    if intensity is not None:
        scaled = app.interaction_profile.scaled(intensity)
        if scaled is not app.interaction_profile:
            app.interaction_profile = scaled
            app.reset(seed)
    return app
