"""Application model: phase machine + interaction -> per-tick workload.

:class:`AppModel` is the object the simulation engine steps.  Per tick it

1. advances the phase machine (splash -> browse -> scroll -> ...),
2. advances the user-interaction activity signal,
3. converts the current phase's frame-rate demand into a concrete list of
   :class:`~repro.graphics.pipeline.FrameSpec` frames for this tick, and
4. reports the background (non-frame) work to place on each cluster.

The produced :class:`TickWorkload` is purely *demand*: it does not depend on
the governor or on how fast the SoC happens to be running, which is what
allows an identical demand trace to be replayed against different governors
for a fair comparison (see :mod:`repro.workloads.trace`).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.graphics.pipeline import FrameSpec
from repro.workloads.interaction import (
    DEFAULT_PROFILE,
    InteractionGenerator,
    InteractionProfile,
)
from repro.workloads.phases import Phase, validate_phase_graph


@dataclass(frozen=True)
class TickWorkload:
    """Demand produced by an application during one simulation tick.

    Attributes
    ----------
    time_s:
        Simulation time at the *start* of the tick.
    app_name:
        Name of the application that produced the demand.
    phase_name:
        Phase the application was in during the tick.
    frames:
        Frames demanded this tick.
    background_work_mwu:
        Non-frame work demanded per cluster this tick (mega work units).
    interaction_activity:
        User interaction activity during the tick (0..1).
    """

    time_s: float
    app_name: str
    phase_name: str
    frames: List[FrameSpec]
    background_work_mwu: Mapping[str, float]
    interaction_activity: float

    @property
    def frame_count(self) -> int:
        """Number of frames demanded this tick."""
        return len(self.frames)


class AppModel:
    """A mobile application as a phase machine with interaction-driven demand."""

    def __init__(
        self,
        name: str,
        phases: Mapping[str, Phase],
        initial_phase: str,
        interaction_profile: InteractionProfile = DEFAULT_PROFILE,
        big_cluster: str = "big",
        little_cluster: str = "little",
        gpu_cluster: str = "gpu",
        seed: Optional[int] = None,
    ) -> None:
        if initial_phase not in phases:
            raise ValueError(f"initial phase {initial_phase!r} not in phase set")
        validate_phase_graph(phases)
        self.name = name
        self.phases: Dict[str, Phase] = dict(phases)
        self.initial_phase = initial_phase
        self.interaction_profile = interaction_profile
        self.big_cluster = big_cluster
        self.little_cluster = little_cluster
        self.gpu_cluster = gpu_cluster
        # crc32, not builtin hash(): hash(str) is salted by PYTHONHASHSEED,
        # so the default seed would differ between processes and runs.
        default_seed = zlib.crc32(name.encode("utf-8")) & 0xFFFF
        self._rng = random.Random(seed if seed is not None else default_seed)
        self.interaction = InteractionGenerator(interaction_profile, rng=self._rng)
        self._current_phase = self.phases[initial_phase]
        self._phase_time_left_s = self._current_phase.sample_dwell_s(self._rng)
        self._frame_accumulator = 0.0
        self._time_s = 0.0

    # -- state ---------------------------------------------------------------------

    @property
    def current_phase(self) -> Phase:
        """The phase the application is currently in."""
        return self._current_phase

    @property
    def time_s(self) -> float:
        """Time the application has been running."""
        return self._time_s

    def reset(self, seed: Optional[int] = None) -> None:
        """Restart the application from its initial phase."""
        if seed is not None:
            self._rng = random.Random(seed)
        self.interaction = InteractionGenerator(self.interaction_profile, rng=self._rng)
        self._current_phase = self.phases[self.initial_phase]
        self._phase_time_left_s = self._current_phase.sample_dwell_s(self._rng)
        self._frame_accumulator = 0.0
        self._time_s = 0.0

    # -- phase machine ----------------------------------------------------------------

    def _advance_phase_machine(self, dt_s: float) -> None:
        self._phase_time_left_s -= dt_s
        while self._phase_time_left_s <= 0:
            next_name = self._current_phase.sample_next_phase(self._rng)
            if next_name is None:
                # Absorbing phase: stay forever.
                self._phase_time_left_s = float("inf")
                return
            self._current_phase = self.phases[next_name]
            self._phase_time_left_s += self._current_phase.sample_dwell_s(self._rng)

    # -- demand generation ---------------------------------------------------------------

    def _sample_frame(self, phase: Phase) -> FrameSpec:
        def jitter(mean: float) -> float:
            if mean <= 0 or phase.work_cv <= 0:
                return max(0.0, mean)
            value = self._rng.gauss(mean, mean * phase.work_cv)
            return max(0.1 * mean, value)

        return FrameSpec(
            cpu_work_mwu=jitter(phase.cpu_work_per_frame_mwu),
            gpu_work_mwu=jitter(phase.gpu_work_per_frame_mwu),
        )

    def _background_work(self, phase: Phase, dt_s: float) -> Dict[str, float]:
        burst_scale = 1.0
        if phase.background_burstiness > 0:
            # Concentrate the same average work into bursts: with probability p
            # the work arrives multiplied by 1/p, otherwise nothing arrives.
            p = 1.0 - phase.background_burstiness
            p = max(0.05, p)
            burst_scale = (1.0 / p) if self._rng.random() < p else 0.0
        return {
            self.big_cluster: phase.background_big_mwu_per_s * dt_s * burst_scale,
            self.little_cluster: phase.background_little_mwu_per_s * dt_s * burst_scale,
            self.gpu_cluster: phase.background_gpu_mwu_per_s * dt_s * burst_scale,
        }

    def tick(self, dt_s: float) -> TickWorkload:
        """Produce the demand for the next ``dt_s`` seconds."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        start_time = self._time_s
        phase = self._current_phase
        activity = self.interaction.step(dt_s)

        effective_rate = phase.frame_rate_hz
        if phase.interaction_driven:
            effective_rate *= activity

        self._frame_accumulator += effective_rate * dt_s
        frames: List[FrameSpec] = []
        while self._frame_accumulator >= 1.0:
            frames.append(self._sample_frame(phase))
            self._frame_accumulator -= 1.0

        background = self._background_work(phase, dt_s)

        self._advance_phase_machine(dt_s)
        self._time_s += dt_s

        return TickWorkload(
            time_s=start_time,
            app_name=self.name,
            phase_name=phase.name,
            frames=frames,
            background_work_mwu=background,
            interaction_activity=activity,
        )
