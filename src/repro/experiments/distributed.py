"""Distributed sweep sharding: plan, run and merge a matrix across machines.

A single machine saturates around ~10k smoke-shape cells (ROADMAP sizing:
~2 ms of wall time per simulated second per core), or much earlier when the
training axes dominate -- a federated fleet cell can cost hundreds of
simulated seconds of training before its evaluation even starts.  This
module turns one :class:`~repro.experiments.matrix.ScenarioMatrix` into N
independently runnable *shards* and merges their outputs back into a single
:class:`~repro.experiments.runner.SweepResult` that is bit-identical to an
unsharded run:

* :func:`plan_shards` partitions the cell list deterministically.  Cells are
  first grouped so every cell sharing a
  :class:`~repro.core.artifact.TrainingSpec` or
  :class:`~repro.core.federated.FleetSpec` lands on one shard (the spec then
  trains exactly once across the whole distributed sweep), then the groups
  are balanced across shards greedily by estimated cost.  The
  :class:`CostModel` prices cells and training from the committed
  ``BENCH_hotloop.json`` per-simulated-second throughput numbers, so
  training-heavy cells weigh as much as they cost.  The plan freezes into a
  schema-versioned ``shard-manifest.json`` (matrix fingerprint, per-shard
  assignments, per-cell cost estimates).
* :func:`run_shard` executes one shard against its own cache/artifact/fleet
  directories through the ordinary :class:`~repro.experiments.runner
  .SweepRunner`, emitting a resumable ``shard-status.json``.  An interrupted
  shard simply re-runs: completed cells come back from its
  :class:`~repro.experiments.runner.ResultCache`.
* :func:`merge_shards` unions the shard caches and artifact/fleet stores
  into one directory and reconstructs the aggregate sweep result.
  Fingerprint-keyed entries make the union conflict-free *by construction*;
  the merge still verifies that same-fingerprint entries are
  content-identical (byte-identical up to wall-clock timing fields, which
  cannot affect results) and raises :class:`ShardMergeError` otherwise, so
  a corrupted or tampered shard can never silently poison the merged sweep.

Because every cell, artifact and fleet is a pure function of its
fingerprinted spec, running 1 shard or N shards on 1 machine or N machines
produces the same bytes -- the distributed parity suite pins per-cell
``sample_stream_hash`` equality between sharded and unsharded runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.persistence import atomic_write_json, quarantine_entry
from repro.core.seeding import canonical_fingerprint
from repro.obs.metrics import metrics
from repro.obs.progress import ProgressTracker
from repro.obs.trace import TRACE_BASENAME, maybe_span, merge_traces
from repro.reliability.clock import wall_now
from repro.reliability.retry import RetryPolicy
from repro.reliability.watchdog import WatchdogPolicy
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.federated import FleetStore
from repro.experiments.matrix import ScenarioCell, ScenarioMatrix
from repro.experiments.runner import (
    CellResult,
    ProgressCallback,
    ResultCache,
    SweepResult,
    SweepRunner,
    default_artifact_dir,
)

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "STATUS_FILENAME",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "RemainingCost",
    "ShardManifest",
    "ShardMergeError",
    "ShardStatus",
    "amortised_cell_costs",
    "cell_group_key",
    "merge_shard_stores",
    "merge_shards",
    "load_merged_result",
    "plan_shards",
    "run_shard",
    "shard_directory",
    "shard_status",
]

#: Bumped whenever the manifest layout or the shard execution contract
#: changes, so a stale manifest can never drive a current worker.
MANIFEST_SCHEMA_VERSION = 1

#: Canonical file names inside a plan directory / shard directory.
MANIFEST_FILENAME = "shard-manifest.json"
STATUS_FILENAME = "shard-status.json"

#: Simulated seconds behind ``BENCH_hotloop.json``'s ``sweep_cell_wall_s``
#: measurement (the bench runs one 4 sim-s cell end to end).
_BENCH_SWEEP_CELL_SIM_S = 4.0


@dataclass(frozen=True)
class CostModel:
    """Wall-clock price of one simulated second, for planning and ETAs.

    The defaults come from the committed ``BENCH_hotloop.json`` perf
    trajectory (compiled-kernel numbers): a sweep cell costs
    ``sweep_cell_wall_s / 4 sim-s`` and training throughput is
    ``1 / cold_train_sim_s_per_wall_s``.  Absolute values only matter for
    ETA display; shard *balance* only needs the ratio between evaluation and
    training work, which is stable across machines of the same class.
    """

    #: ``after.sweep_cell_wall_s`` (0.00762 s) over the bench's 4 sim-s cell.
    cell_s_per_sim_s: float = 0.00762 / _BENCH_SWEEP_CELL_SIM_S
    #: Reciprocal of ``after.cold_train_sim_s_per_wall_s`` (328.7 sim-s/s).
    train_s_per_sim_s: float = 1.0 / 328.7

    def __post_init__(self) -> None:
        if self.cell_s_per_sim_s <= 0 or self.train_s_per_sim_s <= 0:
            raise ValueError("cost-model rates must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (recorded in the manifest)."""
        return {
            "cell_s_per_sim_s": self.cell_s_per_sim_s,
            "train_s_per_sim_s": self.train_s_per_sim_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostModel":
        """Rebuild a model from :meth:`to_dict` output."""
        return cls(
            cell_s_per_sim_s=float(data["cell_s_per_sim_s"]),
            train_s_per_sim_s=float(data["train_s_per_sim_s"]),
        )

    @classmethod
    def from_bench_report(cls, data: Mapping[str, Any]) -> "CostModel":
        """Derive a model from a ``BENCH_hotloop.json``-shaped report.

        Strict about the expected keys: silently falling back to the
        committed defaults would record another machine's numbers in the
        manifest as if they were the operator's calibration.
        """
        after = data.get("after") if isinstance(data, Mapping) else None
        if not isinstance(after, Mapping):
            after = {}
        missing = sorted(
            key
            for key in ("sweep_cell_wall_s", "cold_train_sim_s_per_wall_s")
            if not after.get(key)
        )
        if missing:
            raise ValueError(
                f"bench report is missing 'after' key(s) {missing}; expected a "
                "BENCH_hotloop.json-shaped report (benchmarks/bench_hot_loop.py)"
            )
        return cls(
            cell_s_per_sim_s=(
                float(after["sweep_cell_wall_s"]) / _BENCH_SWEEP_CELL_SIM_S
            ),
            train_s_per_sim_s=1.0 / float(after["cold_train_sim_s_per_wall_s"]),
        )

    @classmethod
    def from_bench_file(cls, path: str) -> "CostModel":
        """Load a model from a committed benchmark report on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_bench_report(json.load(handle))

    # -- pricing ------------------------------------------------------------------------

    def cell_cost_s(self, cell: ScenarioCell) -> float:
        """Estimated wall time of one cell's evaluation (without training)."""
        return cell.workload.duration_s * self.cell_s_per_sim_s

    def training_cost_s(self, cell: ScenarioCell) -> float:
        """Estimated wall time of the cell's training spec or fleet, if any.

        A pretrained spec trains ``apps x episodes x episode_duration_s``
        simulated seconds; a federated fleet multiplies that by ``devices``
        and ``rounds`` (round 0 plus every continuation round runs one full
        local-training phase per device).
        """
        fleet = cell.fleet_spec()
        if fleet is not None:
            sim_s = (
                fleet.devices
                * fleet.rounds
                * len(fleet.apps)
                * fleet.episodes
                * fleet.episode_duration_s
            )
            return sim_s * self.train_s_per_sim_s
        spec = cell.training_spec()
        if spec is not None:
            sim_s = len(spec.apps) * spec.episodes * spec.episode_duration_s
            return sim_s * self.train_s_per_sim_s
        return 0.0


#: Shared default instance (the committed BENCH_hotloop.json numbers).
DEFAULT_COST_MODEL = CostModel()


class RemainingCost:
    """Shared "work still owed" accounting for ETAs and shard status files.

    One rule, used by every readout so they cannot disagree: each distinct
    cell fingerprint is priced once, its cost is released when its *first*
    delivery succeeds, and a failed delivery keeps the cost owed (error
    results are never cached, so a re-run retries the cell).  Running-total
    arithmetic keeps the per-delivery cost O(1) -- re-summing on every
    delivery would make sweep bookkeeping quadratic in cell count.
    """

    def __init__(self, costs: Mapping[str, float]) -> None:
        self._pending = dict(costs)
        self.remaining_s = sum(self._pending.values())

    @property
    def outstanding(self) -> int:
        """Cells not yet delivered at all (cached hits count as delivered).

        This is the number of cells that can still run concurrently, which is
        what an ETA should divide by: dividing the remaining cost by the full
        worker count overstates parallelism once fewer cells than workers are
        left (the classic long-tail underestimate).
        """
        return len(self._pending)

    def deliver(self, result: CellResult) -> bool:
        """Account one delivered result; ``True`` on the cell's first delivery."""
        cost = self._pending.pop(result.cell.fingerprint(), None)
        if cost is None:
            return False  # duplicate-fingerprint expansion: already priced
        if result.ok:
            self.remaining_s = max(0.0, self.remaining_s - cost)
        return True


def cell_group_key(cell: ScenarioCell) -> str:
    """The co-location key of one cell.

    Every cell sharing a training spec or fleet spec must land on one shard,
    so the spec trains exactly once across the whole distributed sweep
    (duplicate training would waste the dominant cost and, worse, produce
    same-fingerprint artifacts on several shards that the merge would then
    have to reconcile).  Untrained cells are their own singleton groups, so
    the balancer can place them freely.
    """
    fleet = cell.fleet_spec()
    if fleet is not None:
        return f"fleet:{fleet.fingerprint()}"
    spec = cell.training_spec()
    if spec is not None:
        return f"train:{spec.fingerprint()}"
    return f"cell:{cell.fingerprint()}"


def amortised_cell_costs(
    cells: Sequence[ScenarioCell], cost_model: Optional[CostModel] = None
) -> Dict[str, float]:
    """Estimated wall cost per cell fingerprint, training amortised over its group.

    Each distinct training spec / fleet is priced once and split equally
    across the cells that share it, so summing the returned costs over any
    set of cells prices that set's total work correctly -- which is exactly
    what both the shard balancer (summing over a group) and the progress ETA
    (summing over the not-yet-completed cells) need.
    """
    model = cost_model or DEFAULT_COST_MODEL
    costs: Dict[str, float] = {}
    group_members: Dict[str, List[str]] = {}
    group_training: Dict[str, float] = {}
    for cell in cells:
        fingerprint = cell.fingerprint()
        if fingerprint in costs:
            continue  # duplicate expansion shares one cache entry: price once
        costs[fingerprint] = model.cell_cost_s(cell)
        key = cell_group_key(cell)
        group_members.setdefault(key, []).append(fingerprint)
        group_training.setdefault(key, model.training_cost_s(cell))
    for key, members in group_members.items():
        share = group_training[key] / len(members)
        if share:
            for fingerprint in members:
                costs[fingerprint] += share
    return costs


# ----------------------------------------------------------------------------------
# Shard manifest
# ----------------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardManifest:
    """The frozen plan of one distributed sweep.

    Ships as ``shard-manifest.json`` next to the shard directories; every
    worker and the merge engine validate the embedded matrix fingerprint, so
    shards planned against different designs (or schema versions) can never
    be mixed.
    """

    matrix: ScenarioMatrix
    assignments: Tuple[Tuple[str, ...], ...]
    cell_costs: Mapping[str, float]
    cell_labels: Mapping[str, str]
    cost_model: CostModel

    @property
    def shard_count(self) -> int:
        """How many shards the plan partitions the matrix into."""
        return len(self.assignments)

    @property
    def matrix_fingerprint(self) -> str:
        """Content hash of the pre-registered design this plan partitions."""
        return self.matrix.fingerprint()

    def fingerprint(self) -> str:
        """Content hash of the whole plan (manifest identity)."""
        return canonical_fingerprint(self.to_dict())

    def shard_cells(self, shard_index: int) -> List[ScenarioCell]:
        """The shard's cells, in the matrix's pre-registered order."""
        if not 0 <= shard_index < self.shard_count:
            raise ValueError(
                f"shard index {shard_index} out of range [0, {self.shard_count})"
            )
        wanted = set(self.assignments[shard_index])
        return [
            cell for cell in self.matrix.cells() if cell.fingerprint() in wanted
        ]

    def cells_by_fingerprint(self) -> Dict[str, ScenarioCell]:
        """One representative cell per distinct fingerprint, expanded once.

        Callers that inspect many shards (``repro-sweep shard status``)
        compute this once and reuse it, instead of re-expanding the matrix
        and re-hashing every cell per shard.
        """
        cells: Dict[str, ScenarioCell] = {}
        for cell in self.matrix.cells():
            cells.setdefault(cell.fingerprint(), cell)
        return cells

    def shard_cost_s(self, shard_index: int) -> float:
        """Estimated wall cost of one shard."""
        return sum(
            self.cell_costs[fingerprint]
            for fingerprint in self.assignments[shard_index]
        )

    def total_cost_s(self) -> float:
        """Estimated wall cost of the whole sweep (one worker per shard)."""
        return sum(self.cell_costs[f] for shard in self.assignments for f in shard)

    def validate(self) -> None:
        """Check the plan still covers its matrix exactly.

        Re-expands the matrix and verifies that the assignments partition the
        expansion's distinct cell fingerprints -- each assigned exactly once,
        none missing, none foreign.  Raises ``ValueError`` otherwise (e.g. a
        hand-edited manifest, or one produced by a different code version
        that slipped past the schema check).
        """
        expanded = {cell.fingerprint() for cell in self.matrix.cells()}
        assigned: List[str] = [f for shard in self.assignments for f in shard]
        if len(assigned) != len(set(assigned)):
            raise ValueError("manifest assigns at least one cell to several shards")
        missing = sorted(expanded - set(assigned))
        foreign = sorted(set(assigned) - expanded)
        if missing or foreign:
            raise ValueError(
                f"manifest does not partition its matrix: {len(missing)} cell(s) "
                f"unassigned, {len(foreign)} foreign fingerprint(s)"
            )
        known = set(self.cell_costs)
        if not set(assigned) <= known or not set(assigned) <= set(self.cell_labels):
            raise ValueError("manifest is missing cost or label entries for cells")

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``shard-manifest.json`` document)."""
        return {
            "manifest_schema_version": MANIFEST_SCHEMA_VERSION,
            "matrix_fingerprint": self.matrix_fingerprint,
            "matrix": self.matrix.to_dict(),
            "shards": self.shard_count,
            "cost_model": self.cost_model.to_dict(),
            "assignments": [
                {
                    "shard": index,
                    "estimated_cost_s": self.shard_cost_s(index),
                    "cells": [
                        {
                            "fingerprint": fingerprint,
                            "label": self.cell_labels[fingerprint],
                            "cost_s": self.cell_costs[fingerprint],
                        }
                        for fingerprint in shard
                    ],
                }
                for index, shard in enumerate(self.assignments)
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardManifest":
        """Rebuild and validate a manifest from :meth:`to_dict` output."""
        version = int(data.get("manifest_schema_version", -1))
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema version {version} does not match the current "
                f"version {MANIFEST_SCHEMA_VERSION}"
            )
        matrix = ScenarioMatrix.from_dict(data["matrix"])
        stored = data.get("matrix_fingerprint")
        if matrix.fingerprint() != stored:
            raise ValueError(
                f"manifest matrix fingerprint {stored!r} does not match its "
                f"embedded matrix ({matrix.fingerprint()!r}); the manifest was "
                "edited or produced by an incompatible version"
            )
        assignments: List[Tuple[str, ...]] = []
        cell_costs: Dict[str, float] = {}
        cell_labels: Dict[str, str] = {}
        for entry in data["assignments"]:
            shard = []
            for cell in entry["cells"]:
                fingerprint = cell["fingerprint"]
                shard.append(fingerprint)
                cell_costs[fingerprint] = float(cell["cost_s"])
                cell_labels[fingerprint] = cell["label"]
            assignments.append(tuple(shard))
        if len(assignments) != int(data.get("shards", len(assignments))):
            raise ValueError("manifest shard count does not match its assignments")
        manifest = cls(
            matrix=matrix,
            assignments=tuple(assignments),
            cell_costs=cell_costs,
            cell_labels=cell_labels,
            cost_model=CostModel.from_dict(data["cost_model"]),
        )
        manifest.validate()
        return manifest

    def save(self, path: str) -> str:
        """Atomically write the manifest as JSON; returns ``path``."""
        return atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "ShardManifest":
        """Load and validate a manifest written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"manifest file {path!r} does not contain an object")
        return cls.from_dict(data)


def plan_shards(
    matrix: ScenarioMatrix,
    shards: int,
    cost_model: Optional[CostModel] = None,
) -> ShardManifest:
    """Partition a matrix into ``shards`` balanced, independently runnable shards.

    Deterministic: cells group by :func:`cell_group_key` (training co-location),
    groups sort by descending estimated cost with the group key as the tie
    breaker, and each group goes to the currently least-loaded shard (lowest
    index on ties) -- the classic longest-processing-time heuristic, which
    keeps the makespan within 4/3 of optimal while never splitting a
    training spec across machines.  Planning the same matrix twice, anywhere,
    yields byte-identical manifests.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    cells = matrix.cells()
    model = cost_model or DEFAULT_COST_MODEL
    costs = amortised_cell_costs(cells, model)
    labels: Dict[str, str] = {}
    order: Dict[str, int] = {}
    groups: Dict[str, List[str]] = {}
    for position, cell in enumerate(cells):
        fingerprint = cell.fingerprint()
        if fingerprint in labels:
            continue
        labels[fingerprint] = cell.label()
        order[fingerprint] = position
        groups.setdefault(cell_group_key(cell), []).append(fingerprint)

    group_costs = {
        key: sum(costs[fingerprint] for fingerprint in members)
        for key, members in groups.items()
    }
    loads = [0.0] * shards
    members_per_shard: List[List[str]] = [[] for _ in range(shards)]
    for key in sorted(groups, key=lambda k: (-group_costs[k], k)):
        target = min(range(shards), key=lambda index: (loads[index], index))
        members_per_shard[target].extend(groups[key])
        loads[target] += group_costs[key]
    assignments = tuple(
        tuple(sorted(members, key=order.__getitem__))
        for members in members_per_shard
    )
    manifest = ShardManifest(
        matrix=matrix,
        assignments=assignments,
        cell_costs=costs,
        cell_labels=labels,
        cost_model=model,
    )
    manifest.validate()
    return manifest


# ----------------------------------------------------------------------------------
# Shard worker
# ----------------------------------------------------------------------------------


def shard_directory(base_dir: str, shard_index: int) -> str:
    """Canonical directory of one shard next to its manifest."""
    return os.path.join(base_dir, f"shard-{shard_index:03d}")


def shard_cache_dir(shard_dir: str) -> str:
    """The result-cache directory inside one shard directory."""
    return os.path.join(shard_dir, "cache")


def _write_status(
    shard_dir: str,
    manifest: ShardManifest,
    shard_index: int,
    state: str,
    completed: int,
    cached: int,
    failed: int,
    remaining_s: float,
    attempts: int = 0,
    quarantined: int = 0,
) -> None:
    payload = {
        "status_schema_version": MANIFEST_SCHEMA_VERSION,
        "matrix_fingerprint": manifest.matrix_fingerprint,
        "shard": shard_index,
        "state": state,
        "total": len(manifest.assignments[shard_index]),
        "completed": completed,
        "cached": cached,
        "failed": failed,
        "attempts": attempts,
        "quarantined": quarantined,
        # Unix time, not monotonic: the heartbeat is compared across
        # machines by `shard status` on the planning host.
        "heartbeat_unix_s": wall_now(),
        "estimated_remaining_s": remaining_s,
        "estimated_total_s": manifest.shard_cost_s(shard_index),
    }
    registry = metrics()
    if not registry.empty():
        # The worker's cumulative counters (cache hits, retries by kind,
        # faults fired, ...) ride along so the planning host's `shard
        # status` sees them without shipping the trace file.
        payload["metrics"] = registry.snapshot()
    atomic_write_json(os.path.join(shard_dir, STATUS_FILENAME), payload)


def run_shard(
    manifest: ShardManifest,
    shard_index: int,
    shard_dir: str,
    max_workers: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    retry_policy: Optional[RetryPolicy] = None,
    cell_timeout_s: Optional[float] = None,
) -> SweepResult:
    """Execute one shard into its own directory; resumable and restartable.

    The shard keeps everything it produces under ``shard_dir`` -- result
    cache at ``cache/``, trained artifacts and fleets at ``cache/artifacts``
    -- so shipping the directory back to the planning machine ships the
    complete shard output.  ``shard-status.json`` is rewritten atomically
    after every cell with a fresh heartbeat timestamp and a running retry
    count, so the planning machine's ``shard status`` can distinguish a
    slow shard from a dead one; an interrupted worker restarts from its
    cache and only recomputes what is missing.

    ``retry_policy`` and ``cell_timeout_s`` configure the runner's fault
    tolerance (transient-failure retries and the per-cell watchdog budget);
    defaults mirror a plain :class:`~repro.experiments.runner.SweepRunner`.
    """
    cells = manifest.shard_cells(shard_index)
    watchdog = None
    if cell_timeout_s is not None:
        watchdog = WatchdogPolicy(
            cost_model=manifest.cost_model, cell_timeout_s=cell_timeout_s
        )
    runner = SweepRunner(
        max_workers=max_workers,
        cache_dir=shard_cache_dir(shard_dir),
        retry_policy=retry_policy,
        watchdog=watchdog,
    )
    costs = RemainingCost(
        {f: manifest.cell_costs[f] for f in manifest.assignments[shard_index]}
    )
    # One accounting for printer, status file and trace: the tracker counts
    # each *distinct* cell once (duplicate-fingerprint expansions deliver the
    # same cell twice, but "total" in the status file counts fingerprints)
    # and "completed" counts finished work only -- error results are never
    # cached, so a failed cell's work is still outstanding and a later
    # re-run of the shard retries it.
    tracker = ProgressTracker(costs, workers=max_workers or 1)

    def write_status(state: str) -> None:
        _write_status(
            shard_dir,
            manifest,
            shard_index,
            state,
            tracker.completed_total,
            tracker.cached_total,
            tracker.failed_total,
            costs.remaining_s,
            tracker.retries_total,
            tracker.quarantined_total,
        )

    def track(done: int, total: int, result: CellResult) -> None:
        tracker.note(done, total, result)
        write_status("running")
        if progress is not None:
            progress(done, total, result)

    with maybe_span("shard_run", shard=shard_index, cells=len(cells)):
        write_status("running")
        try:
            result = runner.run(manifest.matrix, progress=track, cells=cells)
        except KeyboardInterrupt:
            # Leave an honest status file behind before the process dies: the
            # tracker and remaining-cost accumulator already reflect every
            # cell that was delivered (and cached) before the interrupt, so a
            # monitoring `status` call sees "interrupted" with accurate
            # progress instead of a stale "running".  The write is atomic
            # (tmp + rename) like every other status write, so a concurrent
            # reader never sees a torn file.
            write_status("interrupted")
            raise
        write_status("complete" if tracker.failed_total == 0 else "failed")
    return result


@dataclass(frozen=True)
class ShardStatus:
    """Live progress of one shard, derived from its cache and status file."""

    shard: int
    state: str
    total: int
    completed: int
    failed: int
    remaining_s: float
    directory: str
    #: Retry attempts the worker has recorded so far (0 when unreported).
    attempts: int = 0
    #: Cells the worker quarantined as permanently failed (0 when unreported).
    quarantined: int = 0
    #: Seconds since the worker's last status heartbeat, or ``None`` when the
    #: status file carries no heartbeat (pre-heartbeat worker, or no file).
    heartbeat_age_s: Optional[float] = None
    #: True when a self-reportedly running, incomplete shard has not written
    #: a heartbeat within the caller's ``stale_after_s`` window -- the worker
    #: is likely hung or dead and the shard should be re-run.
    stale: bool = False


def shard_status(
    manifest: ShardManifest,
    shard_index: int,
    shard_dir: str,
    cells_by_fingerprint: Optional[Mapping[str, ScenarioCell]] = None,
    stale_after_s: Optional[float] = None,
) -> ShardStatus:
    """Inspect one shard's progress from its cache and status file.

    Completion is judged by :meth:`ResultCache.peek` -- the exact acceptance
    rules the worker's resume and the merge reconstruction apply (parseable,
    semantically this cell, current summary format), so status can never
    call an entry done that a merge would reject.  That ground truth holds
    even after a hard kill or a torn copy, and the inspection is strictly
    read-only (a torn file might still be mid-``scp``; quarantining it here
    would hide the completed copy).  The status file only contributes the
    worker's last self-reported state and failure count, and estimated
    remaining time comes from the manifest's cost model.

    ``cells_by_fingerprint`` lets a caller inspecting many shards share one
    :meth:`ShardManifest.cells_by_fingerprint` expansion instead of paying a
    full matrix expansion per shard.

    ``stale_after_s`` enables liveness detection: a shard whose status file
    claims "running" but whose heartbeat is older than the window (and whose
    cache is not already complete) is flagged ``stale`` -- the worker is
    presumed hung or dead, and re-running the shard (which resumes from its
    cache) is the remedy.
    """
    if cells_by_fingerprint is None:
        cells_by_fingerprint = manifest.cells_by_fingerprint()
    fingerprints = manifest.assignments[shard_index]
    cache = ResultCache(shard_cache_dir(shard_dir)) if os.path.isdir(
        shard_cache_dir(shard_dir)
    ) else ResultCache(None)
    done = {
        fingerprint
        for fingerprint in fingerprints
        if cache.peek(cells_by_fingerprint[fingerprint]) is not None
    }
    remaining_s = sum(
        manifest.cell_costs[f] for f in fingerprints if f not in done
    )
    failed = 0
    attempts = 0
    quarantined = 0
    heartbeat_age_s: Optional[float] = None
    reported_state = None
    status_path = os.path.join(shard_dir, STATUS_FILENAME)
    try:
        with open(status_path, "r", encoding="utf-8") as handle:
            status = json.load(handle)
        if (
            status.get("matrix_fingerprint") == manifest.matrix_fingerprint
            and int(status.get("shard", -1)) == shard_index
        ):
            # Both checks matter: a foreign matrix's file is meaningless,
            # and a mis-ordered --shard-dir list must not attribute another
            # shard's failure count and state to this row.
            failed = int(status.get("failed", 0))
            attempts = int(status.get("attempts", 0))
            quarantined = int(status.get("quarantined", 0))
            reported_state = status.get("state")
            heartbeat = status.get("heartbeat_unix_s")
            if isinstance(heartbeat, (int, float)):
                heartbeat_age_s = max(0.0, wall_now() - float(heartbeat))
    except (OSError, ValueError, TypeError):
        pass  # no (readable) status file: judge from the cache alone
    # The cache outranks the worker's self-report: every entry present and
    # parseable means complete whatever an older status file says (an empty
    # shard is trivially complete), and a "complete" claim over an
    # incomplete cache (a torn copy) degrades to partial so status never
    # disagrees with what a merge would find.
    if len(done) == len(fingerprints):
        state = "complete"
    elif reported_state == "failed":
        state = "failed"
    elif done:
        state = "partial"
    else:
        state = "pending"
    # Staleness only applies to a shard that claims to be running but has
    # not finished: a complete cache is done no matter how old the
    # heartbeat, and "interrupted"/"failed" workers stopped on purpose.
    stale = (
        stale_after_s is not None
        and reported_state == "running"
        and state != "complete"
        and (heartbeat_age_s is None or heartbeat_age_s > stale_after_s)
    )
    return ShardStatus(
        shard=shard_index,
        state=state,
        total=len(fingerprints),
        completed=len(done),
        failed=failed,
        remaining_s=remaining_s,
        directory=shard_dir,
        attempts=attempts,
        quarantined=quarantined,
        heartbeat_age_s=heartbeat_age_s,
        stale=stale,
    )


# ----------------------------------------------------------------------------------
# Merge engine
# ----------------------------------------------------------------------------------


class ShardMergeError(RuntimeError):
    """A distributed merge found conflicting or incomplete shard content."""


def _parse_entry(raw_bytes: bytes, canonical_entry) -> Optional[Dict[str, Any]]:
    """Parse one entry's bytes into its canonical content, ``None`` if torn."""
    try:
        return canonical_entry(json.loads(raw_bytes.decode("utf-8")))
    except (ValueError, UnicodeDecodeError):
        return None


def _merge_entry(
    source_path: str,
    dest_path: str,
    canonical_entry,
    kind: str,
) -> Optional[bool]:
    """Copy one fingerprint-keyed entry into the merged store.

    Returns ``True`` when the entry was copied, ``False`` when the
    destination already held a content-identical entry (a clean overlap),
    and ``None`` when the source entry was unparseable JSON -- a torn write
    from a crashed worker or an interrupted copy.  Torn sources are
    quarantined as ``<path>.bad`` (so re-running the shard recomputes them)
    and skipped, never merged.  A torn *destination* (an earlier merge
    interrupted mid-write) is likewise quarantined and replaced by the
    parseable source.  Raises :class:`ShardMergeError` only when two
    *parseable* copies of the same fingerprint disagree -- which can only
    mean corruption, tampering or a non-deterministic bug, all of which
    must stop the merge.
    """
    with open(source_path, "rb") as handle:
        source_bytes = handle.read()
    source_data = _parse_entry(source_bytes, canonical_entry)
    if source_data is None:
        quarantine_entry(source_path)
        return None
    if not os.path.exists(dest_path):
        tmp_path = f"{dest_path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(source_bytes)
        os.replace(tmp_path, dest_path)
        return True
    with open(dest_path, "rb") as handle:
        dest_bytes = handle.read()
    if source_bytes == dest_bytes:
        return False
    dest_data = _parse_entry(dest_bytes, canonical_entry)
    if dest_data is None:
        quarantine_entry(dest_path)
        tmp_path = f"{dest_path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(source_bytes)
        os.replace(tmp_path, dest_path)
        return True
    if source_data != dest_data:
        raise ShardMergeError(
            f"{kind} entry {os.path.basename(source_path)!r} diverges between "
            f"shards: {source_path} and the already-merged copy at {dest_path} "
            "disagree beyond wall-clock timing fields.  Same-fingerprint "
            "entries must be content-identical; one shard is corrupt, "
            "tampered with, or ran incompatible code."
        )
    return False


def merge_shard_stores(
    shard_cache_dirs: Sequence[str], dest_cache_dir: str
) -> Dict[str, int]:
    """Union shard result caches and artifact/fleet stores into one directory.

    Returns per-kind counters (``results``/``artifacts``/``fleets`` copied,
    ``duplicates`` skipped as content-identical overlaps, ``quarantined``
    torn entries renamed to ``.bad`` and skipped).  Quarantined (``.bad``)
    and staging (``.tmp.<pid>``) files are ignored; a genuine content
    conflict between parseable entries raises :class:`ShardMergeError` and
    leaves the partial merge on disk for inspection (re-running the merge is
    idempotent).
    """
    counters = {
        "results": 0,
        "artifacts": 0,
        "fleets": 0,
        "duplicates": 0,
        "quarantined": 0,
    }

    def tally(copied: Optional[bool], kind: str) -> None:
        if copied is None:
            counters["quarantined"] += 1
            metrics().inc("merge.quarantined")
        elif copied:
            counters[kind] += 1
        else:
            counters["duplicates"] += 1

    os.makedirs(dest_cache_dir, exist_ok=True)
    dest_artifact_dir = default_artifact_dir(dest_cache_dir)
    os.makedirs(dest_artifact_dir, exist_ok=True)
    for cache_dir in shard_cache_dirs:
        for source_path in ResultCache(cache_dir).entry_paths():
            copied = _merge_entry(
                source_path,
                os.path.join(dest_cache_dir, os.path.basename(source_path)),
                ResultCache.canonical_entry,
                "result-cache",
            )
            tally(copied, "results")
        artifact_dir = default_artifact_dir(cache_dir)
        for source_path in ArtifactStore(artifact_dir).entry_paths():
            copied = _merge_entry(
                source_path,
                os.path.join(dest_artifact_dir, os.path.basename(source_path)),
                ArtifactStore.canonical_entry,
                "artifact",
            )
            tally(copied, "artifacts")
        for source_path in FleetStore(artifact_dir).entry_paths():
            copied = _merge_entry(
                source_path,
                os.path.join(dest_artifact_dir, os.path.basename(source_path)),
                FleetStore.canonical_entry,
                "fleet",
            )
            tally(copied, "fleets")
    return counters


def load_merged_result(
    manifest: ShardManifest,
    cache_dir: str,
    require_complete: bool = True,
) -> SweepResult:
    """Reconstruct the aggregate sweep result from a merged cache directory.

    Every cell of the manifest's matrix is served from the merged
    :class:`ResultCache`, in pre-registered order, exactly as a fully cached
    single-machine re-run would serve it -- so the reconstruction feeds the
    existing :mod:`repro.experiments.aggregate` reporting unchanged.  Cells
    missing from the merge (shard not run, cell failed on its shard, or a
    corrupt entry that the load quarantined) raise :class:`ShardMergeError`
    unless ``require_complete`` is off, in which case the partial result is
    returned.
    """
    cache = ResultCache(cache_dir)
    results: List[CellResult] = []
    missing: List[ScenarioCell] = []
    for cell in manifest.matrix.cells():
        result = cache.load(cell)
        if result is None:
            missing.append(cell)
        else:
            results.append(result)
    if missing and require_complete:
        labels = ", ".join(cell.label() for cell in missing[:5])
        suffix = "" if len(missing) <= 5 else f" (+{len(missing) - 5} more)"
        raise ShardMergeError(
            f"merged cache is missing {len(missing)} of "
            f"{len(manifest.matrix.cells())} cells: {labels}{suffix}.  Run the "
            "missing shards (or re-run interrupted ones; they resume from "
            "their caches) and merge again."
        )
    return SweepResult(matrix=manifest.matrix, results=results)


def merge_shards(
    manifest: ShardManifest,
    shard_dirs: Sequence[str],
    dest_cache_dir: str,
    require_complete: bool = True,
) -> Tuple[SweepResult, Dict[str, int]]:
    """One-call merge: union the shard stores, then reconstruct the sweep.

    ``shard_dirs`` are shard directories as produced by :func:`run_shard`
    (each holding a ``cache/`` subdirectory); directories that do not exist
    yet are skipped so a partial merge with ``require_complete=False`` can
    preview progress.  Returns ``(sweep_result, merge_counters)``.

    Shards that traced their run (``trace.jsonl`` next to the status file)
    get their traces concatenated into ``<dest_cache_dir>/trace.jsonl``, so
    ``repro-sweep report`` can replay the whole distributed sweep as one
    timeline; ``trace_events`` / ``trace_quarantined`` counters report the
    merge.  Shards without traces merge exactly as before.
    """
    with maybe_span("merge", shards=len(shard_dirs)) as span:
        cache_dirs = [
            shard_cache_dir(shard_dir)
            for shard_dir in shard_dirs
            if os.path.isdir(shard_cache_dir(shard_dir))
        ]
        counters = merge_shard_stores(cache_dirs, dest_cache_dir)
        trace_sources = [
            os.path.join(shard_dir, TRACE_BASENAME) for shard_dir in shard_dirs
        ]
        if any(os.path.exists(path) for path in trace_sources):
            trace_counters = merge_traces(
                trace_sources, os.path.join(dest_cache_dir, TRACE_BASENAME)
            )
            counters["trace_events"] = trace_counters["events"]
            counters["trace_quarantined"] = trace_counters["quarantined"]
        result = load_merged_result(
            manifest, dest_cache_dir, require_complete=require_complete
        )
        if span is not None:
            span.note("results", counters["results"])
            span.note("duplicates", counters["duplicates"])
            span.note("quarantined", counters["quarantined"])
    return result, counters
