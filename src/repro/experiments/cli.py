"""``repro-sweep``: run a scenario matrix from the command line.

Examples::

    repro-sweep smoke                       # predefined 2x2x2 smoke matrix
    repro-sweep baselines --max-workers 8   # parallel baseline sweep
    repro-sweep --spec sweep.yaml --cache-dir .sweep-cache
    repro-sweep trained-next --cache-dir .sweep-cache   # paper protocol
    repro-sweep trained-next --pretrained --train-episodes 2  # smaller budget
    repro-sweep federated --devices 4 --rounds 3  # device-fleet training
    repro-sweep --list                      # show predefined matrices
    repro-sweep --list-artifacts --cache-dir .sweep-cache

Distributed sweeps split one matrix across machines (see
:mod:`repro.experiments.distributed`)::

    repro-sweep shard plan baselines --shards 4 --plan-dir sweep/
    repro-sweep shard run --manifest sweep/shard-manifest.json --shard-index 0
    repro-sweep shard status --manifest sweep/shard-manifest.json
    repro-sweep shard merge --manifest sweep/shard-manifest.json \
        --cache-dir merged-cache

The command prints per-cell progress (with an estimated-remaining-time
readout from the shard cost model), the workload x governor mean-metric
table, per-axis marginal savings and any failures, and exits non-zero if any
cell failed.  Sweeps with pretrained cells additionally report how many
agents were trained versus served from the artifact store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.aggregate import condition_table, marginal_table
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.distributed import (
    MANIFEST_FILENAME,
    CostModel,
    RemainingCost,
    ShardManifest,
    amortised_cell_costs,
    merge_shards,
    plan_shards,
    run_shard,
    shard_directory,
    shard_status,
)
from repro.obs.export import export_chrome_trace
from repro.obs.progress import ProgressTracker
from repro.obs.report import render_text, report_payload
from repro.obs.trace import (
    TRACE_BASENAME,
    activate_tracing,
    deactivate_tracing,
    read_trace,
)
from repro.experiments.federated import FleetStore, fleet_convergence_table
from repro.experiments.matrix import (
    NAMED_MATRICES,
    ScenarioMatrix,
    TrainingVariant,
    named_matrix,
)
from repro.experiments.runner import (
    CellResult,
    SweepResult,
    SweepRunner,
    default_artifact_dir,
)
from repro.reliability.faults import FaultPlan, activate_fault_plan
from repro.reliability.retry import RetryPolicy
from repro.reliability.watchdog import WatchdogPolicy


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run a factorial governor/workload/platform/seed sweep.",
        epilog=(
            "Distributed sweeps: 'repro-sweep shard plan|run|merge|status' "
            "splits one matrix across machines (see 'repro-sweep shard --help')."
        ),
    )
    parser.add_argument(
        "matrix",
        nargs="?",
        help=f"predefined matrix name ({', '.join(sorted(NAMED_MATRICES))})",
    )
    parser.add_argument(
        "--spec",
        help="path to a YAML/JSON matrix description (instead of a named matrix)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help="process-pool size; 1 runs sequentially in-process (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (re-runs skip completed cells)",
    )
    parser.add_argument(
        "--artifact-dir",
        help=(
            "directory for trained-agent artifacts "
            "(default: <cache-dir>/artifacts when --cache-dir is given)"
        ),
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help=(
            "replace the matrix's training axis with one pretrained variant: "
            "learning governors are trained once per distinct spec and "
            "evaluated greedily (the paper's fully-trained protocol)"
        ),
    )
    parser.add_argument(
        "--train-episodes",
        type=int,
        default=None,
        help="episodes per app for --pretrained training (default: 6)",
    )
    parser.add_argument(
        "--train-duration",
        type=float,
        default=None,
        help="episode duration in seconds for --pretrained training (default: 60)",
    )
    parser.add_argument(
        "--train-seed",
        type=int,
        default=None,
        help="base training seed for --pretrained training (default: 0)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        help="override the fleet size of the matrix's federated training variant(s)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help=(
            "override the federated round count of the matrix's federated "
            "training variant(s)"
        ),
    )
    parser.add_argument(
        "--fleet-seed",
        type=int,
        default=None,
        help="override the fleet seed of the matrix's federated training variant(s)",
    )
    parser.add_argument(
        "--device-intensities",
        default=None,
        metavar="W1,W2,...",
        help=(
            "comma-separated per-device interaction-intensity weights for the "
            "matrix's federated training variant(s); one positive float per "
            "device, scaling that device's episode budget (non-IID fleet)"
        ),
    )
    parser.add_argument(
        "--list-artifacts",
        action="store_true",
        help=(
            "list stored trained-agent and fleet artifacts "
            "(needs --artifact-dir or --cache-dir)"
        ),
    )
    parser.add_argument(
        "--metric",
        default="average_power_w",
        help="summary metric for the comparison table (default: average_power_w)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline governor for marginal savings (default: schedutil)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list predefined matrices and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "append a span trace of the run to PATH (JSONL; inspect with "
            "'repro-sweep report PATH'); results are bit-identical with "
            "tracing on or off"
        ),
    )
    _add_fault_tolerance_flags(parser)
    return parser


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by plain runs and ``shard run``."""
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON|PATH",
        help=(
            "activate a deterministic fault-injection plan (inline JSON or a "
            "path to a JSON file) for chaos testing; see repro.reliability"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "max retries per cell/artifact for transient failures "
            "(default: 2; deterministic failures are never retried)"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "flat per-cell watchdog budget in seconds, overriding the "
            "cost-model-derived budget; hung cells are rescheduled"
        ),
    )


def _fault_tolerance_from_args(
    args: argparse.Namespace,
) -> Tuple[Optional[RetryPolicy], Optional[WatchdogPolicy]]:
    """Resolve the shared fault-tolerance flags, activating any fault plan.

    Activation exports the plan through ``REPRO_FAULT_PLAN``, so pool
    workers spawned later inherit it.  Returns ``(retry_policy, watchdog)``
    with ``None`` entries meaning "use the runner's defaults".
    """
    if args.fault_plan:
        activate_fault_plan(FaultPlan.parse(args.fault_plan))
    retry_policy = None
    if args.max_retries is not None:
        if args.max_retries < 0:
            raise SystemExit("--max-retries must be non-negative")
        retry_policy = RetryPolicy(max_retries=args.max_retries)
    watchdog = None
    if args.cell_timeout is not None:
        if args.cell_timeout <= 0:
            raise SystemExit("--cell-timeout must be positive")
        watchdog = WatchdogPolicy(cell_timeout_s=args.cell_timeout)
    return retry_policy, watchdog


def _validate_metric(metric: str) -> None:
    """Reject unknown metric names before any cell has been computed."""
    import typing

    from repro.sim.recorder import SummaryStatistics

    # Derive the scalar fields from the dataclass types so a future
    # dict-valued summary field can never slip past this guard.
    hints = typing.get_type_hints(SummaryStatistics)
    scalar_metrics = sorted(
        name for name, hint in hints.items() if hint in (float, int)
    ) + ["frame_delivery_ratio"]
    if metric not in scalar_metrics:
        raise ValueError(f"unknown metric {metric!r}; available: {scalar_metrics}")


def _matrix_from_args(args: argparse.Namespace) -> ScenarioMatrix:
    """The name-or-``--spec`` resolution shared by plain runs and shard plan."""
    if args.spec and args.matrix:
        raise ValueError(
            f"got both matrix name {args.matrix!r} and --spec {args.spec!r}; "
            "give exactly one"
        )
    if args.spec:
        return ScenarioMatrix.from_file(args.spec)
    if args.matrix:
        return named_matrix(args.matrix)
    raise ValueError("give a matrix name or --spec FILE (see --list)")


def _resolve_matrix(args: argparse.Namespace) -> ScenarioMatrix:
    matrix = _matrix_from_args(args)
    train_flags = {
        "--train-episodes": args.train_episodes,
        "--train-duration": args.train_duration,
        "--train-seed": args.train_seed,
    }
    if args.pretrained:
        # Replace (not extend) the training axis: matrix validation rejects
        # the override when no trainable governor is on the governors axis.
        variant = TrainingVariant(
            key="pretrained",
            mode="pretrained",
            episodes=6 if args.train_episodes is None else args.train_episodes,
            episode_duration_s=(
                60.0 if args.train_duration is None else args.train_duration
            ),
            seed=0 if args.train_seed is None else args.train_seed,
        )
        matrix = replace(matrix, training=(variant,))
    else:
        given = sorted(name for name, value in train_flags.items() if value is not None)
        if given:
            # A named matrix or spec file carries its own training axis; a
            # silently ignored budget flag would misreport the experiment.
            raise ValueError(
                f"{', '.join(given)} only take effect together with --pretrained"
            )
    intensities: Optional[Tuple[float, ...]] = None
    if args.device_intensities is not None:
        try:
            intensities = tuple(
                float(field) for field in args.device_intensities.split(",")
            )
        except ValueError:
            raise ValueError(
                "--device-intensities takes comma-separated floats, got "
                f"{args.device_intensities!r}"
            ) from None
    fleet_flags = {
        "--devices": args.devices,
        "--rounds": args.rounds,
        "--fleet-seed": args.fleet_seed,
        "--device-intensities": intensities,
    }
    given = sorted(name for name, value in fleet_flags.items() if value is not None)
    if given:
        if not any(variant.federated for variant in matrix.training):
            # Same principle as the --train-* flags: a silently ignored
            # fleet-shape flag would misreport the experiment.
            raise ValueError(
                f"{', '.join(given)} only take effect on a matrix with a "
                "federated training variant (e.g. the 'federated' named matrix)"
            )
        matrix = replace(
            matrix,
            training=tuple(
                replace(
                    variant,
                    devices=(
                        variant.devices if args.devices is None else args.devices
                    ),
                    rounds=variant.rounds if args.rounds is None else args.rounds,
                    seed=variant.seed if args.fleet_seed is None else args.fleet_seed,
                    device_intensities=(
                        variant.device_intensities
                        if intensities is None
                        else intensities
                    ),
                )
                if variant.federated
                else variant
                for variant in matrix.training
            ),
        )
    return matrix


def _list_artifacts(args: argparse.Namespace) -> int:
    directory = args.artifact_dir or default_artifact_dir(args.cache_dir)
    if directory is None:
        raise ValueError("--list-artifacts needs --artifact-dir or --cache-dir")
    entries = ArtifactStore(directory).entries()
    fleet_entries = FleetStore(directory).entries()
    if not entries and not fleet_entries:
        print(f"no artifacts in {directory}")
        return 0
    for artifact in entries:
        spec = artifact.spec
        episodes_run = sum(
            int(result.get("episodes", 0)) for result in artifact.training_results
        )
        print(
            f"{artifact.fingerprint}  apps={','.join(spec.apps)} "
            f"platform={spec.platform} episodes={spec.episodes}"
            f"x{spec.episode_duration_s:g}s seed={spec.seed} "
            f"(ran {episodes_run} episodes)"
        )
    for fleet in fleet_entries:
        spec = fleet.spec
        print(
            f"{fleet.fingerprint}  fleet apps={','.join(spec.apps)} "
            f"platform={spec.platform} devices={spec.devices} "
            f"rounds={spec.rounds} episodes={spec.episodes}"
            f"x{spec.episode_duration_s:g}s seed={spec.fleet_seed}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output consumer (e.g. `| head`) closed the pipe early.  Point stdout
        # at devnull so the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        # Completed cells were cached as they finished (and an interrupted
        # shard flushed its status file), so nothing is lost: the same
        # invocation picks up where this one stopped.
        print(
            "repro-sweep: interrupted -- resume by re-running the same "
            "command (completed cells are cached)",
            file=sys.stderr,
        )
        return 130
    except (ValueError, TypeError, KeyError, OSError, RuntimeError) as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return 2


def _progress_tracker(
    costs: Dict[str, float], workers: int = 1, emit: bool = True
) -> ProgressTracker:
    """The CLI's delivery accounting: cost-model ETAs plus retry counters.

    ``costs`` holds the amortised cost estimate per cell fingerprint (the
    shard cost model); the tracker subtracts each delivered cell once, so
    the ETA reflects the work that is actually left rather than a naive
    done/total extrapolation that training-heavy cells would skew.  See
    :class:`repro.obs.progress.ProgressTracker` for the effective-parallelism
    clamp and the retry/quarantine bookkeeping the final summary prints.
    """
    return ProgressTracker(RemainingCost(costs), workers=workers, emit=emit)


def _progress_printer(quiet: bool, tracker: ProgressTracker, prefix: str = ""):
    """Per-cell progress lines fed from the shared progress tracker.

    One source of truth: the printer formats the same
    :class:`~repro.obs.progress.ProgressEvent` that the shard status writer
    counts and the run trace records, so what the terminal shows can never
    drift from what ``repro-sweep report`` replays.
    """

    def progress(done: int, total: int, result: CellResult) -> None:
        event = tracker.note(done, total, result)
        if not quiet:
            print(event.format_line(prefix))

    return progress


def _resolve_baseline(matrix: ScenarioMatrix, requested: Optional[str]) -> str:
    """Validate and resolve the savings baseline, shared by run and merge.

    An explicitly requested baseline must exist on the governors axis; the
    implicit schedutil default merely suppresses marginal tables on matrices
    that lack it.  Either way a baseline spanning several training variants
    is rejected up front -- paired savings against it would be ambiguous,
    and discovering that only at reporting time wastes the whole sweep (or
    merge).
    """
    if requested is not None and requested not in matrix.governors:
        raise ValueError(
            f"baseline governor {requested!r} is not on the governors axis; "
            f"available: {list(matrix.governors)}"
        )
    baseline = requested or "schedutil"
    if baseline in matrix.governors and len(matrix.variants_for(baseline)) > 1:
        raise ValueError(
            f"baseline governor {baseline!r} expands across "
            f"{len(matrix.variants_for(baseline))} training variants, so paired "
            "savings would be ambiguous; pick a single-variant baseline or "
            "restrict the training axis"
        )
    return baseline


def _print_sweep_report(
    matrix: ScenarioMatrix, sweep: SweepResult, metric: str, baseline: str
) -> None:
    """The aggregate report block shared by plain runs and shard merges."""
    print()
    print(condition_table(sweep, metric=metric))
    if baseline in matrix.governors and len(matrix.governors) > 1:
        # Marginalising over a single-value axis is a no-op table; only show
        # the axes the design actually varies.
        axis_sizes = {
            "governor": len(matrix.governors),
            "workload": len(matrix.workloads),
            "platform": len(matrix.platforms),
            "training": len(matrix.training),
        }
        for axis, size in axis_sizes.items():
            if size > 1:
                print()
                print(
                    marginal_table(sweep, axis=axis, metric=metric, baseline=baseline)
                )
    print()
    print(
        f"{len(sweep.completed)}/{len(sweep)} cells ok, "
        f"{sweep.cached_count} from cache, {len(sweep.failures)} failed"
    )


def _print_failures(sweep: SweepResult) -> None:
    for failure in sweep.failures:
        print(f"\nFAILED {failure.cell.label()}:\n{failure.error}")


def _run(argv: Optional[List[str]]) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "shard":
        # Distributed sharding has its own verb-based surface; everything
        # else keeps the original single-command grammar.
        return _run_shard_command(argv[1:])
    if argv and argv[0] == "report":
        return _run_report_command(argv[1:])
    args = build_parser().parse_args(argv)

    if args.list:
        for name in sorted(NAMED_MATRICES):
            matrix = named_matrix(name)
            training = ""
            if any(variant.trains for variant in matrix.training):
                training = f" x {len(matrix.training)} training"
            print(
                f"{name}: {len(matrix.governors)} governors x "
                f"{len(matrix.workloads)} workloads x "
                f"{len(matrix.platforms)} platforms x "
                f"{len(matrix.seeds)} seeds{training} = {len(matrix)} cells"
            )
        return 0

    if args.list_artifacts:
        return _list_artifacts(args)

    matrix = _resolve_matrix(args)
    _validate_metric(args.metric)
    baseline = _resolve_baseline(matrix, args.baseline)
    training = (
        f" x {len(matrix.training)} training" if len(matrix.training) > 1 else ""
    )
    costs = amortised_cell_costs(matrix.cells())
    print(
        f"Sweep '{matrix.name}': {len(matrix)} cells "
        f"({len(matrix.governors)} governors x {len(matrix.workloads)} workloads "
        f"x {len(matrix.platforms)} platforms x {len(matrix.seeds)} seeds"
        f"{training}), max_workers={args.max_workers}, "
        f"estimated ~{sum(costs.values()):.1f}s"
    )

    retry_policy, watchdog = _fault_tolerance_from_args(args)
    runner = SweepRunner(
        max_workers=args.max_workers,
        cache_dir=args.cache_dir,
        artifact_dir=args.artifact_dir,
        retry_policy=retry_policy,
        watchdog=watchdog,
    )
    tracker = _progress_tracker(costs, workers=args.max_workers)
    if args.trace:
        activate_tracing(args.trace)
    try:
        sweep = runner.run(
            matrix,
            progress=_progress_printer(args.quiet, tracker),
        )
    finally:
        if args.trace:
            deactivate_tracing()

    _print_sweep_report(matrix, sweep, args.metric, baseline)
    if tracker.retries_total or tracker.quarantined_total:
        # Fault-tolerance summary (PR 9 counters): printed only when
        # something actually retried, so fault-free runs keep their
        # byte-stable report block.
        print(
            f"fault tolerance: {tracker.retries_total} retried attempt(s), "
            f"{tracker.quarantined_total} cell(s) quarantined as permanent"
        )
    if args.trace:
        print(f"trace: {args.trace} (inspect with 'repro-sweep report {args.trace}')")
    cells = matrix.cells()
    if any(cell.pretrained for cell in cells):
        print(
            f"artifacts: {runner.artifacts.trained_count} trained, "
            f"{runner.artifacts.reused_count} reused"
        )
    if any(cell.federated for cell in cells):
        print(
            f"fleets: {runner.fleets.trained_count} trained, "
            f"{runner.fleets.reused_count} reused, "
            f"{runner.fleets.resumed_count} resumed"
        )
        reported = set()
        for cell in cells:
            fleet = cell.fleet_spec()
            if fleet is None or fleet.fingerprint() in reported:
                continue
            reported.add(fleet.fingerprint())
            artifact = runner.fleets.load(fleet)
            if artifact is not None:
                # Every fully cached cell can leave the fleet untrained and
                # unstored; report convergence only for fleets we can see.
                print()
                print(fleet_convergence_table(artifact))
    _print_failures(sweep)
    return 1 if sweep.failures else 0


# ----------------------------------------------------------------------------------
# Distributed sharding: repro-sweep shard plan|run|merge|status
# ----------------------------------------------------------------------------------


def build_shard_parser() -> argparse.ArgumentParser:
    """The ``repro-sweep shard`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep shard",
        description=(
            "Plan a matrix into shards, run shards (possibly on other "
            "machines), inspect their progress and merge the results back."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="partition a matrix into N shards and write the manifest"
    )
    plan.add_argument(
        "matrix",
        nargs="?",
        help=f"predefined matrix name ({', '.join(sorted(NAMED_MATRICES))})",
    )
    plan.add_argument(
        "--spec", help="path to a YAML/JSON matrix description instead"
    )
    plan.add_argument(
        "--shards", type=int, required=True, help="how many shards to plan"
    )
    plan.add_argument(
        "--plan-dir",
        default=".",
        help=f"directory for {MANIFEST_FILENAME} and the shard dirs (default: .)",
    )
    plan.add_argument(
        "--bench-report",
        default=None,
        help=(
            "BENCH_hotloop.json-shaped report to derive the cost model from "
            "(default: the committed benchmark numbers)"
        ),
    )

    run = commands.add_parser(
        "run", help="execute one shard of a planned sweep into its own directory"
    )
    run.add_argument("--manifest", required=True, help=f"path to {MANIFEST_FILENAME}")
    run.add_argument(
        "--shard-index", type=int, required=True, help="which shard to execute"
    )
    run.add_argument(
        "--shard-dir",
        default=None,
        help="shard output directory (default: shard-NNN next to the manifest)",
    )
    run.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help="process-pool size for this shard (default: 1)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    run.add_argument(
        "--trace",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help=(
            "append a span trace of this shard's run (default PATH: "
            f"<shard-dir>/{TRACE_BASENAME}, which 'shard merge' folds into "
            "the merged trace)"
        ),
    )
    _add_fault_tolerance_flags(run)

    merge = commands.add_parser(
        "merge",
        help="union the shard outputs and print the aggregate sweep report",
    )
    merge.add_argument("--manifest", required=True, help=f"path to {MANIFEST_FILENAME}")
    merge.add_argument(
        "--shard-dir",
        action="append",
        default=None,
        help=(
            "shard directory to merge (repeatable; default: every shard-NNN "
            "next to the manifest)"
        ),
    )
    merge.add_argument(
        "--cache-dir", required=True, help="destination directory for the merged cache"
    )
    merge.add_argument(
        "--allow-missing",
        action="store_true",
        help="report a partial merge instead of failing on missing cells",
    )
    merge.add_argument(
        "--metric",
        default="average_power_w",
        help="summary metric for the comparison table (default: average_power_w)",
    )
    merge.add_argument(
        "--baseline",
        default=None,
        help="baseline governor for marginal savings (default: schedutil)",
    )

    status = commands.add_parser(
        "status", help="show per-shard progress and estimated remaining time"
    )
    status.add_argument(
        "--manifest", required=True, help=f"path to {MANIFEST_FILENAME}"
    )
    status.add_argument(
        "--shard-dir",
        action="append",
        default=None,
        help=(
            "shard directory to inspect (repeatable, in shard order; "
            "default: every shard-NNN next to the manifest)"
        ),
    )
    status.add_argument(
        "--stale-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "flag running shards whose status heartbeat is older than this "
            "many seconds as STALE (likely hung or dead; re-run them)"
        ),
    )
    return parser


def _shard_dirs_for(
    args: argparse.Namespace, manifest: ShardManifest, aligned: bool = True
) -> List[str]:
    """Resolve the per-shard directories: explicit flags or manifest siblings.

    ``aligned`` demands exactly one directory per shard, in shard order --
    required by ``status``, which pairs directories with shard indices.
    ``merge`` passes ``aligned=False``: it unions whatever directories it is
    given (any subset, any order), so a partial merge of the shards that
    have landed works with custom paths too.
    """
    if args.shard_dir:
        if aligned and len(args.shard_dir) != manifest.shard_count:
            raise ValueError(
                f"got {len(args.shard_dir)} --shard-dir flags for "
                f"{manifest.shard_count} shards; give one per shard, in order"
            )
        return list(args.shard_dir)
    base_dir = os.path.dirname(os.path.abspath(args.manifest))
    return [shard_directory(base_dir, index) for index in range(manifest.shard_count)]


def _run_shard_command(argv: List[str]) -> int:
    args = build_shard_parser().parse_args(argv)

    if args.command == "plan":
        matrix = _matrix_from_args(args)
        cost_model = (
            CostModel.from_bench_file(args.bench_report)
            if args.bench_report
            else None
        )
        manifest = plan_shards(matrix, args.shards, cost_model=cost_model)
        path = os.path.join(args.plan_dir, MANIFEST_FILENAME)
        manifest.save(path)
        print(
            f"Planned {manifest.shard_count} shard(s) for '{matrix.name}' "
            f"({len(matrix)} cells, matrix {manifest.matrix_fingerprint}, "
            f"estimated ~{manifest.total_cost_s():.1f}s of work):"
        )
        for index, shard in enumerate(manifest.assignments):
            print(
                f"  shard {index}: {len(shard)} cells, "
                f"~{manifest.shard_cost_s(index):.1f}s"
            )
        print(f"wrote {path}")
        return 0

    manifest = ShardManifest.load(args.manifest)

    if args.command == "run":
        shard_dir = args.shard_dir
        if shard_dir is None:
            base_dir = os.path.dirname(os.path.abspath(args.manifest))
            shard_dir = shard_directory(base_dir, args.shard_index)
        cells = manifest.shard_cells(args.shard_index)
        print(
            f"Shard {args.shard_index}/{manifest.shard_count} of "
            f"'{manifest.matrix.name}': {len(cells)} cells into {shard_dir}, "
            f"estimated ~{manifest.shard_cost_s(args.shard_index):.1f}s"
        )
        costs = {
            fingerprint: manifest.cell_costs[fingerprint]
            for fingerprint in manifest.assignments[args.shard_index]
        }
        retry_policy, _ = _fault_tolerance_from_args(args)
        # run_shard's own tracker records progress events in the trace;
        # the printer's copy only formats lines (emit=False avoids
        # double-recording every delivery).
        tracker = _progress_tracker(costs, workers=args.max_workers, emit=False)
        trace_path = args.trace
        if trace_path == "auto":
            trace_path = os.path.join(shard_dir, TRACE_BASENAME)
        if trace_path:
            activate_tracing(trace_path)
        try:
            sweep = run_shard(
                manifest,
                args.shard_index,
                shard_dir,
                max_workers=args.max_workers,
                progress=_progress_printer(
                    args.quiet, tracker, prefix=f"s{args.shard_index} "
                ),
                retry_policy=retry_policy,
                cell_timeout_s=args.cell_timeout,
            )
        finally:
            if trace_path:
                deactivate_tracing()
        retries = ""
        if tracker.retries_total or tracker.quarantined_total:
            retries = (
                f", {tracker.retries_total} retried attempt(s), "
                f"{tracker.quarantined_total} quarantined"
            )
        print(
            f"shard {args.shard_index}: {len(sweep.completed)}/{len(sweep)} cells "
            f"ok, {sweep.cached_count} from cache, "
            f"{len(sweep.failures)} failed{retries}"
        )
        if trace_path:
            print(f"trace: {trace_path}")
        _print_failures(sweep)
        return 1 if sweep.failures else 0

    if args.command == "status":
        cells_by_fingerprint = manifest.cells_by_fingerprint()
        statuses = [
            shard_status(
                manifest,
                index,
                shard_dir,
                cells_by_fingerprint=cells_by_fingerprint,
                stale_after_s=args.stale_after,
            )
            for index, shard_dir in enumerate(_shard_dirs_for(args, manifest))
        ]
        print(
            f"Shard plan for '{manifest.matrix.name}' "
            f"(matrix {manifest.matrix_fingerprint}, "
            f"{sum(s.total for s in statuses)} cells, "
            f"{manifest.shard_count} shards):"
        )
        for status in statuses:
            retries = (
                f", {status.attempts} retries" if status.attempts else ""
            )
            if status.quarantined:
                retries += f", {status.quarantined} quarantined"
            liveness = ""
            if status.stale:
                age = (
                    f"heartbeat {status.heartbeat_age_s:.0f}s old"
                    if status.heartbeat_age_s is not None
                    else "no heartbeat"
                )
                liveness = f" STALE ({age}; likely dead, re-run)"
            print(
                f"  shard {status.shard}: {status.state:8s} "
                f"{status.completed}/{status.total} cells, "
                f"{status.failed} failed{retries}, "
                f"~{status.remaining_s:.1f}s left "
                f"({status.directory}){liveness}"
            )
        done = sum(s.completed for s in statuses)
        total = sum(s.total for s in statuses)
        stale_count = sum(1 for s in statuses if s.stale)
        print(
            f"total: {done}/{total} cells done, "
            f"~{sum(s.remaining_s for s in statuses):.1f}s left"
            + (f", {stale_count} stale shard(s)" if stale_count else "")
        )
        return 0

    # merge
    _validate_metric(args.metric)
    matrix = manifest.matrix
    # Same preflight as the plain run path: fail with the curated message
    # before touching any shard, not mid-report.
    baseline = _resolve_baseline(matrix, args.baseline)
    sweep, counters = merge_shards(
        manifest,
        _shard_dirs_for(args, manifest, aligned=False),
        args.cache_dir,
        require_complete=not args.allow_missing,
    )
    quarantined = (
        f", {counters['quarantined']} torn entries quarantined"
        if counters.get("quarantined")
        else ""
    )
    print(
        f"merged {counters['results']} results, {counters['artifacts']} "
        f"artifacts, {counters['fleets']} fleets into {args.cache_dir} "
        f"({counters['duplicates']} identical duplicates skipped{quarantined})"
    )
    if "trace_events" in counters:
        merged_trace = os.path.join(args.cache_dir, TRACE_BASENAME)
        print(
            f"merged trace: {counters['trace_events']} events into "
            f"{merged_trace} (inspect with 'repro-sweep report {merged_trace}')"
        )
    _print_sweep_report(matrix, sweep, args.metric, baseline)
    if len(sweep) < len(matrix.cells()):
        print(f"partial merge: {len(matrix.cells()) - len(sweep)} cells missing")
    _print_failures(sweep)
    if sweep.failures:
        return 1
    # Missing cells only surface here under --allow-missing, whose purpose
    # is exactly this preview -- a requested partial report is a success.
    return 0


# ----------------------------------------------------------------------------------
# Trace reporting: repro-sweep report <trace.jsonl>
# ----------------------------------------------------------------------------------


def build_report_parser() -> argparse.ArgumentParser:
    """The ``repro-sweep report`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep report",
        description=(
            "Render the span timeline, metrics and hot-loop profile of a "
            "traced run (a trace.jsonl written by --trace, or the merged "
            "trace a 'shard merge' produces)."
        ),
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--export-chrome",
        default=None,
        metavar="PATH",
        help=(
            "additionally write a Chrome trace-event file loadable in "
            "Perfetto / chrome://tracing"
        ),
    )
    return parser


def _run_report_command(argv: List[str]) -> int:
    args = build_report_parser().parse_args(argv)
    events, torn = read_trace(args.trace)
    if args.format == "json":
        print(json.dumps(report_payload(events, torn), indent=2, sort_keys=True))
    else:
        print(render_text(events, torn))
    if args.export_chrome:
        export_chrome_trace(events, args.export_chrome)
        print(f"wrote Chrome trace to {args.export_chrome}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
