"""``repro-sweep``: run a scenario matrix from the command line.

Examples::

    repro-sweep smoke                       # predefined 2x2x2 smoke matrix
    repro-sweep baselines --max-workers 8   # parallel baseline sweep
    repro-sweep --spec sweep.yaml --cache-dir .sweep-cache
    repro-sweep --list                      # show predefined matrices

The command prints per-cell progress, the workload x governor mean-metric
table, per-axis marginal savings and any failures, and exits non-zero if any
cell failed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.aggregate import condition_table, marginal_table
from repro.experiments.matrix import NAMED_MATRICES, ScenarioMatrix, named_matrix
from repro.experiments.runner import CellResult, SweepRunner


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run a factorial governor/workload/platform/seed sweep.",
    )
    parser.add_argument(
        "matrix",
        nargs="?",
        help=f"predefined matrix name ({', '.join(sorted(NAMED_MATRICES))})",
    )
    parser.add_argument(
        "--spec",
        help="path to a YAML/JSON matrix description (instead of a named matrix)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help="process-pool size; 1 runs sequentially in-process (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (re-runs skip completed cells)",
    )
    parser.add_argument(
        "--metric",
        default="average_power_w",
        help="summary metric for the comparison table (default: average_power_w)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline governor for marginal savings (default: schedutil)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list predefined matrices and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    return parser


def _validate_metric(metric: str) -> None:
    """Reject unknown metric names before any cell has been computed."""
    import typing

    from repro.sim.recorder import SummaryStatistics

    # Derive the scalar fields from the dataclass types so a future
    # dict-valued summary field can never slip past this guard.
    hints = typing.get_type_hints(SummaryStatistics)
    scalar_metrics = sorted(
        name for name, hint in hints.items() if hint in (float, int)
    ) + ["frame_delivery_ratio"]
    if metric not in scalar_metrics:
        raise ValueError(f"unknown metric {metric!r}; available: {scalar_metrics}")


def _resolve_matrix(args: argparse.Namespace) -> ScenarioMatrix:
    if args.spec and args.matrix:
        raise ValueError(
            f"got both matrix name {args.matrix!r} and --spec {args.spec!r}; "
            "give exactly one"
        )
    if args.spec:
        return ScenarioMatrix.from_file(args.spec)
    if args.matrix:
        return named_matrix(args.matrix)
    raise ValueError("give a matrix name or --spec FILE (see --list)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output consumer (e.g. `| head`) closed the pipe early.  Point stdout
        # at devnull so the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ValueError, TypeError, KeyError, OSError, RuntimeError) as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return 2


def _run(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for name in sorted(NAMED_MATRICES):
            matrix = named_matrix(name)
            print(
                f"{name}: {len(matrix.governors)} governors x "
                f"{len(matrix.workloads)} workloads x "
                f"{len(matrix.platforms)} platforms x "
                f"{len(matrix.seeds)} seeds = {len(matrix)} cells"
            )
        return 0

    matrix = _resolve_matrix(args)
    _validate_metric(args.metric)
    # An explicitly requested baseline must exist; the implicit schedutil
    # default merely suppresses marginal tables on matrices that lack it.
    if args.baseline is not None and args.baseline not in matrix.governors:
        raise ValueError(
            f"baseline governor {args.baseline!r} is not on the governors axis; "
            f"available: {list(matrix.governors)}"
        )
    baseline = args.baseline or "schedutil"
    print(
        f"Sweep '{matrix.name}': {len(matrix)} cells "
        f"({len(matrix.governors)} governors x {len(matrix.workloads)} workloads "
        f"x {len(matrix.platforms)} platforms x {len(matrix.seeds)} seeds), "
        f"max_workers={args.max_workers}"
    )

    def progress(done: int, total: int, result: CellResult) -> None:
        if args.quiet:
            return
        origin = "cached" if result.from_cache else f"{result.elapsed_s:.1f}s"
        print(f"  [{done}/{total}] {result.status:5s} {result.cell.label()} ({origin})")

    runner = SweepRunner(max_workers=args.max_workers, cache_dir=args.cache_dir)
    sweep = runner.run(matrix, progress=progress)

    print()
    print(condition_table(sweep, metric=args.metric))
    if baseline in matrix.governors and len(matrix.governors) > 1:
        # Marginalising over a single-value axis is a no-op table; only show
        # the axes the design actually varies.
        axis_sizes = {
            "governor": len(matrix.governors),
            "workload": len(matrix.workloads),
            "platform": len(matrix.platforms),
        }
        for axis, size in axis_sizes.items():
            if size > 1:
                print()
                print(
                    marginal_table(
                        sweep, axis=axis, metric=args.metric, baseline=baseline
                    )
                )

    print()
    print(
        f"{len(sweep.completed)}/{len(sweep)} cells ok, "
        f"{sweep.cached_count} from cache, {len(sweep.failures)} failed"
    )
    for failure in sweep.failures:
        print(f"\nFAILED {failure.cell.label()}:\n{failure.error}")
    return 1 if sweep.failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
