"""``repro-sweep``: run a scenario matrix from the command line.

Examples::

    repro-sweep smoke                       # predefined 2x2x2 smoke matrix
    repro-sweep baselines --max-workers 8   # parallel baseline sweep
    repro-sweep --spec sweep.yaml --cache-dir .sweep-cache
    repro-sweep trained-next --cache-dir .sweep-cache   # paper protocol
    repro-sweep trained-next --pretrained --train-episodes 2  # smaller budget
    repro-sweep federated --devices 4 --rounds 3  # device-fleet training
    repro-sweep --list                      # show predefined matrices
    repro-sweep --list-artifacts --cache-dir .sweep-cache

The command prints per-cell progress, the workload x governor mean-metric
table, per-axis marginal savings and any failures, and exits non-zero if any
cell failed.  Sweeps with pretrained cells additionally report how many
agents were trained versus served from the artifact store.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional

from repro.experiments.aggregate import condition_table, marginal_table
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.federated import FleetStore, fleet_convergence_table
from repro.experiments.matrix import (
    NAMED_MATRICES,
    ScenarioMatrix,
    TrainingVariant,
    named_matrix,
)
from repro.experiments.runner import CellResult, SweepRunner, default_artifact_dir


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sweep`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run a factorial governor/workload/platform/seed sweep.",
    )
    parser.add_argument(
        "matrix",
        nargs="?",
        help=f"predefined matrix name ({', '.join(sorted(NAMED_MATRICES))})",
    )
    parser.add_argument(
        "--spec",
        help="path to a YAML/JSON matrix description (instead of a named matrix)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=1,
        help="process-pool size; 1 runs sequentially in-process (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (re-runs skip completed cells)",
    )
    parser.add_argument(
        "--artifact-dir",
        help=(
            "directory for trained-agent artifacts "
            "(default: <cache-dir>/artifacts when --cache-dir is given)"
        ),
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help=(
            "replace the matrix's training axis with one pretrained variant: "
            "learning governors are trained once per distinct spec and "
            "evaluated greedily (the paper's fully-trained protocol)"
        ),
    )
    parser.add_argument(
        "--train-episodes",
        type=int,
        default=None,
        help="episodes per app for --pretrained training (default: 6)",
    )
    parser.add_argument(
        "--train-duration",
        type=float,
        default=None,
        help="episode duration in seconds for --pretrained training (default: 60)",
    )
    parser.add_argument(
        "--train-seed",
        type=int,
        default=None,
        help="base training seed for --pretrained training (default: 0)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        help="override the fleet size of the matrix's federated training variant(s)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help=(
            "override the federated round count of the matrix's federated "
            "training variant(s)"
        ),
    )
    parser.add_argument(
        "--fleet-seed",
        type=int,
        default=None,
        help="override the fleet seed of the matrix's federated training variant(s)",
    )
    parser.add_argument(
        "--list-artifacts",
        action="store_true",
        help=(
            "list stored trained-agent and fleet artifacts "
            "(needs --artifact-dir or --cache-dir)"
        ),
    )
    parser.add_argument(
        "--metric",
        default="average_power_w",
        help="summary metric for the comparison table (default: average_power_w)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline governor for marginal savings (default: schedutil)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list predefined matrices and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    return parser


def _validate_metric(metric: str) -> None:
    """Reject unknown metric names before any cell has been computed."""
    import typing

    from repro.sim.recorder import SummaryStatistics

    # Derive the scalar fields from the dataclass types so a future
    # dict-valued summary field can never slip past this guard.
    hints = typing.get_type_hints(SummaryStatistics)
    scalar_metrics = sorted(
        name for name, hint in hints.items() if hint in (float, int)
    ) + ["frame_delivery_ratio"]
    if metric not in scalar_metrics:
        raise ValueError(f"unknown metric {metric!r}; available: {scalar_metrics}")


def _resolve_matrix(args: argparse.Namespace) -> ScenarioMatrix:
    if args.spec and args.matrix:
        raise ValueError(
            f"got both matrix name {args.matrix!r} and --spec {args.spec!r}; "
            "give exactly one"
        )
    if args.spec:
        matrix = ScenarioMatrix.from_file(args.spec)
    elif args.matrix:
        matrix = named_matrix(args.matrix)
    else:
        raise ValueError("give a matrix name or --spec FILE (see --list)")
    train_flags = {
        "--train-episodes": args.train_episodes,
        "--train-duration": args.train_duration,
        "--train-seed": args.train_seed,
    }
    if args.pretrained:
        # Replace (not extend) the training axis: matrix validation rejects
        # the override when no trainable governor is on the governors axis.
        variant = TrainingVariant(
            key="pretrained",
            mode="pretrained",
            episodes=6 if args.train_episodes is None else args.train_episodes,
            episode_duration_s=(
                60.0 if args.train_duration is None else args.train_duration
            ),
            seed=0 if args.train_seed is None else args.train_seed,
        )
        matrix = replace(matrix, training=(variant,))
    else:
        given = sorted(name for name, value in train_flags.items() if value is not None)
        if given:
            # A named matrix or spec file carries its own training axis; a
            # silently ignored budget flag would misreport the experiment.
            raise ValueError(
                f"{', '.join(given)} only take effect together with --pretrained"
            )
    fleet_flags = {
        "--devices": args.devices,
        "--rounds": args.rounds,
        "--fleet-seed": args.fleet_seed,
    }
    given = sorted(name for name, value in fleet_flags.items() if value is not None)
    if given:
        if not any(variant.federated for variant in matrix.training):
            # Same principle as the --train-* flags: a silently ignored
            # fleet-shape flag would misreport the experiment.
            raise ValueError(
                f"{', '.join(given)} only take effect on a matrix with a "
                "federated training variant (e.g. the 'federated' named matrix)"
            )
        matrix = replace(
            matrix,
            training=tuple(
                replace(
                    variant,
                    devices=(
                        variant.devices if args.devices is None else args.devices
                    ),
                    rounds=variant.rounds if args.rounds is None else args.rounds,
                    seed=variant.seed if args.fleet_seed is None else args.fleet_seed,
                )
                if variant.federated
                else variant
                for variant in matrix.training
            ),
        )
    return matrix


def _list_artifacts(args: argparse.Namespace) -> int:
    directory = args.artifact_dir or default_artifact_dir(args.cache_dir)
    if directory is None:
        raise ValueError("--list-artifacts needs --artifact-dir or --cache-dir")
    entries = ArtifactStore(directory).entries()
    fleet_entries = FleetStore(directory).entries()
    if not entries and not fleet_entries:
        print(f"no artifacts in {directory}")
        return 0
    for artifact in entries:
        spec = artifact.spec
        episodes_run = sum(
            int(result.get("episodes", 0)) for result in artifact.training_results
        )
        print(
            f"{artifact.fingerprint}  apps={','.join(spec.apps)} "
            f"platform={spec.platform} episodes={spec.episodes}"
            f"x{spec.episode_duration_s:g}s seed={spec.seed} "
            f"(ran {episodes_run} episodes)"
        )
    for fleet in fleet_entries:
        spec = fleet.spec
        print(
            f"{fleet.fingerprint}  fleet apps={','.join(spec.apps)} "
            f"platform={spec.platform} devices={spec.devices} "
            f"rounds={spec.rounds} episodes={spec.episodes}"
            f"x{spec.episode_duration_s:g}s seed={spec.fleet_seed}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _run(argv)
    except BrokenPipeError:
        # Output consumer (e.g. `| head`) closed the pipe early.  Point stdout
        # at devnull so the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ValueError, TypeError, KeyError, OSError, RuntimeError) as exc:
        print(f"repro-sweep: error: {exc}", file=sys.stderr)
        return 2


def _run(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for name in sorted(NAMED_MATRICES):
            matrix = named_matrix(name)
            training = ""
            if any(variant.trains for variant in matrix.training):
                training = f" x {len(matrix.training)} training"
            print(
                f"{name}: {len(matrix.governors)} governors x "
                f"{len(matrix.workloads)} workloads x "
                f"{len(matrix.platforms)} platforms x "
                f"{len(matrix.seeds)} seeds{training} = {len(matrix)} cells"
            )
        return 0

    if args.list_artifacts:
        return _list_artifacts(args)

    matrix = _resolve_matrix(args)
    _validate_metric(args.metric)
    # An explicitly requested baseline must exist; the implicit schedutil
    # default merely suppresses marginal tables on matrices that lack it.
    if args.baseline is not None and args.baseline not in matrix.governors:
        raise ValueError(
            f"baseline governor {args.baseline!r} is not on the governors axis; "
            f"available: {list(matrix.governors)}"
        )
    baseline = args.baseline or "schedutil"
    if baseline in matrix.governors and len(matrix.variants_for(baseline)) > 1:
        # Fail before the sweep runs: paired savings against a baseline that
        # expands across several training variants would be ambiguous, and
        # discovering that only at reporting time wastes the whole sweep.
        raise ValueError(
            f"baseline governor {baseline!r} expands across "
            f"{len(matrix.variants_for(baseline))} training variants, so paired "
            "savings would be ambiguous; pick a single-variant baseline or "
            "restrict the training axis"
        )
    training = (
        f" x {len(matrix.training)} training" if len(matrix.training) > 1 else ""
    )
    print(
        f"Sweep '{matrix.name}': {len(matrix)} cells "
        f"({len(matrix.governors)} governors x {len(matrix.workloads)} workloads "
        f"x {len(matrix.platforms)} platforms x {len(matrix.seeds)} seeds"
        f"{training}), max_workers={args.max_workers}"
    )

    def progress(done: int, total: int, result: CellResult) -> None:
        if args.quiet:
            return
        origin = "cached" if result.from_cache else f"{result.elapsed_s:.1f}s"
        print(f"  [{done}/{total}] {result.status:5s} {result.cell.label()} ({origin})")

    runner = SweepRunner(
        max_workers=args.max_workers,
        cache_dir=args.cache_dir,
        artifact_dir=args.artifact_dir,
    )
    sweep = runner.run(matrix, progress=progress)

    print()
    print(condition_table(sweep, metric=args.metric))
    if baseline in matrix.governors and len(matrix.governors) > 1:
        # Marginalising over a single-value axis is a no-op table; only show
        # the axes the design actually varies.
        axis_sizes = {
            "governor": len(matrix.governors),
            "workload": len(matrix.workloads),
            "platform": len(matrix.platforms),
            "training": len(matrix.training),
        }
        for axis, size in axis_sizes.items():
            if size > 1:
                print()
                print(
                    marginal_table(
                        sweep, axis=axis, metric=args.metric, baseline=baseline
                    )
                )

    print()
    print(
        f"{len(sweep.completed)}/{len(sweep)} cells ok, "
        f"{sweep.cached_count} from cache, {len(sweep.failures)} failed"
    )
    cells = matrix.cells()
    if any(cell.pretrained for cell in cells):
        print(
            f"artifacts: {runner.artifacts.trained_count} trained, "
            f"{runner.artifacts.reused_count} reused"
        )
    if any(cell.federated for cell in cells):
        print(
            f"fleets: {runner.fleets.trained_count} trained, "
            f"{runner.fleets.reused_count} reused, "
            f"{runner.fleets.resumed_count} resumed"
        )
        reported = set()
        for cell in cells:
            fleet = cell.fleet_spec()
            if fleet is None or fleet.fingerprint() in reported:
                continue
            reported.add(fleet.fingerprint())
            artifact = runner.fleets.load(fleet)
            if artifact is not None:
                # Every fully cached cell can leave the fleet untrained and
                # unstored; report convergence only for fleets we can see.
                print()
                print(fleet_convergence_table(artifact))
    for failure in sweep.failures:
        print(f"\nFAILED {failure.cell.label()}:\n{failure.error}")
    return 1 if sweep.failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
