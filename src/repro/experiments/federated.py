"""Federated device-fleet training for the sweep harness (Section IV-C).

The paper's Next governor trains per user, but Section IV-C envisions a
cloud back-end where many devices of the same model pool their experience.
This module simulates that fleet at sweep scale:

* round 0 trains every virtual device from scratch on its own interaction
  mix.  Each device's initial training is an ordinary
  :class:`~repro.core.artifact.TrainingSpec`, so it runs through the same
  :class:`~repro.experiments.artifacts.ArtifactStore` pipeline as pretrained
  cells -- parallelised across the sweep's process pool and cached by
  fingerprint (two fleets sharing a device spec train it once),
* after every round a server-side
  :class:`~repro.core.federated.FederatedAggregator` merges the per-app
  Q-tables visit-weighted and distributes the merged tables back, and each
  following round continues *local* training from the merged tables
  (:func:`train_device_round` is the picklable per-device work unit), and
* the finished fleet freezes into a
  :class:`~repro.core.federated.FleetArtifact` -- merged greedy agent,
  per-device states and per-round convergence reports -- stored by the
  :class:`FleetStore` under the fleet fingerprint.  An artifact of the same
  *lineage* with fewer rounds is a valid resume point: deepening a fleet
  from R to R' rounds re-runs only the missing rounds and produces results
  bit-identical to training R' rounds from scratch.

Everything is a pure function of the :class:`~repro.core.federated.FleetSpec`,
so sequential, pooled and resumed runs cannot diverge -- the federated parity
tests pin that down.
"""

from __future__ import annotations

import json
import os
import traceback
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.actions import ActionSpace
from repro.core.agent import AgentConfig, NextAgent
from repro.core.artifact import TrainingSpec
from repro.core.persistence import list_entry_paths, quarantine_entry
from repro.reliability.faults import SITE_TRAIN_DEVICE_ROUND, fault_point
from repro.core.federated import (
    FederatedAggregator,
    FleetArtifact,
    FleetSpec,
    RoundReport,
)
from repro.core.governor import NextGovernor
from repro.core.qtable import QTable, QTableStore
from repro.core.seeding import derive_seed
from repro.experiments.artifacts import ArtifactStore, train_artifact
from repro.obs.trace import flush_task_metrics, maybe_span
from repro.sim.config import SimulationConfig
from repro.sim.experiment import train_next_on_apps
from repro.soc.platform import make_platform


def train_device_round(
    agent_state: Dict[str, Any],
    apps: Sequence[str],
    platform: str,
    episodes: int,
    episode_duration_s: float,
    seed: int,
    config_overrides: Tuple[Tuple[str, Any], ...] = (),
    attempt: int = 0,
) -> Dict[str, Any]:
    """One device's local-training phase of a federated round.

    Restores the device agent from its serialised state (which includes the
    merged tables the server distributed), trains it on its own app mix
    through the shared :func:`~repro.sim.experiment.train_next_on_apps`
    path, and returns the JSON-normalised post-training state.  A plain
    top-level callable over plain data: process pools run it like any cell,
    and pickling cannot change the result.

    ``attempt`` is the orchestrator's retry counter for this device job,
    consumed only by the fault-injection seam (keyed by the device's
    deterministic round seed, which identifies the job across runs); the
    returned state is a pure function of the other arguments.
    """
    try:
        with maybe_span("device_round", seed=seed, attempt=attempt):
            fault_point(SITE_TRAIN_DEVICE_ROUND, str(seed), attempt)
            agent = NextAgent.from_dict(agent_state)
            governor = NextGovernor(agent=agent)  # re-enables training
            platform_spec = make_platform(platform)
            overrides = dict(config_overrides)
            simulation_config = None
            if overrides:
                # Same override threading as train_artifact: the per-episode
                # seed is re-derived by train_next_governor.
                simulation_config = SimulationConfig(
                    refresh_hz=platform_spec.display_refresh_hz,
                    duration_s=episode_duration_s,
                    seed=seed,
                    **overrides,
                )
            train_next_on_apps(
                governor,
                tuple(apps),
                platform=platform_spec,
                episodes=episodes,
                episode_duration_s=episode_duration_s,
                seed=seed,
                config=simulation_config,
            )
            return json.loads(json.dumps(agent.to_dict()))
    finally:
        flush_task_metrics()


def batch_kernel_available() -> bool:
    """Whether the NumPy-backed batch kernel can run in this interpreter.

    The batch kernel is a pure throughput optimisation (bit-identical
    results, pinned by the batch parity suite), so callers fall back to the
    scalar per-device path when NumPy is absent rather than failing.
    """
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def train_device_rounds_batched(
    jobs: Sequence[Tuple[Any, ...]],
) -> List[Dict[str, Any]]:
    """One federated round's device jobs as a single batched step loop.

    Drop-in replacement for ``[train_device_round(*job) for job in jobs]``:
    instead of N independent simulations (one pool task per device), the
    whole fleet steps in lockstep through one
    :class:`~repro.sim.batch.BatchSimulation` per training episode, which
    amortises the per-tick Python frontend across the device axis.

    Bit-identity with the scalar path is structural: each device's episode
    seeds are derived with the same strides
    (:data:`~repro.sim.experiment.APP_SEED_STRIDE` per app,
    :data:`~repro.sim.experiment.EPISODE_SEED_STRIDE` per episode), each
    episode constructs the same fresh app model and
    :class:`~repro.sim.config.SimulationConfig`, per-device convergence
    drops a lane from later episodes exactly where the scalar loop breaks,
    and the batch kernel itself is bit-identical per lane (the batch parity
    suite pins the sample streams, the federated parity tests the merged
    agents).  Jobs of one round share platform and overrides by construction
    (:meth:`FleetBuild.round_jobs`); episode budgets and durations may differ
    per device (intensity-weighted non-IID fleets) -- mixed-duration episodes
    route through the masked heterogeneous kernel, and a lane whose budget is
    exhausted or whose agent converged simply drops out of later episodes
    instead of forcing the fleet into lockstep.
    """
    if not jobs:
        return []
    with maybe_span("device_batch", devices=len(jobs)):
        return _train_device_rounds_batched(jobs)


def _train_device_rounds_batched(
    jobs: Sequence[Tuple[Any, ...]],
) -> List[Dict[str, Any]]:
    """Span-free body of :func:`train_device_rounds_batched`."""
    from repro.sim.batch import BatchSimulation
    from repro.sim.experiment import APP_SEED_STRIDE, EPISODE_SEED_STRIDE
    from repro.workloads.apps import make_app

    platform_name = jobs[0][2]
    config_overrides = jobs[0][6]
    for job in jobs[1:]:
        if job[2] != platform_name or job[6] != config_overrides:
            raise ValueError(
                "batched round jobs must share platform and overrides "
                "(episode budgets and durations may differ per device)"
            )
    agents = [NextAgent.from_dict(job[0]) for job in jobs]
    governors = [NextGovernor(agent=agent) for agent in agents]
    platform_spec = make_platform(platform_name)
    overrides = dict(config_overrides)
    app_lists = [tuple(job[1]) for job in jobs]
    episode_budgets = [int(job[3]) for job in jobs]
    durations = [float(job[4]) for job in jobs]
    base_seeds = [job[5] for job in jobs]

    # Same convergence bar as train_next_on_apps' default, which is what
    # train_device_round (no explicit threshold) trains against.
    td_error_threshold = 0.02
    for app_index in range(max(len(apps) for apps in app_lists)):
        lanes = [d for d in range(len(jobs)) if app_index < len(app_lists[d])]
        for device in lanes:
            governors[device].set_training(True)
        active = lanes
        for episode in range(max(episode_budgets[d] for d in lanes)):
            # A lane trains this episode while its own budget lasts and its
            # agent has not converged; everyone else is dropped, not padded.
            running = [d for d in active if episode < episode_budgets[d]]
            if not running:
                break
            episode_seeds = [
                base_seeds[d] + app_index * APP_SEED_STRIDE + episode * EPISODE_SEED_STRIDE
                for d in running
            ]
            configs = [
                SimulationConfig(
                    refresh_hz=platform_spec.display_refresh_hz,
                    duration_s=durations[d],
                    seed=episode_seed,
                    **overrides,
                )
                for d, episode_seed in zip(running, episode_seeds)
            ]
            batch = BatchSimulation(
                platform_spec, [governors[d] for d in running], configs
            )
            batch.run(
                [
                    make_app(app_lists[d][app_index], seed=episode_seed)
                    for d, episode_seed in zip(running, episode_seeds)
                ],
                duration_s=[durations[d] for d in running],
            )
            converged = {
                d
                for d in running
                if governors[d].agent.has_converged(td_error_threshold)
            }
            active = [d for d in active if d not in converged]
    for governor in governors:
        governor.set_training(False)
    return [json.loads(json.dumps(agent.to_dict())) for agent in agents]


def _action_count(agent_config: AgentConfig) -> int:
    return len(ActionSpace(agent_config.cluster_order))


def _device_stores(
    device_states: Sequence[Dict[str, Any]],
) -> List[QTableStore]:
    """Materialise every device's Q-table store once per round."""
    return [QTableStore.from_dict(state["tables"]) for state in device_states]


def _merge_tables(
    spec: FleetSpec,
    agent_config: AgentConfig,
    stores: Sequence[QTableStore],
) -> Dict[str, QTable]:
    """Server-side aggregation: one visit-weighted merged table per app."""
    aggregator = FederatedAggregator(action_count=_action_count(agent_config))
    merged: Dict[str, QTable] = {}
    for app_name in spec.apps:
        tables = [store.table_for(app_name) for store in stores if app_name in store]
        if tables:
            merged[app_name] = aggregator.aggregate(tables)
    return merged


def _round_report(
    round_index: int,
    device_states: Sequence[Dict[str, Any]],
    stores: Sequence[QTableStore],
    merged: Dict[str, QTable],
) -> RoundReport:
    """Convergence diagnostics of one aggregation."""
    td_errors = []
    for state in device_states:
        errors = [float(error) for error in state.get("td_errors", ())]
        td_errors.append(sum(errors) / len(errors) if errors else float("inf"))
    deltas_sum = 0.0
    deltas_count = 0
    for store in stores:
        for app_name, merged_table in merged.items():
            if app_name not in store:
                continue
            table = store.table_for(app_name)
            for table_state in table.states():
                device_values = table.values(table_state)
                merged_values = merged_table.values(table_state)
                for device_value, merged_value in zip(device_values, merged_values):
                    deltas_sum += abs(device_value - merged_value)
                    deltas_count += 1
    return RoundReport(
        round_index=round_index,
        device_td_errors=tuple(td_errors),
        merged_states=sum(len(table) for table in merged.values()),
        merged_visits=sum(table.total_visits() for table in merged.values()),
        mean_abs_delta=deltas_sum / deltas_count if deltas_count else 0.0,
    )


def _distribute(
    spec: FleetSpec,
    agent_config: AgentConfig,
    merged: Dict[str, QTable],
    device_states: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Install the merged tables into every device state.

    Goes through :meth:`FederatedAggregator.distribute`, which splits each
    state's pooled visit mass across the replicas -- so the next round's
    aggregation recovers the fleet's prior experience once, not once per
    device.
    """
    aggregator = FederatedAggregator(action_count=_action_count(agent_config))
    replicas = {
        app_name: aggregator.distribute(table, len(device_states))
        for app_name, table in merged.items()
    }
    distributed = []
    for device, state in enumerate(device_states):
        agent = NextAgent.from_dict(state)
        for app_name, per_device in replicas.items():
            agent.install_table(app_name, per_device[device])
        distributed.append(json.loads(json.dumps(agent.to_dict())))
    return distributed


def _merged_agent(
    spec: FleetSpec, agent_config: AgentConfig, merged: Dict[str, QTable]
) -> NextAgent:
    """The fleet's evaluation agent: merged tables, greedy policy."""
    agent = NextAgent(
        config=agent_config, seed=derive_seed("fleet-eval", spec.fleet_seed)
    )
    for app_name, table in merged.items():
        agent.install_table(app_name, QTable.from_dict(table.to_dict()))
    agent.set_training(False)
    return agent


class FleetBuild:
    """Stepwise fleet training, for schedulers that interleave other work.

    :func:`train_fleet_artifact` is the one-call form; the sweep runner's
    pool scheduler must instead overlap fleet rounds with unrelated cells
    and trainings, so this class exposes the identical computation as
    explicit steps: round-0 device specs in, per-round continuation jobs
    out, finished artifact at the end.  Both forms share every helper in
    the same order, so their results are bit-identical by construction.

    Life cycle::

        build = FleetBuild(spec, start=resume_candidate_or_None)
        if build.needs_round0:
            build.provide_round0({fp: AgentArtifact})   # from the store/pool
        while not build.finished:
            round_index, jobs = build.round_jobs()
            results = [train_device_round(*job) for job in jobs]  # any executor
            build.finish_round(round_index, results)
        artifact = build.artifact()
    """

    def __init__(
        self,
        spec: FleetSpec,
        agent_config: Optional[AgentConfig] = None,
        start: Optional[FleetArtifact] = None,
    ) -> None:
        self.spec = spec
        self.agent_config = agent_config or AgentConfig()
        self.resumed = start is not None
        self._states: Optional[List[Dict[str, Any]]] = None
        self._merged: Optional[Dict[str, QTable]] = None
        self._reports: List[RoundReport] = []
        self._next_round = 0
        if start is not None:
            if start.lineage != spec.lineage(self.agent_config):
                raise ValueError(
                    f"cannot resume fleet {spec.label()} from an artifact of "
                    "a different lineage"
                )
            if start.rounds_completed >= spec.rounds:
                raise ValueError(
                    f"resume artifact already completed {start.rounds_completed} "
                    f"rounds; spec asks for {spec.rounds}"
                )
            self._states = [dict(state) for state in start.device_states]
            self._reports = list(start.round_reports)
            # Recompute the last aggregation (pure data) to distribute from.
            self._merged = _merge_tables(
                spec, self.agent_config, _device_stores(self._states)
            )
            self._next_round = start.rounds_completed

    @property
    def needs_round0(self) -> bool:
        """Whether the build still waits for its round-0 device artifacts."""
        return self._states is None

    @property
    def finished(self) -> bool:
        """Whether every pre-registered round has completed."""
        return self._states is not None and self._next_round >= self.spec.rounds

    def device_specs(self) -> List[TrainingSpec]:
        """The round-0 :class:`TrainingSpec` of every device."""
        return [
            self.spec.device_training_spec(device)
            for device in range(self.spec.devices)
        ]

    def provide_round0(self, artifacts: Mapping[str, Any]) -> None:
        """Accept the round-0 device artifacts, keyed by spec fingerprint."""
        if not self.needs_round0:
            raise ValueError("round 0 was already provided")
        self._states = [
            dict(artifacts[device_spec.fingerprint(self.agent_config)].agent_state)
            for device_spec in self.device_specs()
        ]
        self._aggregate(0)
        self._next_round = 1

    def _aggregate(self, round_index: int) -> None:
        stores = _device_stores(self._states)
        self._merged = _merge_tables(self.spec, self.agent_config, stores)
        self._reports.append(
            _round_report(round_index, self._states, stores, self._merged)
        )

    def round_jobs(self) -> Tuple[int, List[Tuple[Any, ...]]]:
        """Distribute the merged tables and emit one continuation job per device.

        Returns ``(round_index, jobs)`` where each job is the argument tuple
        of :func:`train_device_round` -- run them on any executor, in any
        order, and hand the device-ordered results to :meth:`finish_round`.
        """
        if self.needs_round0:
            raise ValueError("round 0 has not been provided yet")
        if self.finished:
            raise ValueError("fleet has no rounds left to train")
        round_index = self._next_round
        distributed = _distribute(
            self.spec, self.agent_config, self._merged, self._states
        )
        jobs = [
            (
                distributed[device],
                self.spec.device_apps(device),
                self.spec.platform,
                self.spec.device_episodes(device),
                self.spec.episode_duration_s,
                self.spec.device_seed(device, round_index),
                self.spec.config_overrides,
            )
            for device in range(self.spec.devices)
        ]
        return round_index, jobs

    def finish_round(
        self, round_index: int, device_states: Sequence[Dict[str, Any]]
    ) -> None:
        """Accept one round's device-ordered results and aggregate them."""
        if round_index != self._next_round:
            raise ValueError(
                f"got results for round {round_index}, expected {self._next_round}"
            )
        if len(device_states) != self.spec.devices:
            raise ValueError(
                f"got {len(device_states)} device results, expected "
                f"{self.spec.devices}"
            )
        self._states = [dict(state) for state in device_states]
        self._aggregate(round_index)
        self._next_round = round_index + 1

    def artifact(self) -> FleetArtifact:
        """Freeze the finished fleet (raises while rounds remain)."""
        if not self.finished:
            raise ValueError("fleet has rounds left to train")
        return FleetArtifact.capture(
            self.spec,
            _merged_agent(self.spec, self.agent_config, self._merged),
            self._states,
            self._reports,
        )


def _resolve_round0(
    build: FleetBuild, artifacts: ArtifactStore, pool=None
) -> Dict[str, Any]:
    """Round-0 device artifacts for one build, via the artifact pipeline.

    Stored device artifacts are served from the store; missing ones train --
    across ``pool`` when one is given, otherwise in-process -- and are
    persisted so later fleets (or re-runs) reuse them.
    """
    resolved: Dict[str, Any] = {}
    missing: Dict[str, TrainingSpec] = {}
    for device_spec in build.device_specs():
        fingerprint = device_spec.fingerprint(build.agent_config)
        if fingerprint in resolved or fingerprint in missing:
            continue
        artifact = artifacts.resolve(device_spec, build.agent_config)
        if artifact is not None:
            resolved[fingerprint] = artifact
        else:
            missing[fingerprint] = device_spec
    if missing and pool is not None:
        futures = {
            fingerprint: pool.submit(train_artifact, device_spec, build.agent_config)
            for fingerprint, device_spec in missing.items()
        }
        for fingerprint, future in futures.items():
            artifact = future.result()
            artifacts.accept(artifact)
            resolved[fingerprint] = artifact
    else:
        for fingerprint, device_spec in missing.items():
            artifact = train_artifact(device_spec, build.agent_config)
            artifacts.accept(artifact)
            resolved[fingerprint] = artifact
    return resolved


def train_fleet_artifact(
    spec: FleetSpec,
    agent_config: Optional[AgentConfig] = None,
    artifacts: Optional[ArtifactStore] = None,
    pool=None,
    start: Optional[FleetArtifact] = None,
) -> FleetArtifact:
    """Train one federated fleet per ``spec`` and freeze it into an artifact.

    ``pool`` (any executor with ``submit``) parallelises the per-device
    training of every round; the result is bit-identical with and without
    one.  Without a pool, multi-device rounds run through the batched
    device-population kernel when NumPy is available (one lockstep step loop
    for the whole fleet instead of N sequential simulations) -- also
    bit-identical, so the three paths cannot diverge.  ``start`` resumes a
    same-lineage artifact with fewer rounds: only the missing rounds run,
    and the outcome equals a from-scratch run of the full depth.
    """
    build = FleetBuild(spec, agent_config=agent_config, start=start)
    store = artifacts if artifacts is not None else ArtifactStore(None)
    if build.needs_round0:
        build.provide_round0(_resolve_round0(build, store, pool=pool))
    while not build.finished:
        round_index, jobs = build.round_jobs()
        with maybe_span(
            "federated_round", round=round_index, devices=len(jobs)
        ):
            if pool is not None:
                futures = [pool.submit(train_device_round, *job) for job in jobs]
                results = [future.result() for future in futures]
            elif len(jobs) > 1 and batch_kernel_available():
                results = train_device_rounds_batched(jobs)
            else:
                results = [train_device_round(*job) for job in jobs]
        build.finish_round(round_index, results)
    return build.artifact()


class FleetStore:
    """Fingerprint-keyed store of trained fleets, mirroring ``ArtifactStore``.

    With a ``directory`` each fleet persists to ``<fingerprint>.fleet.json``
    (the same directory agent artifacts live in; the suffixes keep them
    apart), so re-runs load instead of retrain and a copied artifact
    directory ships the whole fleet to another machine.  ``trained_count`` /
    ``reused_count`` / ``resumed_count`` expose how much federated training
    a sweep actually performed.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        # Created lazily on the first store(), like ArtifactStore.
        self.directory = directory
        self._memory: Dict[str, FleetArtifact] = {}
        self.trained_count = 0
        self.reused_count = 0
        self.resumed_count = 0

    def _path(self, fingerprint: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{fingerprint}.fleet.json")

    # -- access -------------------------------------------------------------------------

    def load(
        self, spec: FleetSpec, agent_config: Optional[AgentConfig] = None
    ) -> Optional[FleetArtifact]:
        """Return the stored fleet for ``spec``, or ``None`` on a miss.

        An unparseable entry (a torn copy on a non-atomic filesystem) is
        quarantined as ``<path>.bad`` and treated as a miss, so one bad
        file retrains one fleet instead of raising mid-sweep -- matching
        ``ResultCache`` and ``ArtifactStore``.  A parseable entry whose
        fingerprint does not match is left in place: foreign or
        stale-format, not corrupt.
        """
        fingerprint = spec.fingerprint(agent_config)
        artifact = self._memory.get(fingerprint)
        if artifact is not None:
            return artifact
        path = self._path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        try:
            artifact = FleetArtifact.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            quarantine_entry(path)
            return None  # corrupt entry: treat as a miss and retrain
        if artifact.fingerprint != fingerprint:
            return None
        self._memory[fingerprint] = artifact
        return artifact

    def store(self, artifact: FleetArtifact) -> None:
        """Keep a fleet in memory and, when backed by a directory, on disk."""
        self._memory[artifact.fingerprint] = artifact
        path = self._path(artifact.fingerprint)
        if path is not None:
            artifact.save(path)

    def accept(self, artifact: FleetArtifact, resumed: bool = False) -> None:
        """Store a freshly trained fleet and count the training."""
        self.store(artifact)
        if resumed:
            self.resumed_count += 1
        else:
            self.trained_count += 1

    def resume_candidate(
        self, spec: FleetSpec, agent_config: Optional[AgentConfig] = None
    ) -> Optional[FleetArtifact]:
        """The deepest same-lineage artifact with fewer rounds than ``spec``.

        Federated training is incremental, so a 2-round fleet of the same
        lineage seeds rounds 2..R of an R-round run; the result is
        bit-identical to training from scratch.

        Candidacy is decided from each file's ``lineage``/``rounds_completed``
        metadata alone; the expensive fully-validated load (fingerprint
        recomputation over the whole fleet) runs only for chosen candidates,
        deepest first, so a directory full of unrelated fleets costs one JSON
        parse each rather than a validation pass each.
        """
        lineage = spec.lineage(agent_config)
        best: Optional[FleetArtifact] = None
        for artifact in self._memory.values():
            if artifact.lineage != lineage:
                continue
            if artifact.rounds_completed >= spec.rounds:
                continue
            if best is None or artifact.rounds_completed > best.rounds_completed:
                best = artifact
        best_rounds = -1 if best is None else best.rounds_completed
        candidates: List[Tuple[int, str]] = []
        if self.directory is not None and os.path.isdir(self.directory):
            for filename in sorted(os.listdir(self.directory)):
                if not filename.endswith(".fleet.json"):
                    continue
                if filename[: -len(".fleet.json")] in self._memory:
                    continue
                path = os.path.join(self.directory, filename)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        data = json.load(handle)
                    rounds_completed = int(data["rounds_completed"])
                    file_lineage = data["lineage"]
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # torn or foreign file: not a candidate
                if file_lineage != lineage:
                    continue
                if best_rounds < rounds_completed < spec.rounds:
                    candidates.append((rounds_completed, path))
        for _, path in sorted(candidates, reverse=True):
            try:
                return FleetArtifact.load(path)
            except (OSError, ValueError, KeyError, TypeError):
                continue  # corrupt candidate: fall back to the next deepest
        return best

    # -- merge support (used by repro.experiments.distributed) -------------------------

    #: Filename suffix of fleet entries in the shared artifact directory.
    ENTRY_SUFFIX = ".fleet.json"

    def entry_paths(self) -> List[str]:
        """Paths of every fleet entry in the store directory, sorted by name."""
        return list_entry_paths(self.directory, self.ENTRY_SUFFIX)

    @staticmethod
    def canonical_entry(data: Dict[str, Any]) -> Dict[str, Any]:
        """The content identity of one fleet entry: the parsed document.

        Fleet training is pure data manipulation end to end -- device states,
        merged agent and round reports carry no wall-clock measurements -- so
        two shards that trained the same fleet fingerprint must agree on
        every byte of the parsed document.
        """
        return data

    def entries(self) -> List[FleetArtifact]:
        """Every stored fleet (memory plus directory), sorted by fingerprint."""
        by_fingerprint = dict(self._memory)
        if self.directory is not None and os.path.isdir(self.directory):
            for filename in sorted(os.listdir(self.directory)):
                if not filename.endswith(".fleet.json"):
                    continue
                fingerprint = filename[: -len(".fleet.json")]
                if fingerprint in by_fingerprint:
                    continue
                try:
                    by_fingerprint[fingerprint] = FleetArtifact.load(
                        os.path.join(self.directory, filename)
                    )
                except (OSError, ValueError, KeyError, TypeError):
                    continue
        return [by_fingerprint[key] for key in sorted(by_fingerprint)]

    # -- bulk resolution ----------------------------------------------------------------

    def ensure(
        self,
        specs: Iterable[FleetSpec],
        artifacts: Optional[ArtifactStore] = None,
        agent_config: Optional[AgentConfig] = None,
        pool=None,
    ) -> Tuple[Dict[str, FleetArtifact], Dict[str, str]]:
        """Resolve every fleet spec to an artifact, training the missing ones.

        Mirrors :meth:`ArtifactStore.ensure`: stored fleets are reused,
        same-lineage shallower fleets are resumed, anything else trains from
        scratch (round-0 device training still deduplicates through
        ``artifacts``).  Returns ``(fleets, errors)`` keyed by fleet
        fingerprint; a fleet whose training raised lands in ``errors`` with
        its traceback so sweep failure isolation extends to federated
        training.
        """
        device_artifacts = artifacts if artifacts is not None else ArtifactStore(None)
        fleets: Dict[str, FleetArtifact] = {}
        errors: Dict[str, str] = {}
        for spec in specs:
            fingerprint = spec.fingerprint(agent_config)
            if fingerprint in fleets or fingerprint in errors:
                continue
            artifact = self.load(spec, agent_config)
            if artifact is not None:
                self.reused_count += 1
                fleets[fingerprint] = artifact
                continue
            start = self.resume_candidate(spec, agent_config)
            try:
                artifact = train_fleet_artifact(
                    spec,
                    agent_config=agent_config,
                    artifacts=device_artifacts,
                    pool=pool,
                    start=start,
                )
            except Exception:
                errors[fingerprint] = traceback.format_exc()
                continue
            self.accept(artifact, resumed=start is not None)
            fleets[fingerprint] = artifact
        return fleets, errors


def fleet_convergence_table(artifact: FleetArtifact) -> str:
    """Round-by-round convergence report of one trained fleet."""
    from repro.analysis.tables import format_series_table

    rows = [
        [
            report.round_index,
            report.mean_td_error,
            report.mean_abs_delta,
            report.merged_states,
            report.merged_visits,
        ]
        for report in artifact.round_reports
    ]
    return format_series_table(
        ["round", "mean_td_error", "fleet_disagreement", "merged_states", "merged_visits"],
        rows,
        title=(
            f"Fleet {artifact.fingerprint} ({artifact.spec.label()}): "
            "per-round convergence"
        ),
    )
