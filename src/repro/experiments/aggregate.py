"""Replication-aware aggregation of sweep results.

A factorial sweep produces one summary per cell; the quantities worth
reporting are aggregates: the mean and spread of each metric across the
replication seeds of one (governor, workload, platform) condition, the
app x governor comparison tables of Figs. 7 and 8, and per-axis marginal
effects such as "average power saving of each governor, marginalised over
all workloads and platforms".  Everything here feeds the existing
:mod:`repro.analysis` layer for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.compare import percentage_saving
from repro.analysis.metrics import SeriesStatistics, series_statistics
from repro.analysis.tables import format_comparison_table, format_series_table
from repro.experiments.runner import CellResult, SweepResult

#: Cell coordinates an aggregation axis can select on.  ``training`` groups
#: by the variant's display key (one value per axis entry), ``training_mode``
#: by its execution mode (cold / pretrained / federated), which collapses
#: several same-mode variants -- e.g. federated fleets of different sizes --
#: into one marginal row.
AXES = ("governor", "workload", "platform", "seed", "training", "training_mode")

#: Replication statistics reuse the shared series-statistics type from
#: :mod:`repro.analysis.metrics`.
MetricStatistics = SeriesStatistics


def metric_statistics(values: Sequence[float]) -> MetricStatistics:
    """Aggregate raw per-replication values (sample standard deviation)."""
    return series_statistics(values, ddof=1)


@dataclass(frozen=True)
class ConditionKey:
    """One experimental condition: all cell coordinates except the seed."""

    governor: str
    workload: str
    platform: str
    training: str = "cold"


def axis_value(result: CellResult, axis: str) -> str:
    """Read one axis coordinate of a cell result as a string."""
    if axis not in AXES:
        raise ValueError(f"unknown axis {axis!r}; available: {AXES}")
    cell = result.cell
    if axis == "governor":
        return cell.governor
    if axis == "workload":
        return cell.workload.key
    if axis == "platform":
        return cell.platform
    if axis == "training":
        return cell.training.key
    if axis == "training_mode":
        return cell.training.mode
    return str(cell.seed)


def group_replicates(results: Sequence[CellResult]) -> Dict[ConditionKey, List[CellResult]]:
    """Group successful cells by condition (replications collapse together)."""
    groups: Dict[ConditionKey, List[CellResult]] = {}
    for result in results:
        if not result.ok:
            continue
        key = ConditionKey(
            governor=result.cell.governor,
            workload=result.cell.workload.key,
            platform=result.cell.platform,
            training=result.cell.training.key,
        )
        groups.setdefault(key, []).append(result)
    return groups


def replicate_statistics(
    results: Sequence[CellResult], metric: str
) -> Dict[ConditionKey, MetricStatistics]:
    """Per-condition mean/std of ``metric`` across replication seeds."""
    return {
        key: metric_statistics(
            [replicate.metric(metric) for replicate in replicates]
        )
        for key, replicates in group_replicates(results).items()
    }


def paired_savings(
    results: Sequence[CellResult],
    metric: str = "average_power_w",
    baseline: str = "schedutil",
) -> List[Tuple[CellResult, float]]:
    """Per-cell percentage saving versus the matched baseline cell.

    Each non-baseline cell is paired with the baseline-governor cell sharing
    its (workload, platform, seed) coordinates -- i.e. the run that faced the
    identical demand trace -- and the saving is computed pairwise before any
    averaging, which keeps replications statistically independent.
    """
    baselines: Dict[Tuple[str, str, int], CellResult] = {}
    for result in results:
        if result.ok and result.cell.governor == baseline:
            coords = (result.cell.workload.key, result.cell.platform, result.cell.seed)
            if coords in baselines:
                # A trainable baseline on a multi-variant training axis has
                # several cells per row; picking one silently would report
                # savings against an unspecified policy.
                raise ValueError(
                    f"ambiguous baseline: multiple {baseline!r} cells share "
                    f"(workload, platform, seed)={coords}; restrict the "
                    "baseline governor to a single training variant"
                )
            baselines[coords] = result
    pairs: List[Tuple[CellResult, float]] = []
    for result in results:
        if not result.ok or result.cell.governor == baseline:
            continue
        coords = (result.cell.workload.key, result.cell.platform, result.cell.seed)
        base = baselines.get(coords)
        if base is None:
            continue
        pairs.append(
            (result, percentage_saving(base.metric(metric), result.metric(metric)))
        )
    return pairs


def marginal_savings(
    results: Sequence[CellResult],
    axis: str,
    metric: str = "average_power_w",
    baseline: str = "schedutil",
) -> Dict[str, MetricStatistics]:
    """Marginal effect of one axis: savings vs baseline, grouped by the axis.

    E.g. ``axis="governor"`` answers "how much does each governor save on
    average across every workload/platform/seed", ``axis="platform"`` answers
    "how big are the savings on each platform".
    """
    grouped: Dict[str, List[float]] = {}
    for result, saving in paired_savings(results, metric=metric, baseline=baseline):
        grouped.setdefault(axis_value(result, axis), []).append(saving)
    return {
        value: metric_statistics(savings)
        for value, savings in sorted(grouped.items())
    }


def condition_table(
    sweep: SweepResult,
    metric: str = "average_power_w",
    title: str = "",
) -> str:
    """Workload x governor table of per-condition means (one row per platform).

    Single-platform sweeps label rows with the bare workload key; multi-
    platform sweeps append ``@platform`` so marginal platform effects stay
    visible.  Rendering goes through the shared
    :func:`repro.analysis.tables.format_comparison_table`.
    """
    statistics = replicate_statistics(sweep.results, metric)
    multi_platform = len(sweep.matrix.platforms) > 1
    multi_training = len(sweep.matrix.training) > 1
    per_row: Dict[str, Dict[str, float]] = {}
    for workload in sweep.matrix.workloads:
        for platform in sweep.matrix.platforms:
            for variant in sweep.matrix.training:
                row_key = (
                    f"{workload.key}@{platform}" if multi_platform else workload.key
                )
                if multi_training:
                    row_key = f"{row_key}+{variant.key}"
                for governor in sweep.matrix.governors:
                    # A governor that does not expand across the training
                    # axis contributes its single variant's cells to every
                    # row, so cold baselines stay visible next to each
                    # trained column.
                    variants = sweep.matrix.variants_for(governor)
                    training_key = (
                        variant.key if variant in variants else variants[0].key
                    )
                    key = ConditionKey(
                        governor=governor,
                        workload=workload.key,
                        platform=platform,
                        training=training_key,
                    )
                    if key in statistics:
                        per_row.setdefault(row_key, {})[governor] = statistics[key].mean
    return format_comparison_table(
        per_row,
        governor_order=list(sweep.matrix.governors),
        value_label=f"mean {metric} over {len(sweep.matrix.seeds)} seed(s)",
        title=title or f"Sweep '{sweep.matrix.name}'",
    )


def marginal_table(
    sweep: SweepResult,
    axis: str,
    metric: str = "average_power_w",
    baseline: str = "schedutil",
) -> str:
    """Text table of :func:`marginal_savings` for one axis."""
    effects = marginal_savings(
        sweep.results, axis=axis, metric=metric, baseline=baseline
    )
    rows = [
        [value, stats.mean, stats.std, stats.minimum, stats.maximum, stats.count]
        for value, stats in effects.items()
    ]
    return format_series_table(
        [axis, "saving_pct_mean", "saving_pct_std", "min", "max", "n"],
        rows,
        title=f"Marginal {metric} saving vs {baseline}, by {axis}",
    )
