"""Parallel scenario-matrix experiment harness.

The paper evaluates a handful of apps and governors on one platform; this
package opens that up into pre-registered factorial sweeps that run as fast
as the machine allows:

* :mod:`repro.experiments.matrix` -- declarative factorial designs
  (governors x workloads x platforms x seeds) expanding into
  deterministically seeded :class:`ScenarioCell` objects,
* :mod:`repro.experiments.runner` -- sequential or process-pool execution
  with failure isolation and an on-disk result cache keyed by cell
  fingerprint,
* :mod:`repro.experiments.artifacts` -- trained-agent artifacts: each
  distinct training spec is trained exactly once per sweep (in parallel,
  through the same pool) and pretrained ``next`` cells evaluate the frozen
  greedy policy,
* :mod:`repro.experiments.federated` -- federated device fleets: N virtual
  devices train locally (round 0 through the artifact pipeline), a server
  merges their Q-tables visit-weighted each round, and federated ``next``
  cells evaluate the merged fleet agent greedily; fleets persist as
  resumable :class:`~repro.core.federated.FleetArtifact` documents,
* :mod:`repro.experiments.distributed` -- distributed sweep sharding: a
  deterministic cost-balanced shard planner (``shard-manifest.json``), a
  resumable per-shard worker and a conflict-checked merge engine that
  reconstructs the aggregate sweep bit-identically from shard caches,
* :mod:`repro.experiments.aggregate` -- replication-aware statistics,
  comparison tables and per-axis marginal effects on top of
  :mod:`repro.analysis`,
* :mod:`repro.experiments.cli` -- the ``repro-sweep`` console script
  (including ``repro-sweep shard plan|run|merge|status``).
"""

from repro.experiments.aggregate import (
    ConditionKey,
    MetricStatistics,
    condition_table,
    metric_statistics,
    group_replicates,
    marginal_savings,
    marginal_table,
    paired_savings,
    replicate_statistics,
)
from repro.experiments.artifacts import ArtifactStore, train_artifact
from repro.experiments.distributed import (
    CostModel,
    ShardManifest,
    ShardMergeError,
    ShardStatus,
    merge_shards,
    plan_shards,
    run_shard,
    shard_status,
)
from repro.experiments.federated import (
    FleetStore,
    fleet_convergence_table,
    train_device_round,
    train_fleet_artifact,
)
from repro.experiments.matrix import (
    COLD_TRAINING,
    NAMED_MATRICES,
    ScenarioCell,
    ScenarioMatrix,
    TrainingVariant,
    WorkloadSpec,
    derive_seed,
    named_matrix,
)
from repro.experiments.runner import (
    CellResult,
    ResultCache,
    SweepResult,
    SweepRunner,
    execute_cell,
    run_cell_session,
    run_matrix,
)

__all__ = [
    # matrix
    "ScenarioMatrix",
    "ScenarioCell",
    "WorkloadSpec",
    "TrainingVariant",
    "COLD_TRAINING",
    "NAMED_MATRICES",
    "named_matrix",
    "derive_seed",
    # artifacts
    "ArtifactStore",
    "train_artifact",
    # distributed sharding
    "CostModel",
    "ShardManifest",
    "ShardMergeError",
    "ShardStatus",
    "plan_shards",
    "run_shard",
    "merge_shards",
    "shard_status",
    # federated fleets
    "FleetStore",
    "train_fleet_artifact",
    "train_device_round",
    "fleet_convergence_table",
    # runner
    "SweepRunner",
    "SweepResult",
    "CellResult",
    "ResultCache",
    "execute_cell",
    "run_cell_session",
    "run_matrix",
    # aggregate
    "MetricStatistics",
    "metric_statistics",
    "ConditionKey",
    "group_replicates",
    "replicate_statistics",
    "paired_savings",
    "marginal_savings",
    "condition_table",
    "marginal_table",
]
